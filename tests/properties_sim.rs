//! Property-based tests for the GPU simulator and the tile store —
//! invariants the out-of-core algorithms silently rely on.

use apsp::core::{StorageBackend, TileStore};
use apsp::cpu::blocked_fw::minplus_tile;
use apsp::gpu_sim::{DeviceProfile, Engine, GpuDevice, KernelCost, LaunchConfig, Timeline};
use apsp::graph::{dist_add, INF};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timeline scheduling is monotone and conservative: the makespan is
    /// at least the longest single op, at most the sum of all ops, and
    /// engine busy totals never exceed the makespan.
    #[test]
    fn timeline_makespan_bounds(
        ops in proptest::collection::vec((0u8..3, 0u8..2, 1u32..10_000u32), 1..60)
    ) {
        let mut tl = Timeline::new();
        let s1 = tl.create_stream();
        let mut total = 0.0f64;
        let mut longest = 0.0f64;
        for (engine_pick, stream_pick, micros) in ops {
            let engine = match engine_pick {
                0 => Engine::Compute,
                1 => Engine::CopyH2D,
                _ => Engine::CopyD2H,
            };
            let stream = if stream_pick == 0 { tl.default_stream() } else { s1 };
            let dur = micros as f64 * 1e-6;
            let (start, end) = tl.schedule(stream, engine, dur);
            prop_assert!(end >= start);
            total += dur;
            longest = longest.max(dur);
        }
        let makespan = tl.synchronize().seconds();
        prop_assert!(makespan >= longest - 1e-15);
        prop_assert!(makespan <= total + 1e-12);
        for engine in [Engine::Compute, Engine::CopyH2D, Engine::CopyD2H] {
            prop_assert!(tl.engine_busy(engine) <= makespan + 1e-12);
        }
    }

    /// Kernel durations are monotone in every cost component.
    #[test]
    fn kernel_cost_monotone(
        flops in 0.0f64..1e13,
        bytes in 0.0f64..1e12,
        extra in 1.0f64..1e12,
        blocks in 1u32..4096,
    ) {
        let p = DeviceProfile::v100();
        let lc = LaunchConfig::new(blocks, 256);
        let base = KernelCost::regular(flops, bytes).duration(&p, lc);
        prop_assert!(KernelCost::regular(flops + extra, bytes).duration(&p, lc) >= base);
        prop_assert!(KernelCost::regular(flops, bytes + extra).duration(&p, lc) >= base);
        prop_assert!(KernelCost::irregular(flops, bytes, 2.0).duration(&p, lc) >= base);
        // More blocks never slows a kernel down.
        let more_blocks = LaunchConfig::new(blocks.saturating_mul(2).max(blocks + 1), 256);
        prop_assert!(KernelCost::regular(flops, bytes).duration(&p, more_blocks) <= base + 1e-15);
    }

    /// Device memory accounting: allocations and frees always balance,
    /// and capacity is a hard ceiling.
    #[test]
    fn memory_pool_balances(sizes in proptest::collection::vec(1usize..5000, 1..40)) {
        let capacity = 64 << 10;
        let dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(capacity));
        let mut held = Vec::new();
        for len in sizes {
            match dev.alloc::<u32>(len) {
                Ok(buf) => held.push(buf),
                Err(e) => {
                    prop_assert!(e.requested > e.available);
                    prop_assert_eq!(e.capacity, capacity);
                }
            }
            prop_assert!(dev.used_memory() <= capacity);
        }
        let used: u64 = held.iter().map(|b| b.bytes()).sum();
        prop_assert_eq!(dev.used_memory(), used);
        held.clear();
        prop_assert_eq!(dev.used_memory(), 0);
    }

    /// Min-plus tile update is the min-plus semiring product: idempotent
    /// under repetition with a converged C, monotone (never increases a
    /// cell), and INF-absorbing.
    #[test]
    fn minplus_semiring_laws(
        a in proptest::collection::vec(0u32..1000, 9),
        b in proptest::collection::vec(0u32..1000, 9),
    ) {
        let mut c = vec![INF; 9];
        minplus_tile(&mut c, 3, &a, 3, &b, 3, 3, 3, 3);
        // Each cell equals the explicit min-plus product.
        for i in 0..3 {
            for j in 0..3 {
                let expect = (0..3).map(|k| dist_add(a[i * 3 + k], b[k * 3 + j])).min().unwrap();
                prop_assert_eq!(c[i * 3 + j], expect);
            }
        }
        // Monotonicity: re-applying can only keep or lower values…
        let before = c.clone();
        minplus_tile(&mut c, 3, &a, 3, &b, 3, 3, 3, 3);
        for (x, y) in c.iter().zip(before.iter()) {
            prop_assert!(x <= y);
        }
        // …and with the same operands it is exactly idempotent.
        prop_assert_eq!(&c, &before);
    }

    /// Tile store: arbitrary interleavings of row/block writes read back
    /// exactly, identically on both backends.
    #[test]
    fn tile_store_backends_agree(
        n in 2usize..12,
        writes in proptest::collection::vec((0usize..12, 0usize..12, 0u32..100), 0..20),
    ) {
        let dir = std::env::temp_dir().join("apsp_prop_store");
        let mut mem = TileStore::new(n, &StorageBackend::Memory).unwrap();
        let mut disk = TileStore::new(n, &StorageBackend::Disk(dir)).unwrap();
        for (i_raw, j_raw, v) in writes {
            let (i, j) = (i_raw % n, j_raw % n);
            mem.write_block(i..i + 1, j..j + 1, &[v]).unwrap();
            disk.write_block(i..i + 1, j..j + 1, &[v]).unwrap();
        }
        for i in 0..n {
            prop_assert_eq!(mem.read_row(i).unwrap(), disk.read_row(i).unwrap());
        }
    }
}
