//! Out-of-core behaviour under memory pressure and disk spill.

use apsp::core::ooc_fw::{init_store_from_graph, ooc_floyd_warshall};
use apsp::core::ooc_johnson::ooc_johnson;
use apsp::core::options::{Algorithm, ApspOptions, FwOptions, JohnsonOptions};
use apsp::core::{apsp, StorageBackend, TileStore};
use apsp::cpu::bgl_plus_apsp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{gnp, random_geometric, WeightRange};

#[test]
fn shrinking_device_changes_blocking_not_results() {
    let g = gnp(120, 0.05, WeightRange::default(), 77);
    let reference = bgl_plus_apsp(&g);
    let mut last_n_d = 0;
    let mut seen_different_blockings = false;
    for mem_kib in [1024u64, 256, 96] {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(mem_kib << 10));
        let mut store = TileStore::new(120, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert_eq!(
            store.to_dist_matrix().unwrap(),
            reference,
            "mem {mem_kib} KiB"
        );
        if last_n_d != 0 && stats.n_d != last_n_d {
            seen_different_blockings = true;
        }
        last_n_d = stats.n_d;
    }
    assert!(seen_different_blockings, "memory sweep never changed n_d");
}

#[test]
fn johnson_batch_count_scales_with_memory() {
    let g = gnp(200, 0.04, WeightRange::default(), 5);
    let batches = |mem: u64| {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(mem));
        let mut store = TileStore::new(200, &StorageBackend::Memory).unwrap();
        ooc_johnson(&mut dev, &g, &mut store, &JohnsonOptions::default())
            .unwrap()
            .num_batches
    };
    let big = batches(8 << 20);
    let small = batches(300 << 10);
    assert!(small > big, "small device {small} batches vs big {big}");
}

#[test]
fn disk_and_memory_stores_agree() {
    let g = random_geometric(180, 0.1, WeightRange::default(), 9);
    let dir = std::env::temp_dir().join("apsp_integration_disk");
    for alg in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        let run = |storage: StorageBackend| {
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
            let opts = ApspOptions {
                algorithm: Some(alg),
                storage,
                ..Default::default()
            };
            apsp(&g, &mut dev, &opts)
                .unwrap()
                .store
                .to_dist_matrix()
                .unwrap()
        };
        let in_ram = run(StorageBackend::Memory);
        let on_disk = run(StorageBackend::Disk(dir.clone()));
        assert_eq!(in_ram, on_disk, "{alg}");
    }
}

#[test]
fn simulated_time_increases_under_memory_pressure() {
    // Less device memory ⇒ more passes/transfers ⇒ more simulated time
    // for the O(n_d · n²)-traffic Floyd-Warshall.
    let g = gnp(150, 0.08, WeightRange::default(), 13);
    let time = |mem: u64| {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(mem));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default())
            .unwrap()
            .sim_seconds
    };
    let roomy = time(4 << 20);
    let tight = time(128 << 10);
    assert!(tight > roomy, "tight {tight} should exceed roomy {roomy}");
}

#[test]
fn profiler_reports_are_consistent() {
    let g = gnp(100, 0.06, WeightRange::default(), 21);
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Johnson),
        ..Default::default()
    };
    let result = apsp(&g, &mut dev, &opts).unwrap();
    let r = &result.report;
    // The result matrix went over the link at least once.
    assert!(r.bytes_d2h as usize >= 100 * 100 * 4);
    // Engine busy times can never exceed the makespan.
    assert!(r.compute_busy <= r.elapsed + 1e-12);
    assert!(r.d2h_busy <= r.elapsed + 1e-12);
    assert!(r.h2d_busy <= r.elapsed + 1e-12);
    // Kernel seconds live on the compute engine.
    assert!((r.total_kernel_seconds() - r.compute_busy).abs() < 1e-9);
    assert!(r.transfer_fraction() > 0.0 && r.transfer_fraction() <= 1.0);
}

#[test]
fn k80_profile_is_slower_than_v100() {
    // The workload must saturate both devices, otherwise the V100's much
    // larger saturating block count makes a small batch look *slower*
    // there (a real phenomenon — big GPUs dislike small grids — but not
    // what this test is about).
    let g = gnp(400, 0.03, WeightRange::default(), 33);
    let time = |profile: DeviceProfile| {
        let mut dev = GpuDevice::new(profile.with_memory_bytes(16 << 20));
        let mut store = TileStore::new(400, &StorageBackend::Memory).unwrap();
        let stats = ooc_johnson(&mut dev, &g, &mut store, &JohnsonOptions::default()).unwrap();
        assert!(
            stats.batch_size as u32 >= dev.profile().saturating_blocks,
            "batch must saturate the device"
        );
        stats.sim_seconds
    };
    let v100 = time(DeviceProfile::v100());
    let k80 = time(DeviceProfile::k80());
    assert!(k80 > v100, "K80 {k80} should be slower than V100 {v100}");
}
