//! Property-based tests over the core data structures and invariants.

use apsp::core::apsp;
use apsp::core::options::{Algorithm, ApspOptions};
use apsp::cpu::{bgl_plus_apsp, dijkstra_sssp};
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::{dist_add, CsrGraph, Edge, GraphBuilder, INF};
use apsp::kernels::near_far_sssp;
use apsp::partition::{kway_partition, PartitionConfig, PartitionLayout};
use proptest::prelude::*;

/// Arbitrary small weighted digraph: up to `n_max` vertices, edge list
/// with possible duplicates and self-loops (the builder must canonicalize
/// them all).
fn arb_graph(n_max: usize, m_max: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..n_max, 0usize..m_max)
        .prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u32..1000u32), m);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (s, d, w) in edges {
                b.add_edge(s, d, w);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR construction canonicalizes: sorted rows, no duplicates, folded
    /// multi-edges keep the minimum weight.
    #[test]
    fn builder_canonicalizes(g in arb_graph(40, 200)) {
        prop_assert!(g.check_invariants().is_ok());
        // Rebuilding from the edge list is idempotent.
        let mut b = GraphBuilder::new(g.num_vertices());
        for Edge { src, dst, weight } in g.edges() {
            b.add_edge(src, dst, weight);
        }
        prop_assert_eq!(b.build(), g.clone());
        // Transposing twice is the identity.
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    /// Dijkstra's output satisfies: zero at the source, triangle
    /// inequality over every edge, and tightness (every finite distance
    /// is witnessed by some incoming edge).
    #[test]
    fn dijkstra_is_a_fixed_point(g in arb_graph(36, 150), source_raw in 0u32..36) {
        let n = g.num_vertices() as u32;
        let source = source_raw % n;
        let dist = dijkstra_sssp(&g, source);
        prop_assert_eq!(dist[source as usize], 0);
        for e in g.edges() {
            // No edge can be relaxed further.
            prop_assert!(
                dist[e.dst as usize] <= dist_add(dist[e.src as usize], e.weight),
                "edge ({}, {}) violates triangle inequality", e.src, e.dst
            );
        }
        for v in 0..n {
            if v != source && dist[v as usize] < INF {
                // Witness: some in-edge achieves the distance.
                let witnessed = g.edges().any(|e| {
                    e.dst == v && dist_add(dist[e.src as usize], e.weight) == dist[v as usize]
                });
                prop_assert!(witnessed, "distance to {v} has no witness");
            }
        }
    }

    /// Near-Far equals Dijkstra for every delta.
    #[test]
    fn near_far_matches_dijkstra(
        g in arb_graph(32, 120),
        source_raw in 0u32..32,
        delta in 1u32..500,
    ) {
        let n = g.num_vertices() as u32;
        let source = source_raw % n;
        let (nf, _) = near_far_sssp(&g, source, delta, usize::MAX);
        prop_assert_eq!(nf, dijkstra_sssp(&g, source));
    }

    /// k-way partitioning covers every vertex, respects k, and its
    /// boundary flags exactly mark cut-edge endpoints.
    #[test]
    fn partition_invariants(g in arb_graph(48, 200), k in 1usize..8) {
        let p = kway_partition(&g, k, &PartitionConfig::default());
        prop_assert_eq!(p.k(), k);
        prop_assert_eq!(p.num_vertices(), g.num_vertices());
        let layout = PartitionLayout::new(&g, &p);
        // Layout is a permutation partitioned into contiguous components.
        let mut seen = vec![false; g.num_vertices()];
        for i in 0..layout.num_components() {
            for v in layout.component_range(i) {
                let old = layout.old_of(v as u32) as usize;
                prop_assert!(!seen[old]);
                seen[old] = true;
                prop_assert_eq!(p.part_of(old as u32) as usize, i);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Boundary definition: flag ⇔ incident to a cut edge.
        let flags = p.boundary_flags(&g);
        for (v, &flag) in flags.iter().enumerate() {
            let incident_cut = g.edges().any(|e| {
                (e.src as usize == v || e.dst as usize == v)
                    && p.part_of(e.src) != p.part_of(e.dst)
            });
            prop_assert_eq!(flag, incident_cut, "vertex {}", v);
        }
    }

    /// The full out-of-core pipeline (random algorithm, tiny device)
    /// equals the CPU reference on arbitrary graphs.
    #[test]
    fn out_of_core_apsp_matches_reference(
        g in arb_graph(28, 120),
        alg_pick in 0u8..3,
    ) {
        let algorithm = match alg_pick {
            0 => Algorithm::FloydWarshall,
            1 => Algorithm::Johnson,
            _ => Algorithm::Boundary,
        };
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(64 << 10));
        let opts = ApspOptions { algorithm: Some(algorithm), ..Default::default() };
        let result = apsp(&g, &mut dev, &opts);
        match result {
            Ok(r) => {
                let reference = bgl_plus_apsp(&g);
                prop_assert_eq!(r.store.to_dist_matrix().unwrap(), reference);
            }
            // A 64 KiB device may legitimately refuse; it must do so with
            // a structured sizing error, never a wrong answer.
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("device") || msg.contains("memory"),
                    "unexpected error: {}", msg
                );
            }
        }
    }

    /// APSP output is a metric closure: d(i,i)=0 and the triangle
    /// inequality holds for arbitrary sampled triples.
    #[test]
    fn apsp_is_metric_closure(g in arb_graph(30, 150), seed in 1u64..u64::MAX) {
        let m = bgl_plus_apsp(&g);
        for i in 0..g.num_vertices() {
            prop_assert_eq!(m.get(i, i), 0);
        }
        prop_assert!(m.check_triangle_sampled(5_000, seed).is_none());
    }
}
