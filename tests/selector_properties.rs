//! Property tests for the selector's density filter (Section IV-C): over
//! randomly drawn graphs, the boundary algorithm is never a candidate
//! above the 1% density threshold and Floyd-Warshall never below the
//! 0.01% threshold — regardless of what the cost models estimate.

use apsp::core::options::{Algorithm, JohnsonOptions};
use apsp::core::selector::JohnsonModel;
use apsp::core::{CostModels, SelectorConfig};
use apsp::gpu_sim::DeviceProfile;
use apsp::graph::generators::{gnm_expected, gnp, WeightRange};
use proptest::prelude::*;

fn select_for(g: &apsp::graph::CsrGraph) -> apsp::core::Selection {
    let profile = DeviceProfile::v100().with_memory_bytes(8 << 20);
    let models = CostModels::calibrate_cached(&profile);
    let cfg = SelectorConfig::default();
    let johnson = JohnsonModel::probe(&profile, g, &cfg, &JohnsonOptions::default())
        .expect("probe must succeed on these graph sizes");
    models.select(g, &cfg, &johnson)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Density > 1%: the boundary algorithm must not even appear among
    /// the ranked candidates, let alone win.
    #[test]
    fn boundary_never_picked_above_one_percent_density(
        n in 60usize..100,
        p in 0.03f64..0.15,
        seed in 0u64..1_000_000,
    ) {
        let g = gnp(n, p, WeightRange::default(), seed);
        prop_assert!(g.density() > 0.01, "construction must land dense");
        let sel = select_for(&g);
        prop_assert!(sel.algorithm != Algorithm::Boundary);
        prop_assert!(
            sel.estimates().iter().all(|&(a, _)| a != Algorithm::Boundary),
            "boundary survived the density filter at density {}",
            g.density()
        );
    }

    /// Density < 0.01%: Floyd-Warshall must not appear among the ranked
    /// candidates.
    #[test]
    fn fw_never_picked_below_hundredth_percent_density(
        n in 320usize..400,
        m in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        let g = gnm_expected(n, m, WeightRange::default(), seed);
        prop_assert!(g.density() < 1e-4, "construction must land very sparse");
        let sel = select_for(&g);
        prop_assert!(sel.algorithm != Algorithm::FloydWarshall);
        prop_assert!(
            sel.estimates().iter().all(|&(a, _)| a != Algorithm::FloydWarshall),
            "Floyd-Warshall survived the density filter at density {}",
            g.density()
        );
    }

    /// The middle band short-circuits to Johnson's alone.
    #[test]
    fn middle_band_is_johnson_only(
        n in 120usize..180,
        seed in 0u64..1_000_000,
    ) {
        // Target density ~1e-3: inside (0.01%, 1%) with wide margin.
        let m = (n * n) / 1000;
        let g = gnm_expected(n, m, WeightRange::default(), seed);
        prop_assert!(g.density() > 1e-4 && g.density() < 1e-2);
        let sel = select_for(&g);
        prop_assert!(sel.algorithm == Algorithm::Johnson);
        prop_assert!(sel.estimates().len() == 1);
    }
}
