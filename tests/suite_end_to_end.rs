//! End-to-end runs over tiny-scale analogs of the paper's input suite.

use apsp::core::{apsp, ApspOptions, SelectorConfig, StorageBackend};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::suite::{SuiteConfig, TABLE3, TABLE4};

/// Deep scale so every analog stays test-sized.
fn cfg() -> SuiteConfig {
    SuiteConfig {
        scale: 256,
        ..Default::default()
    }
}

#[test]
fn table3_analogs_run_and_spot_check() {
    for entry in TABLE3 {
        let g = entry.generate(&cfg());
        let n = g.num_vertices();
        // Device scaled so the output cannot fit (out-of-core regime),
        // floored at a few × the CSR input (which always fits the
        // paper's real 16 GB device).
        let mem = ((n * n) as u64)
            .max(1 << 14)
            .max(4 * g.storage_bytes() as u64);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(mem));
        let opts = ApspOptions {
            selector: SelectorConfig::scaled(256),
            ..Default::default()
        };
        let result =
            apsp(&g, &mut dev, &opts).unwrap_or_else(|e| panic!("{} failed: {e}", entry.name));
        // Spot-check three rows against Dijkstra.
        for src in [0usize, n / 2, n - 1] {
            let expect = dijkstra_sssp(&g, src as u32);
            let got = result.store.read_row(src).unwrap();
            assert_eq!(
                got, expect,
                "{} row {src} via {}",
                entry.name, result.algorithm
            );
        }
    }
}

#[test]
fn table4_analogs_run_with_disk_spill() {
    let dir = std::env::temp_dir().join("apsp_suite_e2e");
    for entry in TABLE4.iter().take(4) {
        let g = entry.generate(&cfg());
        let n = g.num_vertices();
        let mut dev =
            GpuDevice::new(DeviceProfile::v100().with_memory_bytes(((n * n) as u64).max(1 << 14)));
        let opts = ApspOptions {
            storage: StorageBackend::Disk(dir.clone()),
            selector: SelectorConfig::scaled(256),
            ..Default::default()
        };
        let result =
            apsp(&g, &mut dev, &opts).unwrap_or_else(|e| panic!("{} failed: {e}", entry.name));
        assert!(result.store.is_disk_backed());
        let expect = dijkstra_sssp(&g, 0);
        assert_eq!(result.store.read_row(0).unwrap(), expect, "{}", entry.name);
    }
}

#[test]
fn small_separator_entries_partition_small() {
    // The classification column of Table III must be reproducible from
    // the analogs: small-separator entries stay within a few × of the
    // planar ideal, FEM entries blow past it.
    let cfg = SuiteConfig {
        scale: 64,
        ..Default::default()
    };
    let mut worst_small = 0.0f64;
    let mut best_large = f64::INFINITY;
    for entry in TABLE3 {
        let g = entry.generate(&cfg);
        let n = g.num_vertices();
        let k = apsp::core::ooc_boundary::default_num_components(n);
        let p = apsp::partition::kway_partition(&g, k, &Default::default());
        let nb = p.num_boundary_nodes(&g) as f64;
        let ideal = ((k * n) as f64).sqrt();
        let ratio = nb / ideal;
        if entry.small_separator {
            worst_small = worst_small.max(ratio);
        } else {
            best_large = best_large.min(ratio);
        }
    }
    assert!(
        worst_small < best_large,
        "separator classes overlap: worst small {worst_small:.2} vs best large {best_large:.2}"
    );
}
