//! Cross-crate equivalence: every APSP path in the suite — three
//! out-of-core GPU implementations and three CPU baselines — must produce
//! the same distance matrix on the same input.

use apsp::core::options::{Algorithm, ApspOptions};
use apsp::core::{apsp, StorageBackend};
use apsp::cpu::delta_stepping::{default_delta, galois_apsp};
use apsp::cpu::{bgl_plus_apsp, blocked_floyd_warshall, DistMatrix};
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{
    banded, gnp, grid_2d, random_geometric, rmat, GridOptions, RmatParams, WeightRange,
};
use apsp::graph::CsrGraph;

fn workloads() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("gnp", gnp(120, 0.05, WeightRange::new(1, 50), 101)),
        (
            "grid",
            grid_2d(11, 10, GridOptions::default(), WeightRange::new(1, 9), 102),
        ),
        (
            "geometric",
            random_geometric(150, 0.12, WeightRange::default(), 103),
        ),
        (
            "rmat",
            rmat(
                128,
                1024,
                RmatParams::scale_free(),
                WeightRange::default(),
                104,
            ),
        ),
        (
            "banded",
            banded(140, 9, 4, 0.2, WeightRange::default(), 105),
        ),
        // Disconnected input: INF handling end to end.
        (
            "sparse-disconnected",
            gnp(100, 0.01, WeightRange::default(), 106),
        ),
    ]
}

fn gpu_result(g: &CsrGraph, algorithm: Algorithm) -> DistMatrix {
    // Small device memory forces genuine out-of-core execution.
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: StorageBackend::Memory,
        ..Default::default()
    };
    apsp(g, &mut dev, &opts)
        .unwrap_or_else(|e| panic!("{algorithm} failed: {e}"))
        .store
        .to_dist_matrix()
        .unwrap()
}

#[test]
fn all_six_implementations_agree() {
    for (name, g) in workloads() {
        let reference = bgl_plus_apsp(&g);

        // CPU baselines.
        let mut fw = DistMatrix::from_graph(&g);
        blocked_floyd_warshall(&mut fw, 32);
        assert_eq!(fw, reference, "blocked FW vs Dijkstra on {name}");
        let galois = galois_apsp(&g, default_delta(&g));
        assert_eq!(galois, reference, "delta-stepping vs Dijkstra on {name}");

        // Out-of-core GPU implementations.
        for alg in [
            Algorithm::FloydWarshall,
            Algorithm::Johnson,
            Algorithm::Boundary,
        ] {
            let got = gpu_result(&g, alg);
            assert_eq!(got, reference, "{alg} vs Dijkstra on {name}");
        }
    }
}

#[test]
fn auto_selection_is_also_correct() {
    for (name, g) in workloads() {
        let reference = bgl_plus_apsp(&g);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let result = apsp(&g, &mut dev, &ApspOptions::default())
            .unwrap_or_else(|e| panic!("auto apsp failed on {name}: {e}"));
        assert_eq!(
            result.store.to_dist_matrix().unwrap(),
            reference,
            "auto ({}) on {name}",
            result.algorithm
        );
    }
}

#[test]
fn device_memory_never_exceeds_capacity() {
    for (name, g) in workloads() {
        for alg in [
            Algorithm::FloydWarshall,
            Algorithm::Johnson,
            Algorithm::Boundary,
        ] {
            let capacity = 256u64 << 10;
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(capacity));
            let opts = ApspOptions {
                algorithm: Some(alg),
                ..Default::default()
            };
            let result = apsp(&g, &mut dev, &opts).unwrap();
            assert!(
                result.report.peak_memory <= capacity,
                "{alg} on {name}: peak {} > capacity {capacity}",
                result.report.peak_memory
            );
        }
    }
}
