//! Selector behaviour end to end: density filtering, cost-model sanity
//! and scaled-threshold handling.

use apsp::core::options::{Algorithm, ApspOptions, JohnsonOptions};
use apsp::core::selector::{CostModels, JohnsonModel};
use apsp::core::{apsp, SelectorConfig};
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{gnp, grid_2d, GridOptions, WeightRange};
use apsp::graph::stats::DensityClass;

#[test]
fn density_filter_controls_candidates() {
    let profile = DeviceProfile::v100().with_memory_bytes(2 << 20);
    let run = |g: &apsp::graph::CsrGraph, cfg: SelectorConfig| {
        let mut dev = GpuDevice::new(profile.clone());
        let opts = ApspOptions {
            selector: cfg,
            ..Default::default()
        };
        apsp(g, &mut dev, &opts).unwrap().selection.unwrap()
    };

    // Dense: candidates are Johnson + FW; boundary excluded.
    let dense = gnp(90, 0.2, WeightRange::default(), 1);
    let sel = run(&dense, SelectorConfig::default());
    assert_eq!(sel.class, DensityClass::Dense);
    let algos: Vec<_> = sel.estimates().iter().map(|&(a, _)| a).collect();
    assert!(algos.contains(&Algorithm::FloydWarshall));
    assert!(!algos.contains(&Algorithm::Boundary));

    // Middle band: Johnson only (the paper's rule 3).
    let grid = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 2);
    let mid_cfg = SelectorConfig {
        density_lo: 1e-4,
        density_hi: 0.9,
        ..Default::default()
    };
    let sel = run(&grid, mid_cfg);
    assert_eq!(sel.class, DensityClass::Sparse);
    assert_eq!(sel.algorithm, Algorithm::Johnson);
    assert_eq!(sel.estimates().len(), 1);

    // Very sparse: Johnson vs boundary; FW excluded.
    let vs_cfg = SelectorConfig {
        density_lo: 0.5,
        density_hi: 0.9,
        ..Default::default()
    };
    let sel = run(&grid, vs_cfg);
    assert_eq!(sel.class, DensityClass::VerySparse);
    let algos: Vec<_> = sel.estimates().iter().map(|&(a, _)| a).collect();
    assert!(algos.contains(&Algorithm::Boundary));
    assert!(!algos.contains(&Algorithm::FloydWarshall));
}

#[test]
fn scaled_config_reclassifies_consistently() {
    // A graph that is Sparse at paper thresholds must stay in the same
    // class when both the graph and the thresholds are "scaled" — here we
    // only check the threshold arithmetic.
    let base = SelectorConfig::default();
    let scaled = SelectorConfig::scaled(16);
    assert!((scaled.density_hi / base.density_hi - 16.0).abs() < 1e-9);
    assert!((scaled.density_lo / base.density_lo - 16.0).abs() < 1e-9);
}

#[test]
fn johnson_probe_extrapolates_within_factor_two() {
    // The core claim behind the paper's sampling model: 5 batches predict
    // the full run.
    let g = gnp(300, 0.03, WeightRange::default(), 17);
    let profile = DeviceProfile::v100().with_memory_bytes(700 << 10);
    let cfg = SelectorConfig::default();
    let jopts = JohnsonOptions::default();
    let probe = JohnsonModel::probe(&profile, &g, &cfg, &jopts).unwrap();
    assert!(
        probe.total_batches > probe.sampled,
        "need extrapolation to test"
    );
    let models = CostModels::calibrate(&profile);
    let mut dev = GpuDevice::new(profile);
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Johnson),
        johnson: jopts,
        ..Default::default()
    };
    let actual = apsp(&g, &mut dev, &opts).unwrap().sim_seconds;
    let predicted = probe.estimate_seconds(&models, &g);
    let ratio = predicted / actual;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn forced_algorithm_bypasses_probing() {
    let g = gnp(80, 0.05, WeightRange::default(), 23);
    let mut dev = GpuDevice::new(DeviceProfile::v100());
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Boundary),
        ..Default::default()
    };
    let result = apsp(&g, &mut dev, &opts).unwrap();
    assert!(result.selection.is_none());
    assert_eq!(result.algorithm, Algorithm::Boundary);
}
