//! Negative-weight APSP end to end: Johnson reweighting in front of the
//! out-of-core GPU machinery.

use apsp::core::apsp;
use apsp::core::options::{Algorithm, ApspOptions};
use apsp::cpu::johnson_reweight::{NegativeCycle, Reweighted, SignedEdge};
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random signed graph guaranteed free of negative cycles: weights are
/// `w(u,v) = base(u,v) + p(u) − p(v)` for random non-negative `base` and
/// random potentials `p`, which telescopes to ≥ 0 around every cycle.
fn random_signed_graph(n: usize, m: usize, seed: u64) -> Vec<SignedEdge> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
    (0..m)
        .map(|_| {
            let src = rng.gen_range(0..n as u32);
            let mut dst = rng.gen_range(0..n as u32);
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            let base = rng.gen_range(0..30i64);
            SignedEdge {
                src,
                dst,
                weight: base + p[src as usize] - p[dst as usize],
            }
        })
        .collect()
}

#[test]
fn reweighted_ooc_apsp_matches_signed_reference() {
    let n = 80;
    let edges = random_signed_graph(n, 600, 99);
    assert!(
        edges.iter().any(|e| e.weight < 0),
        "test needs actual negative edges"
    );
    let rw = Reweighted::new(n, &edges).expect("no negative cycles by construction");
    let reference = rw.apsp();

    // Run the reweighted (non-negative) graph through every out-of-core
    // implementation and translate distances back.
    for alg in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let opts = ApspOptions {
            algorithm: Some(alg),
            ..Default::default()
        };
        let result = apsp(&rw.graph, &mut dev, &opts).unwrap();
        for (i, ref_row) in reference.iter().enumerate() {
            let row = result.store.read_row(i).unwrap();
            for j in 0..n {
                let got = rw.true_distance(i as u32, j as u32, row[j]);
                assert_eq!(got, ref_row[j], "{alg}: pair ({i}, {j})");
            }
        }
    }
}

#[test]
fn negative_cycle_is_detected_before_any_gpu_work() {
    // Splice a −1 cycle into an otherwise cycle-safe random graph. The
    // Bellman-Ford front-end must refuse, so the out-of-core pipeline is
    // never handed an instance with no well-defined answer.
    let mut edges = random_signed_graph(30, 150, 5);
    edges.push(SignedEdge {
        src: 10,
        dst: 11,
        weight: 2,
    });
    edges.push(SignedEdge {
        src: 11,
        dst: 12,
        weight: 2,
    });
    edges.push(SignedEdge {
        src: 12,
        dst: 10,
        weight: -5,
    });
    assert!(matches!(Reweighted::new(30, &edges), Err(NegativeCycle)));
}

#[test]
fn negative_cycle_behind_a_long_chain_is_still_detected() {
    // The cycle's negativity only propagates after many Bellman-Ford
    // rounds: a chain 0 → 1 → … → k feeds a tail cycle of total −1.
    // This is the case a round-capped (early-exiting) Bellman-Ford gets
    // wrong, so it pins the iteration count, not just the happy path.
    let k = 40u32;
    let mut edges: Vec<SignedEdge> = (0..k)
        .map(|v| SignedEdge {
            src: v,
            dst: v + 1,
            weight: 1,
        })
        .collect();
    edges.push(SignedEdge {
        src: k,
        dst: k + 1,
        weight: 3,
    });
    edges.push(SignedEdge {
        src: k + 1,
        dst: k,
        weight: -4,
    });
    assert!(matches!(
        Reweighted::new(k as usize + 2, &edges),
        Err(NegativeCycle)
    ));
    // Relaxing the cycle to total 0 makes the same topology legal, and
    // the reweighted graph runs through out-of-core Johnson cleanly.
    *edges.last_mut().unwrap() = SignedEdge {
        src: k + 1,
        dst: k,
        weight: -3,
    };
    let rw = Reweighted::new(k as usize + 2, &edges).unwrap();
    let reference = rw.apsp();
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Johnson),
        ..Default::default()
    };
    let result = apsp(&rw.graph, &mut dev, &opts).unwrap();
    for (i, ref_row) in reference.iter().enumerate() {
        let row = result.store.read_row(i).unwrap();
        for j in 0..(k as usize + 2) {
            assert_eq!(
                rw.true_distance(i as u32, j as u32, row[j]),
                ref_row[j],
                "pair ({i}, {j})"
            );
        }
    }
}

#[test]
fn negative_distances_actually_occur() {
    let edges = random_signed_graph(40, 200, 7);
    let rw = Reweighted::new(40, &edges).unwrap();
    let d = rw.apsp();
    let any_negative = (0..40).any(|i| (0..40).any(|j| matches!(d[i][j], Some(x) if x < 0)));
    assert!(
        any_negative,
        "the signed construction should produce negative shortest distances"
    );
}
