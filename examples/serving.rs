//! APSP as a service: the job scheduler over a simulated device fleet.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The README "Serving" quickstart: a two-device [`ApspService`] takes a
//! full-matrix job and a k-source partial query against the same hot
//! graph, serves a repeat of the full job from the verified result
//! cache, and turns a job away typed when the admission queue is full —
//! the degradation ladder in miniature.

use std::sync::Arc;

use apsp::core::{ApspService, JobRequest, JobState, ServiceConfig, ServiceErrorKind};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::DeviceProfile;
use apsp::graph::generators::{gnp, WeightRange};

fn main() {
    // A hot graph most queries touch, on a deliberately tiny fleet so
    // full jobs batch and the queue can saturate.
    let graph = Arc::new(gnp(120, 0.05, WeightRange::default(), 42));
    let n = graph.num_vertices();
    let mut svc = ApspService::new(ServiceConfig {
        devices: vec![DeviceProfile::v100().with_memory_bytes(512 << 10); 2],
        queue_capacity: 2,
        ..ServiceConfig::default()
    });

    // A full-matrix job and a partial query: 3 sources move O(k·n)
    // through the Johnson batch driver, not the full O(n²).
    let full = svc.submit(JobRequest::full(Arc::clone(&graph))).unwrap();
    let sources = vec![0, 17, 64];
    let partial = svc
        .submit(JobRequest::sources(Arc::clone(&graph), sources.clone()))
        .unwrap();

    // Saturate the bounded queue: the third submission is turned away
    // typed, with a retry-after hint, instead of stalling the service.
    let overflow = svc.submit(JobRequest::full(Arc::clone(&graph)));
    match overflow {
        Err(e) if e.kind() == ServiceErrorKind::QueueFull => println!(
            "overload: typed {} rejection, retry after ~{} ms",
            e.kind().as_str(),
            e.retry_after_ms().unwrap(),
        ),
        other => panic!("expected a typed QueueFull rejection, got {other:?}"),
    }

    svc.run_until_idle();
    let JobState::Completed(done) = svc.state(full).unwrap() else {
        panic!("full job did not complete");
    };
    println!(
        "full matrix: {n} × {n} rows in {:.6} simulated s on device {:?}",
        done.sim_seconds, done.device,
    );
    let full_bits = Arc::clone(&done.rows);
    let JobState::Completed(part) = svc.state(partial).unwrap() else {
        panic!("partial job did not complete");
    };
    println!(
        "partial query: {} rows in {:.6} simulated s",
        part.rows.rows(),
        part.sim_seconds,
    );
    for (ri, &s) in sources.iter().enumerate() {
        assert_eq!(
            part.rows.row(ri),
            &dijkstra_sssp(&graph, s)[..],
            "partial row {ri} must equal Dijkstra from source {s}"
        );
    }

    // A repeat of the full job hits the verified result cache: rows are
    // checksummed at insert and re-verified before they are served, so
    // a hit is byte-identical to recomputation — and costs no device
    // time even when the queue is saturated.
    let again = svc.submit(JobRequest::full(Arc::clone(&graph))).unwrap();
    let JobState::Completed(hit) = svc.state(again).unwrap() else {
        panic!("cache hit completes at submit");
    };
    assert!(hit.from_cache);
    assert_eq!(hit.rows.data, full_bits.data);
    println!("repeat of the full job: served from cache, byte-identical ✓");

    let c = svc.counters();
    println!(
        "counters: {} admitted, {} completed, {} rejected, cache {}/{} hit/miss",
        c.admitted,
        c.completed,
        c.rejected_busy + c.rejected_queue_full,
        c.cache_hits,
        c.cache_misses,
    );
}
