//! Road-network scenario: the boundary algorithm on a small-separator
//! graph, with the paper's transfer optimizations toggled.
//!
//! ```text
//! cargo run --release --example road_network
//! ```
//!
//! Road networks (the paper's `usroads`, `luxembourg_osm`, census
//! graphs) partition with few boundary nodes, which is exactly the case
//! the boundary algorithm dominates. This example builds a road-like
//! random geometric graph, partitions it, runs the boundary algorithm
//! with each optimization combination, and prints the simulated-time
//! breakdown.

use apsp::core::ooc_boundary::{default_num_components, ooc_boundary};
use apsp::core::options::BoundaryOptions;
use apsp::core::{StorageBackend, TileStore};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{ensure_connected, grid_2d, GridOptions, WeightRange};
use apsp::partition::{kway_partition, PartitionConfig};

fn main() {
    // ~2500 junctions: a 50×50 street grid with a quarter of the
    // segments removed — planar, connected, average degree ≈ 3, the
    // structure real road networks have.
    let n = 2500;
    let graph = ensure_connected(
        &grid_2d(
            50,
            50,
            GridOptions {
                diagonals: false,
                deletion_prob: 0.25,
            },
            WeightRange::new(1, 100),
            7,
        ),
        WeightRange::new(1, 100),
        7,
    );
    println!(
        "road network: {} junctions, {} segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Partition quality: the property the boundary algorithm lives on.
    let k = default_num_components(n);
    let partition = kway_partition(&graph, k, &PartitionConfig::default());
    let nb = partition.num_boundary_nodes(&graph);
    let ideal = ((k * n) as f64).sqrt();
    println!(
        "partition: k = {k}, boundary nodes = {nb} (planar ideal √(k·n) ≈ {ideal:.0}) → {}",
        if (nb as f64) < 4.0 * ideal {
            "small separator ✓"
        } else {
            "large separator"
        }
    );

    // A scaled-down V100 so the out-of-core machinery engages.
    let profile = DeviceProfile::v100().scaled_for_reproduction(48);
    let mut reference_row = None;
    let mut last_trace = Vec::new();
    for (label, batch, overlap) in [
        ("naive (no batching, no overlap)", false, false),
        ("batched transfers", true, false),
        ("batched + overlapped", true, true),
    ] {
        let mut dev = GpuDevice::new(profile.clone());
        dev.enable_trace();
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            batch_transfers: batch,
            overlap_transfers: overlap,
            ..Default::default()
        };
        let stats = ooc_boundary(&mut dev, &graph, &mut store, &opts).expect("boundary run");
        let report = dev.report();
        println!(
            "{label:34} {:8.3} ms  (transfer fraction {:4.1}%, D2H calls {})",
            stats.sim_seconds * 1e3,
            report.transfer_fraction() * 100.0,
            report.transfers_d2h
        );
        // All variants must produce identical distances.
        let row0 = store.read_row(0).unwrap();
        match &reference_row {
            None => reference_row = Some(row0),
            Some(r) => assert_eq!(&row0, r, "optimization changed results!"),
        }
        last_trace = dev.trace().to_vec();
    }

    // And the distances themselves are right.
    let expect = dijkstra_sssp(&graph, 0);
    assert_eq!(reference_row.unwrap(), expect);
    println!("distances verified against Dijkstra ✓");

    // Device timeline of the fully optimized run: `d` bars on the d2h row
    // while the compute row is busy = the overlap doing its job.
    println!("\ndevice timeline (batched + overlapped):");
    print!("{}", apsp::gpu_sim::trace::render_gantt(&last_trace, 100));
}
