//! Algorithm selection across the density spectrum.
//!
//! ```text
//! cargo run --release --example algorithm_selection
//! ```
//!
//! Sweeps graph density from road-network-sparse to near-1%-dense and
//! shows which implementation the paper's selector picks at each point,
//! together with its cost-model estimates — a miniature of the paper's
//! Section IV story.

use apsp::core::{apsp, ApspOptions, SelectorConfig};
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{gnm_expected, grid_2d, GridOptions, WeightRange};
use apsp::graph::CsrGraph;

fn main() {
    let n = 400;
    // From a planar grid (very sparse, small separator) through random
    // graphs of growing density.
    let mut workloads: Vec<(String, CsrGraph)> = vec![{
        let side = (n as f64).sqrt() as usize;
        let g = grid_2d(
            side,
            side,
            GridOptions::default(),
            WeightRange::default(),
            3,
        );
        ("grid (planar)".to_string(), g)
    }];
    for avg_deg in [8usize, 40, 120] {
        let g = gnm_expected(n, n * avg_deg, WeightRange::default(), 11 + avg_deg as u64);
        workloads.push((format!("random, avg degree {avg_deg}"), g));
    }

    // Thresholds matching this toy size: the paper's 1% / 0.01% cuts are
    // calibrated for n ≈ 10⁵; at n = 400 the same *classes* sit higher.
    let selector = SelectorConfig {
        density_lo: 0.02,
        density_hi: 0.15,
        ..Default::default()
    };

    println!(
        "{:<28} {:>10} {:>16} {:>44}",
        "graph", "density", "selected", "estimates (simulated seconds)"
    );
    for (name, graph) in workloads {
        let profile = DeviceProfile::v100().with_memory_bytes(1 << 20);
        let mut dev = GpuDevice::new(profile);
        let opts = ApspOptions {
            selector,
            ..Default::default()
        };
        match apsp(&graph, &mut dev, &opts) {
            Ok(result) => {
                let sel = result.selection.expect("auto mode");
                let ests: Vec<String> = sel
                    .estimates()
                    .iter()
                    .map(|(a, t)| format!("{a}={t:.5}"))
                    .collect();
                println!(
                    "{:<28} {:>9.3}% {:>16} {:>44}",
                    name,
                    graph.density() * 100.0,
                    result.algorithm.to_string(),
                    ests.join("  ")
                );
            }
            Err(e) => println!("{name:<28} failed: {e}"),
        }
    }
}
