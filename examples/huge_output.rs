//! The Table IV regime: output too large even for host RAM.
//!
//! ```text
//! cargo run --release --example huge_output
//! ```
//!
//! The paper's second scaling claim is that the out-of-core
//! implementations keep working when the n×n result exceeds *CPU* memory
//! (its Table IV / Fig 5). This example reproduces that regime in
//! miniature: the result matrix spills to a disk file and is queried
//! row-by-row without ever materializing in RAM.

use apsp::core::{apsp, ApspOptions, StorageBackend};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::suite::{find, SuiteConfig};

fn main() {
    // The `cage13` analog (a scale-free biology matrix from Table IV).
    let entry = find("cage13").expect("suite entry");
    let cfg = SuiteConfig {
        scale: 128,
        ..Default::default()
    };
    let graph = entry.generate(&cfg);
    let n = graph.num_vertices();
    let output_bytes = n * n * 4;
    println!(
        "analog of {}: n = {n}, m = {}, result matrix = {:.1} MiB",
        entry.name,
        graph.num_edges(),
        output_bytes as f64 / (1 << 20) as f64
    );

    // Pretend the host can't hold the output: spill to disk.
    let spill = std::env::temp_dir().join("apsp-huge-output-example");
    let mut device = GpuDevice::new(DeviceProfile::v100().scaled_for_reproduction(128));
    let opts = ApspOptions {
        storage: StorageBackend::Disk(spill.clone()),
        ..Default::default()
    };
    let result = apsp(&graph, &mut device, &opts).expect("apsp failed");
    assert!(result.store.is_disk_backed());
    println!(
        "computed with {} in {:.4} simulated s; result resides in {}",
        result.algorithm,
        result.sim_seconds,
        spill.display()
    );

    // Row-granular queries against the spilled store.
    let sources = [0usize, n / 3, n - 1];
    for &s in &sources {
        let row = result.store.read_row(s).expect("row read");
        let reachable = row.iter().filter(|&&d| d < apsp::prelude::INF).count();
        let expect = dijkstra_sssp(&graph, s as u32);
        assert_eq!(row, expect, "row {s}");
        println!("row {s:5}: {reachable} reachable vertices ✓");
    }
    println!("disk-backed result verified against Dijkstra ✓");
    // The store's file is removed when `result` drops.
}
