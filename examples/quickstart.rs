//! Quickstart: compute all-pairs shortest paths on a simulated GPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small random graph, lets the selector pick the best
//! out-of-core implementation, and verifies a few distances against the
//! CPU reference.

use apsp::core::{apsp, ApspOptions};
use apsp::cpu::bgl_plus_apsp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{gnp, WeightRange};

fn main() {
    // A random directed graph: 500 vertices, ~2% density, weights 1–100.
    let graph = gnp(500, 0.02, WeightRange::new(1, 100), 42);
    println!(
        "graph: {} vertices, {} edges, density {:.3}%",
        graph.num_vertices(),
        graph.num_edges(),
        graph.density() * 100.0
    );

    // A simulated V100 with little memory, so the out-of-core machinery
    // actually engages (the full 16 GB profile would hold this output
    // in-core).
    let profile = DeviceProfile::v100().with_memory_bytes(512 << 10);
    let mut device = GpuDevice::new(profile);

    // Let the selector choose between blocked Floyd-Warshall, batched
    // Johnson's and the boundary algorithm.
    let result = apsp(&graph, &mut device, &ApspOptions::default()).expect("apsp failed");
    println!("selected algorithm : {}", result.algorithm);
    if let Some(sel) = &result.selection {
        for c in &sel.candidates {
            match (c.estimate, &c.filter_reason) {
                (Some(est), _) => {
                    println!("  estimated {}: {est:.6} simulated seconds", c.algorithm)
                }
                (_, Some(reason)) => println!("  estimated {}: filtered ({reason})", c.algorithm),
                _ => {}
            }
        }
    }
    println!("simulated time     : {:.6} s", result.sim_seconds);
    println!(
        "device transfers   : {:.1} MiB down, {:.1} MiB up",
        result.report.bytes_d2h as f64 / (1 << 20) as f64,
        result.report.bytes_h2d as f64 / (1 << 20) as f64
    );

    // Spot-check against the multicore CPU reference.
    let reference = bgl_plus_apsp(&graph);
    for &(i, j) in &[(0usize, 499usize), (7, 123), (250, 250)] {
        let got = result.store.get(i, j).expect("store read");
        assert_eq!(got, reference.get(i, j), "distance ({i}, {j})");
        println!("dist({i:3}, {j:3}) = {got}");
    }
    println!("verified against the CPU reference ✓");
}
