//! Multi-device boundary algorithm: Algorithm 3 sharded across a fleet
//! of simulated devices — homogeneous scaling first, then a mixed
//! V100 + K80 fleet.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```
//!
//! Components are placed per-device by an LPT cost model over the
//! partition (not round-robin); the boundary graph (dist₃) is solved
//! once on the fastest device and broadcast — the serial fraction that
//! Amdahl's law turns into the scaling ceiling shown in the output. At
//! the dist₄ phase boundary the panels are re-planned against each
//! device's realized elapsed time, so a device that finished dist₂
//! early steals panels from a slower one ("stolen" column).
//!
//! The component count is pinned so every fleet schedules the *same*
//! partition — a finer partition has more boundary work, which would
//! confound the curve. Results are bit-identical at every fleet shape.

use apsp::core::multi_gpu::{ooc_boundary_multi, parse_fleet};
use apsp::core::options::BoundaryOptions;
use apsp::core::{StorageBackend, TileStore};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{ensure_connected, grid_2d, GridOptions, WeightRange};
use apsp::graph::CsrGraph;

fn run_fleet(
    graph: &CsrGraph,
    profiles: &[DeviceProfile],
) -> (apsp::core::MultiGpuStats, Vec<u32>) {
    let mut devs: Vec<GpuDevice> = profiles
        .iter()
        .map(|p| GpuDevice::new(p.scaled_for_reproduction(32)))
        .collect();
    let mut store = TileStore::new(graph.num_vertices(), &StorageBackend::Memory).unwrap();
    let opts = BoundaryOptions {
        // Same partition for every fleet: the curve compares scheduling,
        // not partition quality.
        num_components: Some(8),
        ..Default::default()
    };
    let stats = ooc_boundary_multi(&mut devs, graph, &mut store, &opts).expect("multi-device run");
    (stats, store.read_row(0).unwrap())
}

fn main() {
    // A 60×60 thinned street grid (≈ 3600 junctions).
    let weights = WeightRange::new(1, 100);
    let graph = ensure_connected(
        &grid_2d(
            60,
            60,
            GridOptions {
                diagonals: false,
                deletion_prob: 0.2,
            },
            weights,
            11,
        ),
        weights,
        11,
    );
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>14} {:>12} {:>10} {:>8} {:>28}",
        "fleet", "sim time", "speedup", "stolen", "phases (dist2 / dist3 / dist4)"
    );

    let mut baseline = None;
    let mut reference_row = None;
    let mut report = |label: &str, profiles: &[DeviceProfile]| {
        let (stats, row) = run_fleet(&graph, profiles);
        let base = *baseline.get_or_insert(stats.sim_seconds);
        println!(
            "{label:>14} {:>10.3}ms {:>9.2}x {:>8} {:>9.3} / {:>6.3} / {:>6.3} ms",
            stats.sim_seconds * 1e3,
            base / stats.sim_seconds,
            stats.stolen_panels,
            stats.phase_seconds[0] * 1e3,
            stats.phase_seconds[1] * 1e3,
            stats.phase_seconds[2] * 1e3,
        );
        // Identical results at every fleet shape.
        match &reference_row {
            None => reference_row = Some(row),
            Some(r) => assert_eq!(&row, r, "fleet shape changed results!"),
        }
    };

    for count in [1usize, 2, 4, 8] {
        let fleet = vec![DeviceProfile::v100(); count];
        report(&format!("v100 x{count}"), &fleet);
    }
    // Heterogeneous fleets parse from the same spec `apsp-run --fleet`
    // takes; the K80 is ~4× slower, so the cost model loads the V100
    // with the bigger components instead of splitting evenly.
    for spec in ["v100,k80", "v100,k80,v100,k80"] {
        report(spec, &parse_fleet(spec).unwrap());
    }

    assert_eq!(reference_row.unwrap(), dijkstra_sssp(&graph, 0));
    println!("results identical across fleet shapes, verified against Dijkstra ✓");
}
