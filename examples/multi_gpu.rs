//! Multi-device boundary algorithm: the distributed heritage of
//! Algorithm 3, across 1–8 simulated V100s.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```
//!
//! Components round-robin across devices for dist₂ and dist₄; the
//! boundary graph (dist₃) is solved once and broadcast — the serial
//! fraction that Amdahl's law turns into the scaling ceiling shown in
//! the output.

use apsp::core::multi_gpu::ooc_boundary_multi;
use apsp::core::options::BoundaryOptions;
use apsp::core::{StorageBackend, TileStore};
use apsp::cpu::dijkstra_sssp;
use apsp::gpu_sim::{DeviceProfile, GpuDevice};
use apsp::graph::generators::{ensure_connected, grid_2d, GridOptions, WeightRange};

fn main() {
    // A 60×60 thinned street grid (≈ 3600 junctions).
    let weights = WeightRange::new(1, 100);
    let graph = ensure_connected(
        &grid_2d(
            60,
            60,
            GridOptions {
                diagonals: false,
                deletion_prob: 0.2,
            },
            weights,
            11,
        ),
        weights,
        11,
    );
    let n = graph.num_vertices();
    println!("graph: {} vertices, {} edges", n, graph.num_edges());
    println!(
        "{:>8} {:>12} {:>10} {:>28}",
        "devices", "sim time", "speedup", "phases (dist2 / dist3 / dist4)"
    );

    let profile = DeviceProfile::v100().scaled_for_reproduction(32);
    let mut baseline = None;
    let mut reference_row = None;
    for count in [1usize, 2, 4, 8] {
        let mut devs: Vec<GpuDevice> = (0..count)
            .map(|_| GpuDevice::new(profile.clone()))
            .collect();
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        let stats = ooc_boundary_multi(&mut devs, &graph, &mut store, &BoundaryOptions::default())
            .expect("multi-GPU run");
        let base = *baseline.get_or_insert(stats.sim_seconds);
        println!(
            "{count:>8} {:>10.3}ms {:>9.2}x {:>9.3} / {:>6.3} / {:>6.3} ms",
            stats.sim_seconds * 1e3,
            base / stats.sim_seconds,
            stats.phase_seconds[0] * 1e3,
            stats.phase_seconds[1] * 1e3,
            stats.phase_seconds[2] * 1e3,
        );
        // Identical results at every device count.
        let row = store.read_row(0).unwrap();
        match &reference_row {
            None => reference_row = Some(row),
            Some(r) => assert_eq!(&row, r, "device count changed results!"),
        }
    }
    assert_eq!(reference_row.unwrap(), dijkstra_sssp(&graph, 0));
    println!("results identical across device counts, verified against Dijkstra ✓");
}
