//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a `Mutex` with an infallible, poison-free `lock()` and a `const fn
//! new` (required by `static` cost-model caches). Backed by
//! `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    static GLOBAL: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    #[test]
    fn const_new_supports_statics() {
        GLOBAL.lock().push(1);
        assert_eq!(GLOBAL.lock().len(), 1);
    }

    #[test]
    fn lock_recovers_from_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
