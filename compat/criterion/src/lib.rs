//! Offline stand-in for the subset of `criterion` this workspace uses.
//! The build environment cannot reach crates.io, so the benches link a
//! minimal harness instead: each benchmark runs a short warm-up plus a
//! fixed measured loop and prints mean wall-clock time per iteration.
//! No statistics, no HTML reports — enough to keep `cargo bench`
//! compiling and producing comparable numbers between commits.

use std::fmt::Display;
use std::time::Instant;

/// Measured iterations per benchmark (after one warm-up call).
const MEASURED_ITERS: u32 = 10;

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed() / self.iters;
        println!("    {per_iter:?}/iter over {} iters", self.iters);
    }
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: MEASURED_ITERS,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        println!("bench {id}");
        f(&mut Bencher {
            iters: MEASURED_ITERS,
        });
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        println!("bench {}/{id}", self.name);
        f(&mut Bencher {
            iters: self.sample_size,
        });
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{id}", self.name);
        f(
            &mut Bencher {
                iters: self.sample_size,
            },
            input,
        );
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("f", 1), &41u32, |b, &x| {
                b.iter(|| x + 1);
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
