//! Offline stand-in for the subset of `rayon` this workspace uses. The
//! build environment cannot reach crates.io, so `par_iter`,
//! `par_chunks_mut` and `into_par_iter` fall back to their sequential
//! `std` equivalents. Call sites keep rayon's API; swapping the real
//! crate back in is a one-line manifest change.
//!
//! The CPU baselines lose parallel speedup under this shim, but every
//! algorithm stays correct: the parallel loops they express are
//! embarrassingly parallel and order-independent.

/// `slice.par_chunks_mut(size)` -> sequential `chunks_mut(size)`.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `slice.par_iter()` -> sequential `iter()`.
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

impl<T> IntoParallelRefIterator<T> for Vec<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

/// `x.into_par_iter()` -> sequential `into_iter()`; covers ranges,
/// vectors — anything `IntoIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_and_iters_match_std() {
        let mut v: Vec<u32> = (0..10).collect();
        for (i, chunk) in v.par_chunks_mut(3).enumerate() {
            for x in chunk.iter_mut() {
                *x += i as u32 * 100;
            }
        }
        assert_eq!(v[3], 103);
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10);
        let sum: usize = (0..5usize).into_par_iter().filter(|&i| i != 2).sum();
        assert_eq!(sum, 8);
    }
}
