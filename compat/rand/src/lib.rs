//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses. The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible implementation instead:
//! `SmallRng` (a splitmix64 generator), `Rng::{gen, gen_range, gen_bool}`
//! over integer/float ranges, `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! Determinism contract: for a fixed seed the sequence is stable across
//! runs and platforms (pure 64-bit integer arithmetic). It is NOT
//! bit-compatible with upstream `rand` — seeds recorded in test logs are
//! only reproducible against this shim.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// splitmix64 finalizer — full-avalanche mixing of one 64-bit word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable uniformly from the generator's full output domain
/// (the shim's analog of `Distribution<T> for Standard`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (the shim's analog of `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructors from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, deterministic generator (splitmix64). Statistically
    /// sound for the graph-generation and sampling workloads here; not
    /// cryptographic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds give unrelated streams.
            let mut s = seed ^ 0x5DEE_CE66_D1CE_4E5B;
            let _ = splitmix64(&mut s);
            SmallRng { state: s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`) — the subset of
    /// `rand::seq::SliceRandom` the workspace calls.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, high-to-low, matching the classic formulation.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
