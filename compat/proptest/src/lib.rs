//! Offline stand-in for the subset of `proptest` this workspace uses.
//! The build environment cannot reach crates.io, so property tests run on
//! a vendored mini-engine: strategies are deterministic samplers (seeded
//! from the test's name, stable across runs), `proptest!` expands each
//! property into a plain `#[test]` loop over `ProptestConfig::cases`
//! cases, and `prop_assert*` panics like `assert*`.
//!
//! Differences from upstream worth knowing when a property fails:
//! - no shrinking — the reported inputs are the raw failing case;
//! - cases are deterministic per test name, so a failure reproduces by
//!   rerunning the same test binary (no `PROPTEST_CASES`/persistence).

use std::ops::Range;

/// Deterministic splitmix64 stream used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Stable seed from a test name (FNV-1a), so each property gets an
    /// independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values: the sampling core of proptest's `Strategy`.
/// No shrinking — `sample` draws one value per test case.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128).wrapping_sub(start as i128) as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for `collection::vec`: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-property configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg).cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default().cases; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases: u32 = $cases;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair(bound: u32) -> impl Strategy<Value = (u32, Vec<u32>)> {
        (1u32..bound)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n, 0usize..8)))
            .prop_map(|(n, v)| (n, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Flat-mapped bounds are respected by dependent strategies.
        #[test]
        fn dependent_sampling_respects_bounds(pair in arb_pair(50)) {
            let (n, v) = pair;
            prop_assert!((1..50).contains(&n));
            for x in v {
                prop_assert!(x < n, "{} !< {}", x, n);
            }
        }

        #[test]
        fn tuples_and_ranges_sample_in_bounds(
            t in (0u8..3, 10usize..20, 0.0f64..1.0),
            exact in crate::collection::vec(0i64..5, 4),
        ) {
            prop_assert!(t.0 < 3);
            prop_assert!((10..20).contains(&t.1));
            prop_assert!((0.0..1.0).contains(&t.2));
            prop_assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
