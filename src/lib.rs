//! Facade crate for the out-of-core GPU APSP suite.
//!
//! Re-exports the individual crates so examples, integration tests and
//! downstream users get the whole system with a single dependency:
//!
//! ```
//! use apsp::graph::generators::{gnp, WeightRange};
//! use apsp::prelude::*;
//!
//! let g = gnp(64, 0.1, WeightRange::default(), 7);
//! assert_eq!(g.num_vertices(), 64);
//! ```

/// Graph substrate: CSR storage, generators, Matrix Market IO, statistics.
pub use apsp_graph as graph;

/// Multilevel k-way graph partitioner (METIS substitute).
pub use apsp_partition as partition;

/// Discrete-event GPU device simulator.
pub use apsp_gpu_sim as gpu_sim;

/// Device kernels (min-plus multiply, blocked FW, Near-Far SSSP, MSSP).
pub use apsp_kernels as kernels;

/// Multicore CPU baselines (BGL-Plus, blocked FW, delta-stepping, …).
pub use apsp_cpu as cpu;

/// The paper's contribution: out-of-core implementations and the selector.
pub use apsp_core as core;

/// The names most programs need.
pub mod prelude {
    pub use apsp_graph::{CsrGraph, Dist, GraphBuilder, VertexId, INF};
}
