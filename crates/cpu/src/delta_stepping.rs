//! Delta-stepping SSSP (Meyer & Sanders) — the Galois baseline's
//! algorithm, and the parent of the Near-Far scheme the GPU kernels use.

use crate::dense::DistMatrix;
use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};
use rayon::prelude::*;

/// Delta-stepping from `source` with bucket width `delta`.
///
/// Vertices are kept in buckets by `dist / delta`; the smallest non-empty
/// bucket is settled to a fixed point over its *light* edges (weight
/// < delta), then its *heavy* edges are relaxed once. With
/// `delta = max_weight + 1` this degenerates to Bellman-Ford-ish behaviour,
/// with `delta = 1` to Dijkstra-ish.
pub fn delta_stepping_sssp(g: &CsrGraph, source: VertexId, delta: Dist) -> Vec<Dist> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta >= 1, "delta must be at least 1");
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let bucket_of = |d: Dist| (d / delta) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new()];
    buckets[0].push(source);
    let mut current = 0usize;
    loop {
        // Find the next non-empty bucket.
        while current < buckets.len() && buckets[current].is_empty() {
            current += 1;
        }
        if current >= buckets.len() {
            break;
        }
        // Phase 1: settle light edges within the bucket to a fixed point.
        let mut frontier = std::mem::take(&mut buckets[current]);
        let mut settled: Vec<VertexId> = Vec::new();
        while !frontier.is_empty() {
            settled.extend_from_slice(&frontier);
            let mut next = Vec::new();
            for &v in &frontier {
                let dv = dist[v as usize];
                if bucket_of(dv) != current {
                    continue; // moved to a later bucket since insertion
                }
                for (u, w) in g.edges_from(v) {
                    if w >= delta {
                        continue;
                    }
                    let nd = dist_add(dv, w);
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        let b = bucket_of(nd);
                        if b == current {
                            next.push(u);
                        } else {
                            push_bucket(&mut buckets, b, u);
                        }
                    }
                }
            }
            frontier = next;
        }
        // Phase 2: relax heavy edges of everything settled in this bucket.
        for &v in &settled {
            let dv = dist[v as usize];
            if dv >= INF {
                continue;
            }
            for (u, w) in g.edges_from(v) {
                if w < delta {
                    continue;
                }
                let nd = dist_add(dv, w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    push_bucket(&mut buckets, bucket_of(nd), u);
                }
            }
        }
        current += 1;
    }
    dist
}

fn push_bucket(buckets: &mut Vec<Vec<VertexId>>, b: usize, v: VertexId) {
    if b >= buckets.len() {
        buckets.resize_with(b + 1, Vec::new);
    }
    buckets[b].push(v);
}

/// Galois-style APSP: delta-stepping per source, sources in parallel.
pub fn galois_apsp(g: &CsrGraph, delta: Dist) -> DistMatrix {
    let n = g.num_vertices();
    let mut m = DistMatrix::new(n);
    m.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(source, row)| {
            let d = delta_stepping_sssp(g, source as VertexId, delta);
            row.copy_from_slice(&d);
        });
    m
}

/// The usual heuristic bucket width: average edge weight (≥ 1).
pub fn default_delta(g: &CsrGraph) -> Dist {
    let m = g.num_edges();
    if m == 0 {
        return 1;
    }
    let sum: u64 = g.weights().iter().map(|&w| w as u64).sum();
    ((sum / m as u64) as Dist).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_sssp;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};

    #[test]
    fn matches_dijkstra_across_deltas() {
        let g = gnp(100, 0.05, WeightRange::new(1, 50), 31);
        let reference = dijkstra_sssp(&g, 0);
        for delta in [1, 5, 25, 51, 1000] {
            assert_eq!(
                delta_stepping_sssp(&g, 0, delta),
                reference,
                "delta {delta}"
            );
        }
    }

    #[test]
    fn grid_all_sources() {
        let g = grid_2d(5, 5, GridOptions::default(), WeightRange::new(1, 9), 7);
        let m = galois_apsp(&g, default_delta(&g));
        for s in 0..25u32 {
            assert_eq!(m.row(s as usize), &dijkstra_sssp(&g, s)[..], "source {s}");
        }
    }

    #[test]
    fn default_delta_is_mean_weight() {
        let g = gnp(50, 0.2, WeightRange::new(10, 10), 1);
        assert_eq!(default_delta(&g), 10);
        let empty = apsp_graph::GraphBuilder::new(3).build();
        assert_eq!(default_delta(&empty), 1);
    }

    #[test]
    fn zero_weight_edges_in_light_phase() {
        let mut b = apsp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 3);
        let g = b.build();
        assert_eq!(delta_stepping_sssp(&g, 0, 2), vec![0, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "delta must be at least 1")]
    fn rejects_zero_delta() {
        let g = apsp_graph::GraphBuilder::new(1).build();
        delta_stepping_sssp(&g, 0, 0);
    }
}
