//! Binary-heap Dijkstra — the suite's ground-truth SSSP.

use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths from `source` with a lazy-deletion binary
/// heap (the Boost Graph Library strategy BGL-Plus builds on).
///
/// Complexity `O((n + m) log n)`; distances of unreachable vertices are
/// [`INF`].
pub fn dijkstra_sssp(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (u, w) in g.edges_from(v) {
            let nd = dist_add(d, w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Dijkstra into a caller-provided row (avoids per-source allocation when
/// filling a whole matrix).
pub fn dijkstra_sssp_into(g: &CsrGraph, source: VertexId, dist: &mut [Dist]) {
    let n = g.num_vertices();
    assert_eq!(dist.len(), n);
    dist.fill(INF);
    dist[source as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.edges_from(v) {
            let nd = dist_add(d, w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{gnp, WeightRange};
    use apsp_graph::GraphBuilder;

    #[test]
    fn shortest_paths_on_diamond() {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (5), 2 -> 3 (1)
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 4);
        b.add_edge(1, 2, 2);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 1);
        let g = b.build();
        assert_eq!(dijkstra_sssp(&g, 0), vec![0, 1, 3, 4]);
        assert_eq!(dijkstra_sssp(&g, 3), vec![INF, INF, INF, 0]);
    }

    #[test]
    fn zero_weight_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        let g = b.build();
        assert_eq!(dijkstra_sssp(&g, 0), vec![0, 0, 0]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 10);
        b.add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(dijkstra_sssp(&g, 0), vec![0, 3]);
    }

    #[test]
    fn into_matches_owned() {
        let g = gnp(200, 0.05, WeightRange::default(), 13);
        let mut row = vec![0; 200];
        for s in [0u32, 17, 199] {
            dijkstra_sssp_into(&g, s, &mut row);
            assert_eq!(row, dijkstra_sssp(&g, s));
        }
    }

    #[test]
    fn disconnected_stays_inf() {
        let g = GraphBuilder::new(4).build();
        let d = dijkstra_sssp(&g, 2);
        assert_eq!(d, vec![INF, INF, 0, INF]);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let g = GraphBuilder::new(2).build();
        dijkstra_sssp(&g, 2);
    }
}
