//! Bellman-Ford SSSP — the high-parallelism/low-efficiency end of the
//! design space the paper discusses (Section II-B), used as an extra
//! correctness oracle and as the basis of convergence tests.

use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};

/// Bellman-Ford from `source`. Returns the distance vector and the number
/// of relaxation rounds until convergence (≤ n).
///
/// All weights in this suite are non-negative, so negative-cycle handling
/// reduces to the `n`-round cap.
pub fn bellman_ford_sssp(g: &CsrGraph, source: VertexId) -> (Vec<Dist>, usize) {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut rounds = 0usize;
    for _ in 0..n {
        rounds += 1;
        let mut changed = false;
        for v in 0..n as VertexId {
            let dv = dist[v as usize];
            if dv >= INF {
                continue;
            }
            for (u, w) in g.edges_from(v) {
                let nd = dist_add(dv, w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (dist, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra_sssp;
    use apsp_graph::generators::{gnp, WeightRange};
    use apsp_graph::GraphBuilder;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = gnp(80, 0.06, WeightRange::default(), seed);
            for s in [0u32, 40, 79] {
                let (bf, _) = bellman_ford_sssp(&g, s);
                assert_eq!(bf, dijkstra_sssp(&g, s), "seed {seed} source {s}");
            }
        }
    }

    #[test]
    fn path_graph_converges_in_path_length_rounds() {
        let n = 10;
        let mut b = GraphBuilder::new(n);
        for v in 0..(n - 1) as u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let (dist, rounds) = bellman_ford_sssp(&g, 0);
        assert_eq!(dist[9], 9);
        // Forward edge order lets one sweep settle the whole path, plus
        // one no-change round to detect convergence.
        assert!(rounds <= 3, "rounds = {rounds}");
    }

    #[test]
    fn isolated_source() {
        let g = GraphBuilder::new(3).build();
        let (dist, rounds) = bellman_ford_sssp(&g, 1);
        assert_eq!(dist, vec![INF, 0, INF]);
        assert_eq!(rounds, 1);
    }
}
