//! The pluggable min-plus backend seam.
//!
//! Everything hot in this suite bottoms out in a handful of primitives:
//! the disjoint min-plus tile multiply, the in-place Floyd-Warshall
//! sweep, the branchless row relaxation, and "split this loop into
//! deterministic bands". [`MinPlusBackend`] packages exactly those
//! primitives behind one trait, so kernels, the three out-of-core
//! drivers, the tile store's staging copies, and the service layer all
//! select an execution strategy through a single seam — instead of
//! matching on [`ExecBackend`](crate::parallel::ExecBackend) at every
//! call site. A future real-GPU backend (SPIR-V/Vulkan in the style of
//! `krnl`) implements this trait and plugs in without touching a
//! driver.
//!
//! Three implementations ship today:
//!
//! * [`ScalarBackend`] — the original guarded reference loops, kept
//!   verbatim as the differential baseline;
//! * [`ParallelBackend`] — band-parallel branchless loops (PR 4);
//! * [`SimdBackend`] — band-parallel **register-tiled** micro-kernels
//!   ([`crate::simd`]), the fastest host path.
//!
//! All three are **bit-identical** on every primitive: the min-plus
//! lattice over `u32` has no rounding, the elementary adds are proven
//! equal, and every reordering any backend performs is on an
//! order-independent reduction. Conformance holds this as a contract
//! (`backend_parity`, proptests at the INF/saturation boundaries).
//!
//! Backends are resolved **once** per run — drivers call
//! [`ExecBackend::resolve`] on the spec carried by their options struct
//! and pass `&dyn MinPlusBackend` down — so thread counts are pinned at
//! entry and the enum match exists in exactly one place.

use crate::dense::DistMatrix;
use crate::parallel::{
    minplus_rows_branchless, par_bands_weighted, relax_row_branchless, ExecBackend, SharedSliceMut,
};
use apsp_graph::{dist_add, Dist};

/// The execution primitives every backend provides. See the module docs
/// for the bit-identity contract.
pub trait MinPlusBackend: Send + Sync + std::fmt::Debug {
    /// Stable short name (`"scalar"`, `"parallel"`, `"simd"`), used by
    /// telemetry run records, the calibration store key, and bench
    /// report columns.
    fn name(&self) -> &'static str;

    /// Worker threads this backend dispatches onto (1 = inline).
    fn threads(&self) -> usize;

    /// Whether this is the guarded scalar reference (which additionally
    /// tolerates in-place operand aliasing the optimized backends
    /// forbid).
    fn is_scalar(&self) -> bool {
        false
    }

    /// Disjoint-operand min-plus tile multiply
    /// `C[i][j] = min(C[i][j], min_k A[i][k] ⊕ B[k][j])`, operands
    /// row-major with per-operand strides. Non-scalar backends require
    /// `c` disjoint from `a` and `b` and may band rows across
    /// [`MinPlusBackend::threads`].
    #[allow(clippy::too_many_arguments)]
    fn minplus_tile(
        &self,
        c: &mut [Dist],
        c_stride: usize,
        a: &[Dist],
        a_stride: usize,
        b: &[Dist],
        b_stride: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    );

    /// Single-threaded min-plus micro-kernel with all three tiles in one
    /// row-major buffer (base offsets + shared stride) — the granularity
    /// blocked drivers call from inside their own band decomposition, so
    /// backend threading never nests.
    ///
    /// # Safety
    ///
    /// The C tile must not overlap the A or B tile, and every addressed
    /// element must lie inside `data`.
    #[allow(clippy::too_many_arguments)]
    unsafe fn minplus_tile_raw_st(
        &self,
        data: &mut [Dist],
        stride: usize,
        c_base: usize,
        a_base: usize,
        b_base: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    );

    /// One relaxation row `c[j] = min(c[j], aik ⊕ b[j])`; `c` and `b`
    /// must not alias.
    fn relax_row(&self, c: &mut [Dist], b: &[Dist], aik: Dist);

    /// In-place Floyd-Warshall over a square matrix.
    fn floyd_warshall(&self, m: &mut DistMatrix);

    /// Deterministically split `0..items` into contiguous bands and run
    /// `f` on each, one band per thread. `work_per_item` is the
    /// approximate elementary-operation cost per item: dispatches whose
    /// total work cannot amortize a thread spawn run inline instead (the
    /// small-shape guard — see
    /// [`crate::parallel::MIN_WORK_PER_DISPATCH`]). Bands partition the
    /// range exactly, so callers owning disjoint rows per item are
    /// race-free by construction.
    fn run_bands(
        &self,
        items: usize,
        min_per_band: usize,
        work_per_item: usize,
        f: &(dyn Fn(std::ops::Range<usize>) + Sync),
    );
}

/// The original single-threaded guarded loops — the differential
/// baseline every optimized backend is proven against.
#[derive(Debug, Clone, Copy)]
pub struct ScalarBackend;

impl MinPlusBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn threads(&self) -> usize {
        1
    }

    fn is_scalar(&self) -> bool {
        true
    }

    fn minplus_tile(
        &self,
        c: &mut [Dist],
        c_stride: usize,
        a: &[Dist],
        a_stride: usize,
        b: &[Dist],
        b_stride: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        crate::blocked_fw::minplus_tile(c, c_stride, a, a_stride, b, b_stride, rows, inner, cols);
    }

    unsafe fn minplus_tile_raw_st(
        &self,
        data: &mut [Dist],
        stride: usize,
        c_base: usize,
        a_base: usize,
        b_base: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        crate::blocked_fw::minplus_tile_raw(
            data, stride, c_base, a_base, b_base, rows, inner, cols,
        );
    }

    fn relax_row(&self, c: &mut [Dist], b: &[Dist], aik: Dist) {
        for (cj, &bj) in c.iter_mut().zip(b) {
            let via = dist_add(aik, bj);
            if via < *cj {
                *cj = via;
            }
        }
    }

    fn floyd_warshall(&self, m: &mut DistMatrix) {
        crate::blocked_fw::floyd_warshall(m);
    }

    fn run_bands(
        &self,
        items: usize,
        _min_per_band: usize,
        _work_per_item: usize,
        f: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        if items > 0 {
            f(0..items);
        }
    }
}

/// Band-parallel branchless loops (the PR 4 backend).
#[derive(Debug, Clone, Copy)]
pub struct ParallelBackend {
    /// Resolved worker thread count (≥ 1).
    pub threads: usize,
}

impl MinPlusBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn minplus_tile(
        &self,
        c: &mut [Dist],
        c_stride: usize,
        a: &[Dist],
        a_stride: usize,
        b: &[Dist],
        b_stride: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        let shared = SharedSliceMut::new(c);
        self.run_bands(rows, 1, inner.saturating_mul(cols), &|band| {
            // SAFETY: bands partition the row range; row `i` of C is
            // written only by the band owning `i`; A/B are read-only.
            let c = unsafe { shared.slice() };
            minplus_rows_branchless(c, c_stride, a, a_stride, b, b_stride, band, inner, cols);
        });
    }

    unsafe fn minplus_tile_raw_st(
        &self,
        data: &mut [Dist],
        stride: usize,
        c_base: usize,
        a_base: usize,
        b_base: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        crate::blocked_fw::minplus_tile_raw_disjoint(
            data, stride, c_base, a_base, b_base, rows, inner, cols,
        );
    }

    fn relax_row(&self, c: &mut [Dist], b: &[Dist], aik: Dist) {
        relax_row_branchless(c, b, aik);
    }

    fn floyd_warshall(&self, m: &mut DistMatrix) {
        crate::parallel::floyd_warshall_banded(m, self.threads);
    }

    fn run_bands(
        &self,
        items: usize,
        min_per_band: usize,
        work_per_item: usize,
        f: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        par_bands_weighted(items, self.threads, min_per_band, work_per_item, f);
    }
}

/// Band-parallel register-tiled SIMD micro-kernels ([`crate::simd`]) —
/// the fastest host path, bit-identical to the other two by the
/// order-independence of the min-plus reduction.
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    /// Resolved worker thread count (≥ 1).
    pub threads: usize,
}

impl MinPlusBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn minplus_tile(
        &self,
        c: &mut [Dist],
        c_stride: usize,
        a: &[Dist],
        a_stride: usize,
        b: &[Dist],
        b_stride: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        if rows == 0 || inner == 0 || cols == 0 {
            return;
        }
        let shared = SharedSliceMut::new(c);
        // Bands need not align to the MR register-tile height: each band
        // runs the full micro-kernel on its own row range and handles
        // its own tail, and the reduction is order-independent either
        // way.
        self.run_bands(rows, crate::simd::MR, inner.saturating_mul(cols), &|band| {
            // SAFETY: bands partition the row range; row `i` of C is
            // written only by the band owning `i`; A/B are read-only.
            let c = unsafe { shared.slice() };
            crate::simd::minplus_tile_simd(
                &mut c[band.start * c_stride..],
                c_stride,
                &a[band.start * a_stride..],
                a_stride,
                b,
                b_stride,
                band.len(),
                inner,
                cols,
            );
        });
    }

    unsafe fn minplus_tile_raw_st(
        &self,
        data: &mut [Dist],
        stride: usize,
        c_base: usize,
        a_base: usize,
        b_base: usize,
        rows: usize,
        inner: usize,
        cols: usize,
    ) {
        crate::simd::minplus_tile_raw_simd(data, stride, c_base, a_base, b_base, rows, inner, cols);
    }

    fn relax_row(&self, c: &mut [Dist], b: &[Dist], aik: Dist) {
        relax_row_branchless(c, b, aik);
    }

    fn floyd_warshall(&self, m: &mut DistMatrix) {
        // The FW pivot round is a rank-1 update (inner = 1): there is no
        // k loop to register-tile, so the banded branchless sweep is
        // already the right kernel.
        crate::parallel::floyd_warshall_banded(m, self.threads);
    }

    fn run_bands(
        &self,
        items: usize,
        min_per_band: usize,
        work_per_item: usize,
        f: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        par_bands_weighted(items, self.threads, min_per_band, work_per_item, f);
    }
}

impl ExecBackend {
    /// Resolve this spec into a concrete backend, pinning the thread
    /// count now (from the explicit setting, `RAYON_NUM_THREADS`, then
    /// `available_parallelism`). Drivers call this once at entry and
    /// pass `&dyn MinPlusBackend` down; the match below is the single
    /// place the enum is interpreted.
    pub fn resolve(&self) -> Box<dyn MinPlusBackend> {
        match self {
            ExecBackend::Scalar => Box::new(ScalarBackend),
            ExecBackend::Parallel { .. } => Box::new(ParallelBackend {
                threads: self.resolved_threads(),
            }),
            ExecBackend::Simd { .. } => Box::new(SimdBackend {
                threads: self.resolved_threads(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::INF;

    fn backends() -> Vec<Box<dyn MinPlusBackend>> {
        vec![
            ExecBackend::Scalar.resolve(),
            ExecBackend::Parallel { threads: Some(3) }.resolve(),
            ExecBackend::Simd { threads: Some(3) }.resolve(),
        ]
    }

    #[test]
    fn names_and_threads_round_trip() {
        assert_eq!(ExecBackend::Scalar.resolve().name(), "scalar");
        assert!(ExecBackend::Scalar.resolve().is_scalar());
        let p = ExecBackend::Parallel { threads: Some(5) }.resolve();
        assert_eq!(
            (p.name(), p.threads(), p.is_scalar()),
            ("parallel", 5, false)
        );
        let s = ExecBackend::Simd { threads: Some(2) }.resolve();
        assert_eq!((s.name(), s.threads(), s.is_scalar()), ("simd", 2, false));
    }

    #[test]
    fn minplus_tile_bitwise_identical_across_backends() {
        let mut state = 0xfeed_beef_dead_cafeu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &(rows, inner, cols) in &[(1usize, 1usize, 1usize), (7, 9, 21), (33, 17, 40)] {
            let gen = |len: usize, next: &mut dyn FnMut() -> u64| -> Vec<Dist> {
                (0..len)
                    .map(|_| {
                        let v = next();
                        if v.is_multiple_of(6) {
                            INF
                        } else {
                            (v % 5000) as u32
                        }
                    })
                    .collect()
            };
            let a = gen(rows * inner, &mut next);
            let b = gen(inner * cols, &mut next);
            let c0 = gen(rows * cols, &mut next);
            let mut reference: Option<Vec<Dist>> = None;
            for backend in backends() {
                let mut c = c0.clone();
                backend.minplus_tile(&mut c, cols, &a, inner, &b, cols, rows, inner, cols);
                match &reference {
                    None => reference = Some(c),
                    Some(r) => assert_eq!(&c, r, "{} at {rows}x{inner}x{cols}", backend.name()),
                }
            }
        }
    }

    #[test]
    fn relax_row_identical_across_backends() {
        let c0: Vec<Dist> = vec![10, INF, 3, INF - 1, 0, 500];
        let b: Vec<Dist> = vec![1, 2, INF, INF - 1, 7, 100];
        for aik in [0u32, 5, INF - 1, INF] {
            let mut reference: Option<Vec<Dist>> = None;
            for backend in backends() {
                let mut c = c0.clone();
                backend.relax_row(&mut c, &b, aik);
                match &reference {
                    None => reference = Some(c),
                    Some(r) => assert_eq!(&c, r, "{} aik={aik}", backend.name()),
                }
            }
        }
    }

    #[test]
    fn run_bands_covers_exactly_once_on_every_backend() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for backend in backends() {
            for items in [0usize, 1, 7, 100] {
                let hits: Vec<AtomicU32> = (0..items).map(|_| AtomicU32::new(0)).collect();
                backend.run_bands(items, 1, usize::MAX / 2, &|band| {
                    for i in band {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "{} item {i}", backend.name());
                }
            }
        }
    }
}
