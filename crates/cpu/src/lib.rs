//! Multicore CPU baselines for APSP.
//!
//! The paper compares its out-of-core GPU implementations against:
//!
//! * **BGL-Plus** — OpenMP-parallel Dijkstra per source using the Boost
//!   Graph Library; reproduced here as [`bgl_plus::bgl_plus_apsp`]
//!   (binary-heap Dijkstra, sources parallelized with rayon),
//! * **SuperFW** — an optimized multicore blocked Floyd-Warshall
//!   (numbers reported from the literature); reproduced as
//!   [`blocked_fw::blocked_floyd_warshall`],
//! * **Galois** — parallel delta-stepping; reproduced as
//!   [`delta_stepping::delta_stepping_sssp`].
//!
//! [`dijkstra`] and [`bellman_ford`] provide the reference SSSP
//! implementations every other algorithm in the suite is validated
//! against, and [`dense::DistMatrix`] is the shared dense distance-matrix
//! container.
//!
//! [`cost::CpuCostModel`] models the paper's 28-thread Xeon so that the
//! benchmark harness can report GPU-vs-CPU speedup *shapes* at paper
//! scale; see DESIGN.md for the calibration rationale.

pub mod backend;
pub mod bellman_ford;
pub mod bgl_plus;
pub mod blocked_fw;
pub mod cost;
pub mod delta_stepping;
pub mod dense;
pub mod dijkstra;
pub mod johnson_reweight;
pub mod parallel;
pub mod simd;

pub use backend::{MinPlusBackend, ParallelBackend, ScalarBackend, SimdBackend};
pub use bgl_plus::bgl_plus_apsp;
pub use blocked_fw::{blocked_floyd_warshall, blocked_floyd_warshall_exec};
pub use dense::DistMatrix;
pub use dijkstra::dijkstra_sssp;
pub use parallel::ExecBackend;
