//! Analytical cost model of the paper's CPU baselines.
//!
//! The reproduction runs graphs ~16× smaller than the paper on a machine
//! with neither the paper's 28-thread Xeon nor its GPUs, so GPU-vs-CPU
//! *speedup* comparisons (Figs 2–4) are computed between the GPU
//! simulator's modeled time and this modeled CPU time — both at the
//! workload actually generated.
//!
//! Model shapes follow the algorithms' operation counts; the throughput
//! constants are calibrated so the baseline lands in the same performance
//! class as the paper's measured hardware:
//!
//! * BGL-Plus (28 threads, binary-heap Dijkstra per source):
//!   `n · (m + n log₂ n)` heap/relax operations at `bgl_ops_per_sec`.
//! * SuperFW (32-core Haswell, blocked FW): `n³` at `superfw_ops_per_sec`.
//! * Galois (delta-stepping): `n · m · waste` at `galois_ops_per_sec`,
//!   with `waste` reflecting delta-stepping's redundant relaxations.

/// Throughput constants for the modeled CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostModel {
    /// Effective BGL-Plus operations per second (whole machine).
    pub bgl_ops_per_sec: f64,
    /// Effective SuperFW min-plus operations per second (whole machine).
    pub superfw_ops_per_sec: f64,
    /// Effective Galois relaxations per second (whole machine).
    pub galois_ops_per_sec: f64,
    /// Redundant-work multiplier for delta-stepping.
    pub galois_waste: f64,
}

impl Default for CpuCostModel {
    /// Calibrated against the paper's comparison points: the E5-2680
    /// (28 threads) running BGL-Plus, and the E5-2698v3 (64 threads)
    /// running SuperFW/Galois, normalized so that the paper's reported
    /// speedup bands (Figs 2–4) are reproduced by the stock V100 profile.
    fn default() -> Self {
        CpuCostModel {
            // ~45M heap-mediated relax ops/s/thread × 28 threads.
            bgl_ops_per_sec: 1.25e9,
            // Cache-blocked vectorized FW on the 32-core Haswell pair:
            // ~30-40% of its ~1.2 Tops/s min-plus peak. Reproduces the
            // Fig 4 SuperFW speedup band against the GPU Johnson model.
            superfw_ops_per_sec: 4.0e11,
            // Galois delta-stepping APSP: the paper's Fig 4 reports it
            // 80–153× behind the GPU implementation, i.e. tens of
            // millions of effective relaxations/s once per-source
            // scheduling overheads are paid.
            galois_ops_per_sec: 6.0e7,
            galois_waste: 2.5,
        }
    }
}

impl CpuCostModel {
    /// Modeled BGL-Plus APSP seconds for an `n`-vertex, `m`-edge graph.
    pub fn bgl_plus_seconds(&self, n: usize, m: usize) -> f64 {
        let n = n as f64;
        let m = m as f64;
        let log_n = n.max(2.0).log2();
        n * (m + n * log_n) / self.bgl_ops_per_sec
    }

    /// Modeled SuperFW APSP seconds.
    pub fn superfw_seconds(&self, n: usize) -> f64 {
        let n = n as f64;
        n * n * n / self.superfw_ops_per_sec
    }

    /// Modeled Galois (delta-stepping) APSP seconds.
    pub fn galois_seconds(&self, n: usize, m: usize) -> f64 {
        let n = n as f64;
        let m = m as f64;
        n * m * self.galois_waste / self.galois_ops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgl_scales_with_sources_and_edges() {
        let c = CpuCostModel::default();
        let base = c.bgl_plus_seconds(10_000, 100_000);
        // Doubling n at least doubles the time (more sources, more heap).
        assert!(c.bgl_plus_seconds(20_000, 100_000) > 2.0 * base);
        // More edges cost more.
        assert!(c.bgl_plus_seconds(10_000, 200_000) > base);
    }

    #[test]
    fn superfw_is_cubic() {
        let c = CpuCostModel::default();
        let r = c.superfw_seconds(2_000) / c.superfw_seconds(1_000);
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn galois_slower_than_bgl_on_dense_inputs() {
        // The paper's Fig 4 shows Galois far behind: the redundant-work
        // multiplier keeps that ordering in the model.
        let c = CpuCostModel::default();
        assert!(c.galois_seconds(10_000, 1_000_000) > c.bgl_plus_seconds(10_000, 1_000_000));
    }

    #[test]
    fn superfw_beats_bgl_only_when_dense() {
        let c = CpuCostModel::default();
        let n = 10_000;
        // Very sparse: BGL wins.
        assert!(c.bgl_plus_seconds(n, 3 * n) < c.superfw_seconds(n));
        // Dense (m ≈ n²/4): the n³ machine wins.
        assert!(c.superfw_seconds(n) < c.bgl_plus_seconds(n, n * n / 4));
    }
}
