//! Execution backends: scalar reference loops vs. the band-parallel,
//! branchless backend.
//!
//! Every hot kernel of the suite (min-plus tile multiply, Floyd-Warshall,
//! the per-source Near-Far relaxations) is embarrassingly parallel over
//! its output rows once the reduction order is pinned: with a fixed
//! pivot/k order, each output row depends only on *read-only* operands
//! for the duration of one round, so splitting rows into contiguous
//! bands across threads is deterministic — not merely "correct up to
//! floating-point", but **bit-identical** to the scalar loops (the
//! min-plus semiring over `u32` has no rounding to reorder).
//!
//! The branchless inner loops exploit the same fixed order: the scalar
//! reference guards every relaxation with `if via < c[j]` (an
//! unpredictable branch on random distance data) and skips `INF` rows
//! with an early `continue`. The backend lowers the relaxation to
//! `c[j] = min(c[j], sat_add(aik, b[j]).min(INF))`, which rustc
//! autovectorizes; [`branchless_add`] is proven equal to
//! [`apsp_graph::dist_add`] for **all** `u32` inputs (property-tested at
//! the `INF` boundaries), so the lowering cannot diverge.
//!
//! The vendored `rayon` shim in this workspace is sequential by design
//! (no crates.io access), so real parallelism comes from
//! `std::thread::scope` here. Thread counts resolve, in order, from an
//! explicit [`ExecBackend::Parallel`] setting, the `RAYON_NUM_THREADS`
//! environment variable (the knob CI pins for reproducibility), and
//! `std::thread::available_parallelism`.

use crate::dense::DistMatrix;
use apsp_graph::{Dist, INF};

/// Minimum rows a band must carry before another thread is worth its
/// spawn cost; below this the scheduler runs inline.
const MIN_ROWS_PER_BAND: usize = 16;

/// How the kernels execute on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// The original single-threaded reference loops, kept verbatim as
    /// the differential baseline.
    Scalar,
    /// Band-parallel branchless loops. `threads: None` resolves from
    /// `RAYON_NUM_THREADS`, then `available_parallelism`.
    Parallel {
        /// Worker thread count; `None` auto-detects.
        threads: Option<usize>,
    },
    /// Band-parallel register-tiled SIMD micro-kernels
    /// ([`crate::simd`]); threads resolve like `Parallel`.
    Simd {
        /// Worker thread count; `None` auto-detects.
        threads: Option<usize>,
    },
}

impl Default for ExecBackend {
    fn default() -> Self {
        ExecBackend::Parallel { threads: None }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Scalar => f.write_str("scalar"),
            ExecBackend::Parallel { threads: None } => f.write_str("parallel"),
            ExecBackend::Parallel { threads: Some(t) } => write!(f, "parallel({t})"),
            ExecBackend::Simd { threads: None } => f.write_str("simd"),
            ExecBackend::Simd { threads: Some(t) } => write!(f, "simd({t})"),
        }
    }
}

impl ExecBackend {
    /// The scalar reference backend.
    pub fn scalar() -> Self {
        ExecBackend::Scalar
    }

    /// The parallel backend with auto-detected thread count.
    pub fn parallel() -> Self {
        ExecBackend::Parallel { threads: None }
    }

    /// The SIMD backend with auto-detected thread count.
    pub fn simd() -> Self {
        ExecBackend::Simd { threads: None }
    }

    /// Whether this is the scalar reference backend.
    pub fn is_scalar(&self) -> bool {
        matches!(self, ExecBackend::Scalar)
    }

    /// Stable short name of the backend this spec resolves to, as used
    /// by telemetry run records, calibration store keys, and bench
    /// columns.
    pub fn name(&self) -> &'static str {
        match self {
            ExecBackend::Scalar => "scalar",
            ExecBackend::Parallel { .. } => "parallel",
            ExecBackend::Simd { .. } => "simd",
        }
    }

    /// Worker threads this backend will use (1 for `Scalar`).
    pub fn resolved_threads(&self) -> usize {
        match self {
            ExecBackend::Scalar => 1,
            ExecBackend::Parallel { threads: Some(t) } | ExecBackend::Simd { threads: Some(t) } => {
                (*t).max(1)
            }
            ExecBackend::Parallel { threads: None } | ExecBackend::Simd { threads: None } => {
                default_threads()
            }
        }
    }
}

/// Default worker-thread count, resolved once per process.
///
/// `available_parallelism` is not a cheap call: under cgroup CPU quotas
/// it walks `/sys/fs/cgroup` on every invocation, which costs tens of
/// microseconds — enough to dominate per-tile dispatch when a driver
/// re-resolves `threads: None` for every staged tile (measured as a 2-3x
/// wall-clock regression on the out-of-core benches). The count cannot
/// change mid-process in any supported configuration, so cache it.
fn default_threads() -> usize {
    use std::sync::OnceLock;
    static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();
    *DEFAULT_THREADS.get_or_init(|| {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
    })
}

/// `RAYON_NUM_THREADS`, when set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// Branchless lowering of [`apsp_graph::dist_add`]:
/// `min(saturating_add(a, b), INF)`. Equal to `dist_add` for **all**
/// `u32` inputs — `dist_add` computes the saturating sum and clamps any
/// value `>= INF` back to `INF`, which is exactly `min(sum, INF)` — so
/// substituting it inside a `min`-reduction cannot change a single bit.
/// Unlike `dist_add`'s `if`, this form vectorizes.
#[inline(always)]
pub fn branchless_add(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b).min(INF)
}

/// The branchless relaxation row: `c[j] = min(c[j], aik ⊕ b[j])` with no
/// data-dependent branch in the loop body. `c` and `b` must not alias.
#[inline]
pub fn relax_row_branchless(c: &mut [Dist], b: &[Dist], aik: Dist) {
    for (cj, &bj) in c.iter_mut().zip(b) {
        *cj = (*cj).min(branchless_add(aik, bj));
    }
}

/// Split `0..items` into up to `threads` contiguous bands of at least
/// `min_per_band` items and run `f` on each band, one band per thread
/// (the first band runs on the calling thread). With one effective
/// thread the call is inline and spawns nothing.
///
/// Bands partition the range exactly, so writers that own disjoint rows
/// per item are race-free by construction.
pub fn par_bands<F>(items: usize, threads: usize, min_per_band: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if items == 0 {
        return;
    }
    let max_bands = items.div_ceil(min_per_band.max(1));
    let bands = threads.clamp(1, max_bands);
    if bands <= 1 {
        f(0..items);
        return;
    }
    let per_band = items.div_ceil(bands);
    std::thread::scope(|scope| {
        let f = &f;
        for t in 1..bands {
            let lo = t * per_band;
            if lo >= items {
                break;
            }
            let hi = ((t + 1) * per_band).min(items);
            scope.spawn(move || f(lo..hi));
        }
        f(0..per_band.min(items));
    });
}

/// Minimum elementary operations a dispatch must carry before spawning
/// threads is worth the scoped-spawn overhead (there is no persistent
/// pool — the vendored rayon shim is sequential, so every parallel
/// dispatch pays thread creation, typically a few hundred µs on a
/// loaded small-core box). Below this, [`par_bands_weighted`] runs the
/// whole range inline: on small shapes the spawn cost had been *losing*
/// to scalar (fw-disk 0.985×, johnson-memory 0.935× in the PR 4 bench;
/// far worse once spawns actually fire), and an inline fallback
/// restores those to ≥1.0× while leaving large shapes untouched. 2²¹
/// u32 relaxations ≈ 1–2 ms of inner-loop time — the break-even point
/// against one scoped spawn, measured on the bench host.
pub const MIN_WORK_PER_DISPATCH: usize = 1 << 21;

/// [`par_bands`] with a work-aware band floor: `work_per_item` is the
/// approximate elementary-operation cost of one item, and the effective
/// minimum band size is raised so each spawned thread carries at least
/// [`MIN_WORK_PER_DISPATCH`] operations. Dispatches too small to
/// amortize a spawn therefore run inline — same partition semantics,
/// bit-identical results (banding never reorders the per-row
/// reductions).
pub fn par_bands_weighted<F>(
    items: usize,
    threads: usize,
    min_per_band: usize,
    work_per_item: usize,
    f: F,
) where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let floor = min_per_band.max(MIN_WORK_PER_DISPATCH.div_ceil(work_per_item.max(1)));
    par_bands(items, threads, floor, f);
}

/// A `Send + Sync` wrapper around a raw mutable slice, for band-parallel
/// writers whose disjointness the call site proves.
#[derive(Clone, Copy)]
pub struct SharedSliceMut<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the wrapper only hands out the slice through an `unsafe`
// accessor; every call site is responsible for touching disjoint
// elements across threads (bands own disjoint row ranges).
unsafe impl<T: Send> Send for SharedSliceMut<T> {}
unsafe impl<T: Send> Sync for SharedSliceMut<T> {}

impl<T> SharedSliceMut<T> {
    /// Wrap `slice` for cross-thread banded access.
    pub fn new(slice: &mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// The whole underlying slice.
    ///
    /// # Safety
    ///
    /// Callers must ensure no two threads touch the same element and
    /// that the original borrow outlives every returned slice.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice<'a>(&self) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

/// Branchless min-plus tile update over a row range:
/// `C[i][j] = min(C[i][j], A[i][k] ⊕ B[k][j])` for `i` in `rows`, with
/// operands addressed exactly as in
/// [`crate::blocked_fw::minplus_tile`]. `c` must not alias `a` or `b`
/// (the scalar variant tolerates blocked-FW in-place aliasing; this one
/// is for the disjoint stage-3 / product shapes).
#[allow(clippy::too_many_arguments)]
pub(crate) fn minplus_rows_branchless(
    c: &mut [Dist],
    c_stride: usize,
    a: &[Dist],
    a_stride: usize,
    b: &[Dist],
    b_stride: usize,
    rows: std::ops::Range<usize>,
    inner: usize,
    cols: usize,
) {
    for i in rows {
        let c_row = &mut c[i * c_stride..i * c_stride + cols];
        for k in 0..inner {
            let aik = a[i * a_stride + k];
            // The row-level INF skip is kept (it prunes whole rows of
            // work and is per-(i, k), not per-j); the *j* loop below is
            // the branchless, vectorizable part.
            if aik >= INF {
                continue;
            }
            relax_row_branchless(c_row, &b[k * b_stride..k * b_stride + cols], aik);
        }
    }
}

/// [`crate::blocked_fw::minplus_tile`] under an execution backend.
/// Scalar delegates to the reference loops (including their in-place
/// aliasing tolerance); Parallel and Simd require `c` disjoint from `a`
/// and `b` and split output rows into bands. Bit-identical to scalar
/// for disjoint operands.
///
/// Compatibility wrapper over
/// [`MinPlusBackend::minplus_tile`](crate::backend::MinPlusBackend::minplus_tile);
/// hot callers resolve once and hold the `&dyn` backend instead.
#[allow(clippy::too_many_arguments)]
pub fn minplus_tile_exec(
    c: &mut [Dist],
    c_stride: usize,
    a: &[Dist],
    a_stride: usize,
    b: &[Dist],
    b_stride: usize,
    rows: usize,
    inner: usize,
    cols: usize,
    exec: ExecBackend,
) {
    exec.resolve()
        .minplus_tile(c, c_stride, a, a_stride, b, b_stride, rows, inner, cols);
}

/// [`crate::blocked_fw::floyd_warshall`] under an execution backend.
///
/// Parallel splits each pivot round's rows into bands. Determinism: for
/// a fixed pivot `k`, row `k` is never written during round `k` (the
/// `i == k` update is skipped as a no-op), so every band reads the same
/// pivot row the scalar loop reads, and each band writes only its own
/// rows — the result is bit-identical to scalar.
///
/// Compatibility wrapper over
/// [`MinPlusBackend::floyd_warshall`](crate::backend::MinPlusBackend::floyd_warshall).
pub fn floyd_warshall_exec(m: &mut DistMatrix, exec: ExecBackend) {
    exec.resolve().floyd_warshall(m);
}

/// The band-parallel FW sweep shared by the Parallel and Simd backends
/// (FW's pivot round is a rank-1 update — no `k` loop to register-tile,
/// so the branchless banded sweep is the kernel for both).
pub(crate) fn floyd_warshall_banded(m: &mut DistMatrix, threads: usize) {
    let n = m.n();
    if n == 0 {
        return;
    }
    let data = m.as_mut_slice();
    // Per-round snapshot of the pivot row. Row k is invariant during
    // round k, so the snapshot equals the live row; copying it once
    // keeps every band's reads off the written buffer.
    let mut pivot = vec![0 as Dist; n];
    for k in 0..n {
        pivot.copy_from_slice(&data[k * n..(k + 1) * n]);
        let shared = SharedSliceMut::new(data);
        let pivot_ref = &pivot;
        par_bands_weighted(n, threads, MIN_ROWS_PER_BAND, n, |band| {
            // SAFETY: bands own disjoint row ranges and row k is only
            // read through the snapshot.
            let data = unsafe { shared.slice() };
            for i in band {
                if i == k {
                    continue;
                }
                let dik = data[i * n + k];
                if dik >= INF {
                    continue;
                }
                relax_row_branchless(&mut data[i * n..i * n + n], pivot_ref, dik);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked_fw::{floyd_warshall, minplus_tile};
    use apsp_graph::dist_add;
    use apsp_graph::generators::{gnp, WeightRange};
    use proptest::prelude::*;

    fn backends() -> Vec<ExecBackend> {
        vec![
            ExecBackend::Parallel { threads: Some(1) },
            ExecBackend::Parallel { threads: Some(3) },
            ExecBackend::parallel(),
        ]
    }

    #[test]
    fn branchless_add_equals_dist_add_at_boundaries() {
        // The exact boundary cases the lowering must preserve: INF
        // absorption, saturation at INF-1/INF, zero weights, and the
        // maximum representable operands.
        let interesting = [
            0,
            1,
            INF - 1,
            INF,
            INF + 1,
            u32::MAX / 2,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &a in &interesting {
            for &b in &interesting {
                assert_eq!(branchless_add(a, b), dist_add(a, b), "a={a} b={b}");
            }
        }
    }

    proptest! {
        #[test]
        fn branchless_add_equals_dist_add_everywhere(a in 0u32..=u32::MAX, b in 0u32..=u32::MAX) {
            prop_assert_eq!(branchless_add(a, b), dist_add(a, b));
        }

        #[test]
        fn relax_row_matches_scalar_update(
            c in proptest::collection::vec(0u32..=INF, 1..40),
            b in proptest::collection::vec(0u32..=INF, 1..40),
            aik in 0u32..=INF,
        ) {
            let cols = c.len().min(b.len());
            let mut fast = c[..cols].to_vec();
            relax_row_branchless(&mut fast, &b[..cols], aik);
            let mut slow = c[..cols].to_vec();
            for j in 0..cols {
                let via = dist_add(aik, b[j]);
                if via < slow[j] {
                    slow[j] = via;
                }
            }
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn resolved_threads_orders_sources() {
        assert_eq!(ExecBackend::Scalar.resolved_threads(), 1);
        assert_eq!(
            ExecBackend::Parallel { threads: Some(7) }.resolved_threads(),
            7
        );
        assert!(ExecBackend::parallel().resolved_threads() >= 1);
    }

    #[test]
    fn par_bands_covers_the_range_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for (items, threads) in [(0, 4), (1, 4), (7, 3), (100, 4), (100, 1), (33, 64)] {
            let hits: Vec<AtomicU32> = (0..items).map(|_| AtomicU32::new(0)).collect();
            par_bands(items, threads, 1, |band| {
                for i in band {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
            }
        }
    }

    #[test]
    fn minplus_tile_exec_matches_scalar_bitwise() {
        // Random tiles at ragged sizes, including strides wider than the
        // column count and INF-heavy operands.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &(rows, inner, cols) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 17, 29),
            (64, 64, 64),
        ] {
            let stride = cols + 3;
            let gen = |len: usize, rng: &mut dyn FnMut() -> u64| -> Vec<Dist> {
                (0..len)
                    .map(|_| {
                        let v = rng();
                        if v.is_multiple_of(5) {
                            INF
                        } else {
                            (v % 1000) as Dist
                        }
                    })
                    .collect()
            };
            let a = gen(rows * inner, &mut rng);
            let b = gen(inner * cols, &mut rng);
            let c0 = gen(rows * stride, &mut rng);
            let mut scalar = c0.clone();
            minplus_tile(&mut scalar, stride, &a, inner, &b, cols, rows, inner, cols);
            for exec in backends() {
                let mut fast = c0.clone();
                minplus_tile_exec(
                    &mut fast, stride, &a, inner, &b, cols, rows, inner, cols, exec,
                );
                assert_eq!(fast, scalar, "{exec} at {rows}x{inner}x{cols}");
            }
        }
    }

    #[test]
    fn floyd_warshall_exec_matches_scalar_bitwise() {
        for seed in [3u64, 21, 77] {
            let g = gnp(61, 0.07, WeightRange::default(), seed);
            let mut scalar = DistMatrix::from_graph(&g);
            floyd_warshall(&mut scalar);
            for exec in backends() {
                let mut fast = DistMatrix::from_graph(&g);
                floyd_warshall_exec(&mut fast, exec);
                assert_eq!(fast, scalar, "{exec} seed {seed}");
            }
        }
    }

    #[test]
    fn empty_and_trivial_matrices() {
        let mut m = DistMatrix::new(0);
        floyd_warshall_exec(&mut m, ExecBackend::parallel());
        assert_eq!(m.n(), 0);
        let mut one = DistMatrix::new(1);
        floyd_warshall_exec(&mut one, ExecBackend::parallel());
        assert_eq!(one.get(0, 0), 0);
    }
}
