//! Dense row-major distance matrix.

use apsp_graph::{CsrGraph, Dist, VertexId, INF};

/// An `n × n` distance matrix in row-major order.
///
/// `get(i, j)` is the (current bound on the) shortest distance from vertex
/// `i` to vertex `j`. [`DistMatrix::from_graph`] initializes it the way
/// every APSP algorithm in the suite expects: `0` on the diagonal, edge
/// weights where edges exist, [`INF`] elsewhere. (A self-loop never
/// shortens a path, so the diagonal stays `0` even if the graph has one.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DistMatrix {
    /// All-`INF` matrix with a zero diagonal.
    pub fn new(n: usize) -> Self {
        let mut data = vec![INF; n * n];
        for i in 0..n {
            data[i * n + i] = 0;
        }
        DistMatrix { n, data }
    }

    /// Adjacency-initialized matrix (the Floyd-Warshall starting point).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut m = DistMatrix::new(n);
        for v in 0..n as VertexId {
            for (u, w) in g.edges_from(v) {
                if v != u {
                    let cell = &mut m.data[v as usize * n + u as usize];
                    if w < *cell {
                        *cell = w;
                    }
                }
            }
        }
        m
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_raw(n: usize, data: Vec<Dist>) -> Self {
        assert_eq!(data.len(), n * n);
        DistMatrix { n, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `i` to `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Dist {
        self.data[i * self.n + j]
    }

    /// Set the distance from `i` to `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: Dist) {
        self.data[i * self.n + j] = d;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Dist] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Dist] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Dist] {
        &self.data
    }

    /// The whole backing buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Dist] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_inner(self) -> Vec<Dist> {
        self.data
    }

    /// Number of finite (reachable) entries.
    pub fn reachable_pairs(&self) -> usize {
        self.data.iter().filter(|&&d| d < INF).count()
    }

    /// Largest finite entry (0 for an all-INF matrix).
    pub fn max_finite(&self) -> Dist {
        self.data
            .iter()
            .copied()
            .filter(|&d| d < INF)
            .max()
            .unwrap_or(0)
    }

    /// Verify the triangle inequality on every `(i, k, j)` triple drawn
    /// from `samples` pseudo-random triples — used by tests as a cheap
    /// full-matrix sanity check. Returns the first violated triple.
    pub fn check_triangle_sampled(
        &self,
        samples: usize,
        seed: u64,
    ) -> Option<(usize, usize, usize)> {
        let n = self.n;
        if n == 0 {
            return None;
        }
        let mut state = seed | 1;
        let mut next = || {
            // xorshift64* — cheap deterministic index stream.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % n
        };
        for _ in 0..samples {
            let (i, k, j) = (next(), next(), next());
            let via = apsp_graph::dist_add(self.get(i, k), self.get(k, j));
            if self.get(i, j) > via {
                return Some((i, k, j));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::GraphBuilder;

    #[test]
    fn new_has_zero_diagonal_inf_elsewhere() {
        let m = DistMatrix::new(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 0 } else { INF });
            }
        }
    }

    #[test]
    fn from_graph_copies_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4);
        b.add_edge(1, 2, 6);
        let m = DistMatrix::from_graph(&b.build());
        assert_eq!(m.get(0, 1), 4);
        assert_eq!(m.get(1, 2), 6);
        assert_eq!(m.get(0, 2), INF);
        assert_eq!(m.get(2, 2), 0);
    }

    #[test]
    fn self_loop_does_not_pollute_diagonal() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5);
        b.add_edge(0, 1, 1);
        let m = DistMatrix::from_graph(&b.build());
        assert_eq!(m.get(0, 0), 0);
    }

    #[test]
    fn rows_and_counters() {
        let mut m = DistMatrix::new(2);
        m.set(0, 1, 7);
        assert_eq!(m.row(0), &[0, 7]);
        assert_eq!(m.reachable_pairs(), 3);
        assert_eq!(m.max_finite(), 7);
    }

    #[test]
    fn triangle_check_catches_violations() {
        let mut m = DistMatrix::new(3);
        m.set(0, 1, 1);
        m.set(1, 2, 1);
        m.set(0, 2, 100); // violates via k=1
        assert!(m.check_triangle_sampled(10_000, 42).is_some());
        // A consistent matrix passes.
        m.set(0, 2, 2);
        assert!(m.check_triangle_sampled(10_000, 42).is_none());
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_bad_len() {
        DistMatrix::from_raw(2, vec![0; 3]);
    }
}
