//! Register-tiled SIMD min-plus micro-kernel.
//!
//! The disjoint-operand min-plus multiply
//! `C[i][j] = min(C[i][j], min_k A[i][k] ⊕ B[k][j])` is a pure lattice
//! reduction: `min` is associative, commutative, and idempotent, and the
//! addends `A[i][k] ⊕ B[k][j]` never depend on `C`. The final value of
//! every cell is therefore the *unique* pointwise minimum, independent
//! of any evaluation order — which licenses arbitrary re-tiling of the
//! `(i, k, j)` loops without changing a single output bit. This module
//! exploits that license with the classic GEMM register-tiling shape
//! (the same blocking the Lund multi-stage CUDA kernel and the
//! 3D-tensor FW reformulation use on the device):
//!
//! * an `MR × TILE_COLS` = 4 × 16 accumulator tile held in registers
//!   (eight 8-lane `u32` vectors under AVX2) that runs the whole `k`
//!   loop without touching `C`;
//! * **packed panels**: the `A` operand is repacked once per call into
//!   `MR`-row panels laid out `k`-major (so the micro-kernel reads one
//!   contiguous quad per `k`), and each 16-column `B` panel is packed
//!   contiguous per `k` — every cache line the inner loop touches is
//!   fully used;
//! * a **saturation-free inner loop**: packed entries are clamped to
//!   `INF` up front, after which `(a + b).min(INF)` over `u32` cannot
//!   wrap (`2·INF < 2³²`) and is *provably equal* to
//!   [`apsp_graph::dist_add`] for every input pair (see
//!   [`clamped_add_equals_dist_add`] below) — the inner loop is exactly
//!   one add and two unsigned mins per lane;
//! * a **scalar-equivalent tail**: rows beyond the last full `MR` panel
//!   and columns beyond the last full 16-wide panel run through the
//!   branchless row kernel ([`crate::parallel::relax_row_branchless`]),
//!   which is property-proven equal to the guarded scalar loop.
//!
//! The outer loop (packing, panel walk, tails) is shared; only the
//! per-tile micro-kernel is ISA-specific. Under the `simd` cargo feature
//! on x86-64 the hot micro-kernel is written in explicit stable
//! `std::arch` AVX2 intrinsics (`_mm256_add_epi32` + `_mm256_min_epu32`
//! over eight named accumulator vectors) and selected at runtime via
//! `is_x86_feature_detected!`; every other configuration runs a
//! plain-Rust micro-kernel with the *same elementary ops in the same
//! order*, so ISA selection can change speed but never results. (The
//! intrinsics are deliberate: the portable loop autovectorizes fine in
//! isolation but rustc compiles it to scalar `cmov` chains in this
//! crate's rlib context, a ~20× swing — the intrinsics pin the codegen.)
//! Building with `--no-default-features` removes the AVX2 micro-kernel
//! entirely and keeps the portable path — the stable-Rust fallback leg
//! CI compiles.
//!
//! # Why clamping preserves bit-identity
//!
//! `dist_add(a, b) = min(saturating_add(a, b), INF)`. Let
//! `a' = min(a, INF)`, `b' = min(b, INF)`. Then `a' + b' ≤ 2·INF =
//! 2³¹ − 2 < 2³²` (no wrap), and:
//!
//! * if `a ≥ INF` or `b ≥ INF`: `dist_add(a, b) = INF` (the saturating
//!   sum is `≥ INF`), and `(a' + b').min(INF) = INF` because one addend
//!   is already `INF`;
//! * otherwise `a' = a`, `b' = b`, both sums agree exactly.
//!
//! So `(a' + b').min(INF) = dist_add(a, b)` for **all** `u32` inputs,
//! not just in-domain distances.

use crate::parallel::relax_row_branchless;
use apsp_graph::{Dist, INF};

/// Accumulator tile rows held in registers by the micro-kernel.
pub const MR: usize = 4;
/// Accumulator tile columns: two 8-lane AVX2 vectors per row.
pub const TILE_COLS: usize = 16;

/// Clamp one packed operand entry; see the module docs for why this
/// preserves `dist_add` semantics exactly.
#[inline(always)]
fn clamp(v: Dist) -> Dist {
    v.min(INF)
}

/// `C[i][j] = min(C[i][j], min_k A[i][k] ⊕ B[k][j])` over rectangular
/// extents, operands addressed exactly as in
/// [`crate::blocked_fw::minplus_tile`] (row-major with per-operand
/// strides), register-tiled. `c` must not alias `a` or `b`.
///
/// Bit-identical to the scalar reference for all inputs (the reduction
/// is order-independent and every elementary op equals `dist_add`).
///
/// # Panics
///
/// Panics if any operand slice is too short for its extents.
#[allow(clippy::too_many_arguments)]
pub fn minplus_tile_simd(
    c: &mut [Dist],
    c_stride: usize,
    a: &[Dist],
    a_stride: usize,
    b: &[Dist],
    b_stride: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    if rows == 0 || inner == 0 || cols == 0 {
        return;
    }
    assert!(
        a.len() >= (rows - 1) * a_stride + inner,
        "A slice too short"
    );
    assert!(
        b.len() >= (inner - 1) * b_stride + cols,
        "B slice too short"
    );
    assert!(c.len() >= (rows - 1) * c_stride + cols, "C slice too short");
    // SAFETY: extents checked against slice lengths above; the caller
    // guarantees C is disjoint from A and B.
    unsafe {
        dispatch(
            c.as_mut_ptr(),
            c_stride,
            a.as_ptr(),
            a_stride,
            b.as_ptr(),
            b_stride,
            rows,
            inner,
            cols,
        )
    }
}

/// [`minplus_tile_simd`] with all three operands in one row-major buffer
/// (base offsets + shared stride) — the blocked-FW stage-3 shape.
///
/// # Safety
///
/// The C tile (`c_base`, `rows × cols`) must not overlap the A tile
/// (`a_base`, `rows × inner`) or the B tile (`b_base`, `inner × cols`),
/// and every addressed element must lie inside `data`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn minplus_tile_raw_simd(
    data: &mut [Dist],
    stride: usize,
    c_base: usize,
    a_base: usize,
    b_base: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    if rows == 0 || inner == 0 || cols == 0 {
        return;
    }
    let ptr = data.as_mut_ptr();
    dispatch(
        ptr.add(c_base),
        stride,
        ptr.add(a_base) as *const Dist,
        stride,
        ptr.add(b_base) as *const Dist,
        stride,
        rows,
        inner,
        cols,
    )
}

/// Micro-kernel instruction set, picked once per engine call.
#[derive(Clone, Copy)]
enum Isa {
    /// Plain-Rust micro-kernel at the build's baseline target.
    Portable,
    /// Explicit AVX2 intrinsics (stable `std::arch`, runtime-detected).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
}

/// Runtime ISA selection: AVX2 when the `simd` feature is compiled in
/// and the CPU reports it, the portable micro-kernel otherwise.
fn pick_isa() -> Isa {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    Isa::Portable
}

/// Name of the micro-kernel ISA this process would run (`"avx2"` or
/// `"portable"`) — what benchmark reports and CI gates key on: a ≥
/// speedup floor is only meaningful when an accelerated ISA is active.
pub fn active_isa() -> &'static str {
    match pick_isa() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Isa::Avx2 => "avx2",
        Isa::Portable => "portable",
    }
}

/// Entry point shared by both public wrappers.
///
/// # Safety
///
/// Same aliasing/extent contract as [`engine`].
#[allow(clippy::too_many_arguments)]
unsafe fn dispatch(
    c: *mut Dist,
    c_stride: usize,
    a: *const Dist,
    a_stride: usize,
    b: *const Dist,
    b_stride: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    engine(
        c,
        c_stride,
        a,
        a_stride,
        b,
        b_stride,
        rows,
        inner,
        cols,
        pick_isa(),
    )
}

/// One `MR × TILE_COLS` register tile in explicit AVX2 intrinsics:
/// eight `__m256i` accumulators run the whole `k` loop, then fold into
/// `C` (two vectors per row, gated by the row's finite-A flag).
///
/// Elementary-op equivalence: inputs are pre-clamped to `INF`, so
/// `_mm256_add_epi32` (wrapping) cannot wrap — the lane value is the
/// exact integer sum — and `_mm256_min_epu32` is unsigned `min`; each
/// lane therefore computes `(clamp(a) + clamp(b)).min(INF)`, which
/// equals [`apsp_graph::dist_add`] for all inputs (module docs). The
/// fold `c = min(c, acc)` matches the scalar guarded store bit for bit.
///
/// # Safety
///
/// Requires AVX2 (callers go through [`pick_isa`]). `apanel` must hold
/// `inner × MR` packed entries, `bpack` `inner × TILE_COLS`, `afinite`
/// `MR` flags, and `c` must address an `MR × TILE_COLS` tile with row
/// stride `c_stride` disjoint from both packs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn micro_avx2(
    apanel: *const Dist,
    bpack: *const Dist,
    inner: usize,
    c: *mut Dist,
    c_stride: usize,
    afinite: &[bool],
) {
    use std::arch::x86_64::*;
    let inf = _mm256_set1_epi32(INF as i32);
    let (mut a00, mut a01) = (inf, inf);
    let (mut a10, mut a11) = (inf, inf);
    let (mut a20, mut a21) = (inf, inf);
    let (mut a30, mut a31) = (inf, inf);
    let mut ap = apanel;
    let mut bp = bpack;
    for _ in 0..inner {
        let b0 = _mm256_loadu_si256(bp as *const __m256i);
        let b1 = _mm256_loadu_si256(bp.add(8) as *const __m256i);
        let av = _mm256_set1_epi32(*ap as i32);
        a00 = _mm256_min_epu32(a00, _mm256_min_epu32(_mm256_add_epi32(av, b0), inf));
        a01 = _mm256_min_epu32(a01, _mm256_min_epu32(_mm256_add_epi32(av, b1), inf));
        let av = _mm256_set1_epi32(*ap.add(1) as i32);
        a10 = _mm256_min_epu32(a10, _mm256_min_epu32(_mm256_add_epi32(av, b0), inf));
        a11 = _mm256_min_epu32(a11, _mm256_min_epu32(_mm256_add_epi32(av, b1), inf));
        let av = _mm256_set1_epi32(*ap.add(2) as i32);
        a20 = _mm256_min_epu32(a20, _mm256_min_epu32(_mm256_add_epi32(av, b0), inf));
        a21 = _mm256_min_epu32(a21, _mm256_min_epu32(_mm256_add_epi32(av, b1), inf));
        let av = _mm256_set1_epi32(*ap.add(3) as i32);
        a30 = _mm256_min_epu32(a30, _mm256_min_epu32(_mm256_add_epi32(av, b0), inf));
        a31 = _mm256_min_epu32(a31, _mm256_min_epu32(_mm256_add_epi32(av, b1), inf));
        ap = ap.add(MR);
        bp = bp.add(TILE_COLS);
    }
    let rows = [(a00, a01), (a10, a11), (a20, a21), (a30, a31)];
    for (r, &(lo, hi)) in rows.iter().enumerate() {
        // All-INF A rows contribute nothing in the guarded scalar loop;
        // skip the fold (see `afinite` in the engine).
        if !afinite[r] {
            continue;
        }
        let crow = c.add(r * c_stride);
        let c0 = _mm256_loadu_si256(crow as *const __m256i);
        let c1 = _mm256_loadu_si256(crow.add(8) as *const __m256i);
        _mm256_storeu_si256(crow as *mut __m256i, _mm256_min_epu32(c0, lo));
        _mm256_storeu_si256(crow.add(8) as *mut __m256i, _mm256_min_epu32(c1, hi));
    }
}

/// The portable twin of [`micro_avx2`]: same accumulator shape, same
/// elementary ops, plain Rust — the `--no-default-features` / non-x86
/// path, and the differential reference for the intrinsics.
///
/// # Safety
///
/// Same contract as [`micro_avx2`] minus the AVX2 requirement.
#[inline(always)]
unsafe fn micro_portable(
    apanel: &[Dist],
    bpack: &[Dist],
    inner: usize,
    c: *mut Dist,
    c_stride: usize,
    afinite: &[bool],
) {
    let mut acc = [[INF; TILE_COLS]; MR];
    for k in 0..inner {
        let brow = &bpack[k * TILE_COLS..(k + 1) * TILE_COLS];
        for r in 0..MR {
            let aik = apanel[k * MR + r];
            for (jj, av) in acc[r].iter_mut().enumerate() {
                // Clamped pack ⇒ no wrap; equals dist_add.
                *av = (*av).min((aik + brow[jj]).min(INF));
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        // All-INF A rows contribute nothing in the guarded scalar loop;
        // skip the fold (see `afinite` in the engine).
        if !afinite[r] {
            continue;
        }
        let crow = c.add(r * c_stride);
        for (jj, &av) in accr.iter().enumerate() {
            let cell = crow.add(jj);
            *cell = (*cell).min(av);
        }
    }
}

/// Register-tiled engine: one shared outer loop (packing, panel walk,
/// tails) with the per-tile micro-kernel dispatched on `isa`. Keeping
/// the outer loop shared means the two ISA paths can only differ inside
/// the micro-kernel, whose elementary ops are proven identical.
///
/// # Safety
///
/// `c` must not overlap `a` or `b`, every element addressed by the
/// extents/strides must be in bounds, and `isa` must come from
/// [`pick_isa`] (so `Avx2` implies the CPU supports it).
#[allow(clippy::too_many_arguments)]
unsafe fn engine(
    c: *mut Dist,
    c_stride: usize,
    a: *const Dist,
    a_stride: usize,
    b: *const Dist,
    b_stride: usize,
    rows: usize,
    inner: usize,
    cols: usize,
    isa: Isa,
) {
    let full_rows = rows - rows % MR;
    let full_cols = cols - cols % TILE_COLS;
    if full_rows > 0 && full_cols > 0 {
        // Pack A once for the whole call: panel-major, k-major inside a
        // panel, clamped. apack[p][k*MR + r] = clamp(A[p*MR + r][k]).
        // `afinite` records whether each row has *any* finite entry: the
        // guarded scalar loop skips `aik >= INF` entirely, so a row of
        // all-INF A contributes nothing — folding its (INF-valued)
        // accumulator into C would still clamp an out-of-domain C cell
        // (> INF) that scalar leaves untouched. Gating the fold on the
        // flag restores exact equality on those rows too.
        let panels = full_rows / MR;
        let mut apack = vec![0 as Dist; panels * inner * MR];
        let mut afinite = vec![false; full_rows];
        for p in 0..panels {
            let dst = &mut apack[p * inner * MR..(p + 1) * inner * MR];
            for r in 0..MR {
                let row = a.add((p * MR + r) * a_stride);
                let mut finite = false;
                for k in 0..inner {
                    let v = *row.add(k);
                    finite |= v < INF;
                    dst[k * MR + r] = clamp(v);
                }
                afinite[p * MR + r] = finite;
            }
        }
        // One packed 16-wide B panel at a time, reused by every A panel.
        let mut bpack = vec![0 as Dist; inner * TILE_COLS];
        let mut j0 = 0;
        while j0 < full_cols {
            for k in 0..inner {
                let src = b.add(k * b_stride + j0);
                let dst = &mut bpack[k * TILE_COLS..(k + 1) * TILE_COLS];
                for (jj, d) in dst.iter_mut().enumerate() {
                    *d = clamp(*src.add(jj));
                }
            }
            for p in 0..panels {
                let apanel = &apack[p * inner * MR..(p + 1) * inner * MR];
                let flags = &afinite[p * MR..(p + 1) * MR];
                let ctile = c.add(p * MR * c_stride + j0);
                // The register tile: min-reduces the whole k loop before
                // touching C. INF is the identity of min, so starting at
                // INF and folding into C afterwards equals the scalar
                // min-update order for order-independent reductions
                // (with the all-INF-row fold gate carried by `flags`).
                match isa {
                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    Isa::Avx2 => micro_avx2(
                        apanel.as_ptr(),
                        bpack.as_ptr(),
                        inner,
                        ctile,
                        c_stride,
                        flags,
                    ),
                    Isa::Portable => micro_portable(apanel, &bpack, inner, ctile, c_stride, flags),
                }
            }
            j0 += TILE_COLS;
        }
    }
    // Column tail: rows covered by full panels, columns past the last
    // 16-wide panel — branchless rows on the unpacked operands.
    if full_cols < cols {
        tail_rows(
            c, c_stride, a, a_stride, b, b_stride, 0, full_rows, inner, full_cols, cols,
        );
    }
    // Row tail: everything below the last full MR panel, all columns.
    if full_rows < rows {
        tail_rows(
            c, c_stride, a, a_stride, b, b_stride, full_rows, rows, inner, 0, cols,
        );
    }
}

/// The scalar-equivalent tail: the branchless row kernel over a row and
/// column sub-range of the same operands.
///
/// # Safety
///
/// Same contract as [`engine`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn tail_rows(
    c: *mut Dist,
    c_stride: usize,
    a: *const Dist,
    a_stride: usize,
    b: *const Dist,
    b_stride: usize,
    row_start: usize,
    row_end: usize,
    inner: usize,
    col_start: usize,
    col_end: usize,
) {
    let width = col_end - col_start;
    if width == 0 {
        return;
    }
    for i in row_start..row_end {
        let c_row = std::slice::from_raw_parts_mut(c.add(i * c_stride + col_start), width);
        for k in 0..inner {
            let aik = *a.add(i * a_stride + k);
            if aik >= INF {
                continue;
            }
            let b_row = std::slice::from_raw_parts(b.add(k * b_stride + col_start), width);
            relax_row_branchless(c_row, b_row, aik);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked_fw::minplus_tile;
    use apsp_graph::dist_add;
    use proptest::prelude::*;

    #[test]
    fn clamped_add_equals_dist_add() {
        // The micro-kernel's elementary op over the exact boundary set:
        // INF absorption, saturation at INF-1/INF, zero, and the maximal
        // representable operands.
        let interesting = [
            0,
            1,
            INF - 1,
            INF,
            INF + 1,
            u32::MAX / 2,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &a in &interesting {
            for &b in &interesting {
                assert_eq!(
                    (clamp(a) + clamp(b)).min(INF),
                    dist_add(a, b),
                    "a={a} b={b}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn clamped_add_equals_dist_add_everywhere(a in 0u32..=u32::MAX, b in 0u32..=u32::MAX) {
            prop_assert_eq!((clamp(a) + clamp(b)).min(INF), dist_add(a, b));
        }

        /// Bit-identity against the guarded scalar kernel at ragged,
        /// non-multiple-of-lane-width dimensions with full-range values
        /// (saturation boundaries included via the INF/MAX weights).
        #[test]
        fn simd_tile_matches_scalar_bitwise(
            rows in 1usize..40,
            inner in 1usize..24,
            cols in 1usize..40,
            c_pad in 0usize..4,
            seed in 0u64..u64::MAX,
        ) {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let gen = |len: usize, next: &mut dyn FnMut() -> u64| -> Vec<Dist> {
                (0..len)
                    .map(|_| match next() % 10 {
                        0 => INF,
                        1 => INF - 1,
                        2 => INF + (next() % 64) as u32,
                        3 => u32::MAX - (next() % 4) as u32,
                        _ => (next() % 100_000) as u32,
                    })
                    .collect()
            };
            let c_stride = cols + c_pad;
            let a = gen(rows * inner, &mut next);
            let b = gen(inner * cols, &mut next);
            let c0 = gen(rows * c_stride, &mut next);

            let mut scalar = c0.clone();
            minplus_tile(&mut scalar, c_stride, &a, inner, &b, cols, rows, inner, cols);
            let mut fast = c0;
            minplus_tile_simd(&mut fast, c_stride, &a, inner, &b, cols, rows, inner, cols);
            prop_assert_eq!(fast, scalar);
        }
    }

    #[test]
    fn exact_lane_multiples_and_off_by_ones() {
        // Deterministic sweep across the boundary dimensions the
        // proptest may not pin: exact MR/TILE_COLS multiples and their
        // neighbours, so both empty tails and full tails are exercised.
        let mut state = 0x5eed_cafe_f00d_1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &rows in &[MR - 1, MR, MR + 1, 2 * MR, 17] {
            for &cols in &[TILE_COLS - 1, TILE_COLS, TILE_COLS + 1, 2 * TILE_COLS, 33] {
                for &inner in &[1usize, 2, 7, 16] {
                    let gen = |len: usize, next: &mut dyn FnMut() -> u64| -> Vec<Dist> {
                        (0..len)
                            .map(|_| {
                                let v = next();
                                if v.is_multiple_of(5) {
                                    INF
                                } else {
                                    (v % 1000) as u32
                                }
                            })
                            .collect()
                    };
                    let a = gen(rows * inner, &mut next);
                    let b = gen(inner * cols, &mut next);
                    let c0 = gen(rows * cols, &mut next);
                    let mut scalar = c0.clone();
                    minplus_tile(&mut scalar, cols, &a, inner, &b, cols, rows, inner, cols);
                    let mut fast = c0;
                    minplus_tile_simd(&mut fast, cols, &a, inner, &b, cols, rows, inner, cols);
                    assert_eq!(fast, scalar, "{rows}x{inner}x{cols}");
                }
            }
        }
    }

    #[test]
    fn raw_variant_matches_slice_variant() {
        // Three tiles of one shared buffer, stage-3 style.
        let stride = 24usize;
        let (rows, inner, cols) = (8usize, 8usize, 16usize);
        let mut data: Vec<Dist> = (0..stride * stride)
            .map(|x| {
                let v = (x as u32).wrapping_mul(2654435761);
                if v.is_multiple_of(7) {
                    INF
                } else {
                    v % 997
                }
            })
            .collect();
        let (c_base, a_base, b_base) = (0usize, 16, 8 * stride);
        let a: Vec<Dist> = (0..rows)
            .flat_map(|i| data[a_base + i * stride..a_base + i * stride + inner].to_vec())
            .collect();
        let b: Vec<Dist> = (0..inner)
            .flat_map(|k| data[b_base + k * stride..b_base + k * stride + cols].to_vec())
            .collect();
        let mut expect: Vec<Dist> = (0..rows)
            .flat_map(|i| data[c_base + i * stride..c_base + i * stride + cols].to_vec())
            .collect();
        minplus_tile_simd(&mut expect, cols, &a, inner, &b, cols, rows, inner, cols);
        // SAFETY: C rows [0,8) cols [0,16) vs A cols [16,24) and B rows
        // [8,16) — disjoint tiles of the same buffer.
        unsafe {
            minplus_tile_raw_simd(&mut data, stride, c_base, a_base, b_base, rows, inner, cols);
        }
        for i in 0..rows {
            assert_eq!(
                &data[c_base + i * stride..c_base + i * stride + cols],
                &expect[i * cols..(i + 1) * cols],
                "row {i}"
            );
        }
    }

    #[test]
    fn empty_extents_are_no_ops() {
        let mut c = vec![7u32; 4];
        minplus_tile_simd(&mut c, 2, &[], 0, &[], 0, 0, 0, 2);
        minplus_tile_simd(&mut c, 2, &[1, 2], 1, &[], 2, 2, 0, 2);
        assert_eq!(c, vec![7; 4]);
    }
}
