//! BGL-Plus: the paper's multicore CPU baseline.
//!
//! "This implementation uses OpenMP to parallelize among different SSSP
//! instances, which are themselves using Dijkstra's algorithm
//! implementation from the popular Boost Graph Library." The Rust
//! equivalent parallelizes sources with rayon over the binary-heap
//! Dijkstra of [`crate::dijkstra`].

use crate::dense::DistMatrix;
use crate::dijkstra::dijkstra_sssp_into;
use apsp_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Full APSP by one Dijkstra per source, sources in parallel.
pub fn bgl_plus_apsp(g: &CsrGraph) -> DistMatrix {
    let n = g.num_vertices();
    let mut m = DistMatrix::new(n);
    // Each source owns one row: disjoint mutable chunks parallelize
    // without synchronization, mirroring the OpenMP loop of the original.
    m.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(source, row)| {
            dijkstra_sssp_into(g, source as VertexId, row);
        });
    m
}

/// APSP restricted to the given sources; returns one row per source in
/// input order. Used by the selector's batch-sampling cost model and by
/// tests that spot-check huge matrices.
pub fn bgl_plus_rows(g: &CsrGraph, sources: &[VertexId]) -> Vec<Vec<apsp_graph::Dist>> {
    sources
        .par_iter()
        .map(|&s| crate::dijkstra::dijkstra_sssp(g, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};
    use apsp_graph::{GraphBuilder, INF};

    #[test]
    fn matches_per_source_dijkstra() {
        let g = gnp(120, 0.05, WeightRange::default(), 3);
        let m = bgl_plus_apsp(&g);
        for s in [0u32, 7, 119] {
            assert_eq!(
                m.row(s as usize),
                &crate::dijkstra::dijkstra_sssp(&g, s)[..]
            );
        }
    }

    #[test]
    fn symmetric_graph_gives_symmetric_matrix() {
        let g = grid_2d(6, 6, GridOptions::default(), WeightRange::default(), 5);
        let m = bgl_plus_apsp(&g);
        for i in 0..36 {
            for j in 0..36 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn satisfies_triangle_inequality() {
        let g = gnp(80, 0.08, WeightRange::default(), 9);
        let m = bgl_plus_apsp(&g);
        assert!(m.check_triangle_sampled(50_000, 1).is_none());
    }

    #[test]
    fn rows_subset_matches_full() {
        let g = gnp(60, 0.1, WeightRange::default(), 11);
        let full = bgl_plus_apsp(&g);
        let rows = bgl_plus_rows(&g, &[5, 0, 59]);
        assert_eq!(&rows[0][..], full.row(5));
        assert_eq!(&rows[1][..], full.row(0));
        assert_eq!(&rows[2][..], full.row(59));
    }

    #[test]
    fn empty_and_disconnected() {
        let empty = GraphBuilder::new(0).build();
        assert_eq!(bgl_plus_apsp(&empty).n(), 0);
        let iso = GraphBuilder::new(3).build();
        let m = bgl_plus_apsp(&iso);
        assert_eq!(m.get(0, 1), INF);
        assert_eq!(m.get(1, 1), 0);
    }
}
