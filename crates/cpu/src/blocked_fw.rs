//! In-core (blocked) Floyd-Warshall — the SuperFW analog and the dense
//! reference the out-of-core variants are checked against.

use crate::dense::DistMatrix;
use crate::parallel::{
    branchless_add, par_bands_weighted, relax_row_branchless, ExecBackend, SharedSliceMut,
};
use apsp_graph::{dist_add, Dist};
use rayon::prelude::*;

/// Textbook Floyd-Warshall, `O(n³)`, in place.
pub fn floyd_warshall(m: &mut DistMatrix) {
    let n = m.n();
    let data = m.as_mut_slice();
    for k in 0..n {
        for i in 0..n {
            // Row k relaxed against itself is a no-op (dist_add(dik, dkj)
            // >= dkj with dkk >= 0), so skip it before touching the data —
            // one intentional skip, not a side effect of the INF guard.
            if i == k {
                continue;
            }
            let dik = data[i * n + k];
            if dik >= apsp_graph::INF {
                continue;
            }
            // Split borrows: row k is read, row i is written.
            let (row_k_start, row_i_start) = (k * n, i * n);
            let (lo, hi) = if row_k_start < row_i_start {
                let (a, b) = data.split_at_mut(row_i_start);
                (&a[row_k_start..row_k_start + n], &mut b[..n])
            } else {
                let (a, b) = data.split_at_mut(row_k_start);
                let row_i = &mut a[row_i_start..row_i_start + n];
                (&b[..n], row_i)
            };
            let (row_k, row_i): (&[Dist], &mut [Dist]) = (lo, hi);
            for j in 0..n {
                let via = dist_add(dik, row_k[j]);
                if via < row_i[j] {
                    row_i[j] = via;
                }
            }
        }
    }
}

/// Min-plus update of one tile: `C[i][j] = min(C[i][j], A[i][k] + B[k][j])`
/// over the given rectangular extents, where each operand is a sub-matrix
/// of a row-major buffer with its own origin and row stride.
///
/// Safe in-place aliasing (C overlapping A or B) is permitted in the
/// blocked-FW stage ordering; the loop order (i, k, j) reads entries that
/// the same round may update, which is exactly the (correct) behaviour of
/// in-place Floyd-Warshall.
#[allow(clippy::too_many_arguments)]
pub fn minplus_tile(
    c: &mut [Dist],
    c_stride: usize,
    a: &[Dist],
    a_stride: usize,
    b: &[Dist],
    b_stride: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for i in 0..rows {
        for k in 0..inner {
            let aik = a[i * a_stride + k];
            if aik >= apsp_graph::INF {
                continue;
            }
            let b_row = &b[k * b_stride..k * b_stride + cols];
            let c_row = &mut c[i * c_stride..i * c_stride + cols];
            for j in 0..cols {
                let via = dist_add(aik, b_row[j]);
                if via < c_row[j] {
                    c_row[j] = via;
                }
            }
        }
    }
}

/// Blocked Floyd-Warshall: `num_b × num_b` tiles of side `b`, three stages
/// per round (diagonal, pivot row+column, remainder), with the remainder
/// stage parallelized across tiles — the structure SuperFW and the GPU
/// versions share. Runs under the default execution backend; see
/// [`blocked_floyd_warshall_exec`] to choose one explicitly.
pub fn blocked_floyd_warshall(m: &mut DistMatrix, block: usize) {
    blocked_floyd_warshall_exec(m, block, ExecBackend::default());
}

/// [`blocked_floyd_warshall`] under an explicit execution backend.
///
/// The Parallel backend bands stage 2 and stage 3 across threads with
/// branchless inner loops; both are bit-identical to the scalar stages
/// because with a fixed pivot order each stage-2 tile depends only on
/// itself plus the (finalized, unwritten) diagonal tile, and each
/// stage-3 tile depends only on itself plus the stage-2 pivot row and
/// column panels — so tile results cannot observe each other.
pub fn blocked_floyd_warshall_exec(m: &mut DistMatrix, block: usize, exec: ExecBackend) {
    let n = m.n();
    if n == 0 {
        return;
    }
    let block = block.max(1).min(n);
    let num_b = n.div_ceil(block);
    if num_b == 1 {
        crate::parallel::floyd_warshall_exec(m, exec);
        return;
    }
    let backend = exec.resolve();
    let threads = backend.threads();
    let extent = |b_idx: usize| -> (usize, usize) {
        let start = b_idx * block;
        (start, (start + block).min(n) - start)
    };
    for kb in 0..num_b {
        let (ks, kl) = extent(kb);
        // Stage 1: diagonal tile — plain FW restricted to the tile.
        if exec.is_scalar() {
            fw_tile(m.as_mut_slice(), n, ks, kl);
        } else {
            fw_tile_branchless(m.as_mut_slice(), n, ks, kl);
        }
        // Stage 2: pivot row and pivot column tiles. Each `ib` updates
        // tiles (kb, ib) and (ib, kb) in place, reading only those tiles
        // and the diagonal tile (which stage 2 never writes), so distinct
        // `ib` are independent and can band across threads.
        if exec.is_scalar() || threads <= 1 {
            for ib in 0..num_b {
                if ib == kb {
                    continue;
                }
                let (is, il) = extent(ib);
                let data = m.as_mut_slice();
                if exec.is_scalar() {
                    // A(k, i) = min(A(k, i), A(k, k) ⊗ A(k, i)) — in-place
                    // on the B operand, the standard blocked-FW idiom.
                    minplus_tile_raw(data, n, ks * n + is, ks * n + ks, ks * n + is, kl, kl, il);
                    // A(i, k) = min(A(i, k), A(i, k) ⊗ A(k, k)) — in-place on A.
                    minplus_tile_raw(data, n, is * n + ks, is * n + ks, ks * n + ks, il, kl, kl);
                } else {
                    minplus_tile_raw_branchless(
                        data,
                        n,
                        ks * n + is,
                        ks * n + ks,
                        ks * n + is,
                        kl,
                        kl,
                        il,
                    );
                    minplus_tile_raw_branchless(
                        data,
                        n,
                        is * n + ks,
                        is * n + ks,
                        ks * n + ks,
                        il,
                        kl,
                        kl,
                    );
                }
            }
        } else {
            let shared = SharedSliceMut::new(m.as_mut_slice());
            par_bands_weighted(num_b, threads, 1, 2 * kl * kl * block, |band| {
                for ib in band {
                    if ib == kb {
                        continue;
                    }
                    let (is, il) = extent(ib);
                    // SAFETY: tile pair (kb, ib)/(ib, kb) is written only
                    // by the band owning `ib`; shared reads touch only the
                    // diagonal tile, which no stage-2 writer modifies.
                    let data = unsafe { shared.slice() };
                    minplus_tile_raw_branchless(
                        data,
                        n,
                        ks * n + is,
                        ks * n + ks,
                        ks * n + is,
                        kl,
                        kl,
                        il,
                    );
                    minplus_tile_raw_branchless(
                        data,
                        n,
                        is * n + ks,
                        is * n + ks,
                        ks * n + ks,
                        il,
                        kl,
                        kl,
                    );
                }
            });
        }
        // Stage 3: remainder tiles — each (i, j) tile touches disjoint
        // output; reads go to the pivot row/column panels stage 2
        // finalized and stage 3 never writes (ib != kb, jb != kb).
        if exec.is_scalar() {
            let data_ptr = SendPtr(m.as_mut_slice().as_mut_ptr());
            (0..num_b)
                .into_par_iter()
                .filter(|&ib| ib != kb)
                .for_each(|ib| {
                    let (is, il) = extent(ib);
                    for jb in 0..num_b {
                        if jb == kb {
                            continue;
                        }
                        let (js, jl) = extent(jb);
                        // SAFETY: tiles (ib, jb) for distinct ib write
                        // disjoint row ranges; reads touch the pivot
                        // row/column tiles, which stage 2 finalized and
                        // stage 3 never writes (ib != kb, jb != kb).
                        let data = unsafe { std::slice::from_raw_parts_mut(data_ptr.get(), n * n) };
                        let (a_base, b_base, c_base) = (is * n + ks, ks * n + js, is * n + js);
                        minplus_tile_raw(data, n, c_base, a_base, b_base, il, kl, jl);
                    }
                });
        } else {
            let shared = SharedSliceMut::new(m.as_mut_slice());
            let backend = &*backend;
            let work = num_b.saturating_sub(1) * block * kl * block;
            par_bands_weighted(num_b, threads, 1, work, |band| {
                for ib in band {
                    if ib == kb {
                        continue;
                    }
                    let (is, il) = extent(ib);
                    // SAFETY: as in the scalar stage 3 — distinct ib bands
                    // write disjoint row ranges, shared reads are to the
                    // pivot panels stage 3 never writes (C tile disjoint
                    // from A and B because ib != kb and jb != kb).
                    let data = unsafe { shared.slice() };
                    for jb in 0..num_b {
                        if jb == kb {
                            continue;
                        }
                        let (js, jl) = extent(jb);
                        let (a_base, b_base, c_base) = (is * n + ks, ks * n + js, is * n + js);
                        unsafe {
                            backend.minplus_tile_raw_st(data, n, c_base, a_base, b_base, il, kl, jl)
                        };
                    }
                }
            });
        }
    }
}

/// Like [`minplus_tile`] but all three operands live in one row-major
/// buffer (base offsets + shared stride), with C disjoint from A and B.
#[allow(clippy::too_many_arguments)]
pub(crate) fn minplus_tile_raw(
    data: &mut [Dist],
    stride: usize,
    c_base: usize,
    a_base: usize,
    b_base: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for i in 0..rows {
        for k in 0..inner {
            let aik = data[a_base + i * stride + k];
            if aik >= apsp_graph::INF {
                continue;
            }
            for j in 0..cols {
                let via = dist_add(aik, data[b_base + k * stride + j]);
                let c = &mut data[c_base + i * stride + j];
                if via < *c {
                    *c = via;
                }
            }
        }
    }
}

/// Branchless variant of [`minplus_tile_raw`], element-wise identical
/// (same read/write order, [`branchless_add`] == `dist_add`, `min` ==
/// the guarded store), so it tolerates the same in-place aliasing the
/// stage-2 idiom relies on.
#[allow(clippy::too_many_arguments)]
fn minplus_tile_raw_branchless(
    data: &mut [Dist],
    stride: usize,
    c_base: usize,
    a_base: usize,
    b_base: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for i in 0..rows {
        for k in 0..inner {
            let aik = data[a_base + i * stride + k];
            if aik >= apsp_graph::INF {
                continue;
            }
            for j in 0..cols {
                let via = branchless_add(aik, data[b_base + k * stride + j]);
                let c = &mut data[c_base + i * stride + j];
                *c = (*c).min(via);
            }
        }
    }
}

/// Branchless [`minplus_tile_raw`] for the stage-3 shape, where the C
/// tile is disjoint from A and B: rows materialize as split slices so
/// the inner loop vectorizes without the compiler having to prove
/// non-aliasing through one shared buffer.
///
/// Callers must guarantee the C tile overlaps neither the A nor the B
/// tile (stage 3 has `ib != kb` and `jb != kb`, which does exactly that).
#[allow(clippy::too_many_arguments)]
pub(crate) fn minplus_tile_raw_disjoint(
    data: &mut [Dist],
    stride: usize,
    c_base: usize,
    a_base: usize,
    b_base: usize,
    rows: usize,
    inner: usize,
    cols: usize,
) {
    let ptr = data.as_mut_ptr();
    for i in 0..rows {
        // SAFETY: the caller guarantees C is disjoint from A and B, so
        // this row never overlaps the element/row reads below.
        let c_row = unsafe { std::slice::from_raw_parts_mut(ptr.add(c_base + i * stride), cols) };
        for k in 0..inner {
            let aik = unsafe { *ptr.add(a_base + i * stride + k) };
            if aik >= apsp_graph::INF {
                continue;
            }
            let b_row = unsafe { std::slice::from_raw_parts(ptr.add(b_base + k * stride), cols) };
            relax_row_branchless(c_row, b_row, aik);
        }
    }
}

/// Branchless [`fw_tile`]: for a fixed pivot `k`, row `k` of the tile is
/// invariant (`i == k` skipped), so rows `i != k` relax against it with
/// the vectorizable row kernel — bit-identical to the scalar tile.
fn fw_tile_branchless(data: &mut [Dist], stride: usize, start: usize, len: usize) {
    let ptr = data.as_mut_ptr();
    for k in 0..len {
        for i in 0..len {
            if i == k {
                continue;
            }
            let dik = unsafe { *ptr.add((start + i) * stride + start + k) };
            if dik >= apsp_graph::INF {
                continue;
            }
            // SAFETY: rows i and k are distinct rows of the tile, so the
            // mutable and shared row views never overlap.
            let c_row = unsafe {
                std::slice::from_raw_parts_mut(ptr.add((start + i) * stride + start), len)
            };
            let b_row =
                unsafe { std::slice::from_raw_parts(ptr.add((start + k) * stride + start), len) };
            relax_row_branchless(c_row, b_row, dik);
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut Dist);

impl SendPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send + Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut Dist {
        self.0
    }
}
// SAFETY: stage-3 tiles write disjoint regions (distinct ib ⇒ disjoint
// row ranges) and all shared reads are to tiles finalized in stage 2.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Floyd-Warshall restricted to the square tile at `(start, start)` of
/// side `len` within a row-major `stride × stride` buffer.
fn fw_tile(data: &mut [Dist], stride: usize, start: usize, len: usize) {
    for k in 0..len {
        for i in 0..len {
            if i == k {
                continue;
            }
            let dik = data[(start + i) * stride + (start + k)];
            if dik >= apsp_graph::INF {
                continue;
            }
            for j in 0..len {
                let via = dist_add(dik, data[(start + k) * stride + (start + j)]);
                let c = &mut data[(start + i) * stride + (start + j)];
                if via < *c {
                    *c = via;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgl_plus::bgl_plus_apsp;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};
    use apsp_graph::{GraphBuilder, INF};

    #[test]
    fn plain_fw_matches_dijkstra() {
        let g = gnp(60, 0.08, WeightRange::default(), 21);
        let mut m = DistMatrix::from_graph(&g);
        floyd_warshall(&mut m);
        assert_eq!(m, bgl_plus_apsp(&g));
    }

    #[test]
    fn blocked_matches_plain_various_blocks() {
        let g = gnp(53, 0.1, WeightRange::default(), 5); // prime n: ragged tiles
        let mut reference = DistMatrix::from_graph(&g);
        floyd_warshall(&mut reference);
        for block in [1, 7, 16, 53, 64] {
            let mut m = DistMatrix::from_graph(&g);
            blocked_floyd_warshall(&mut m, block);
            assert_eq!(m, reference, "block = {block}");
        }
    }

    #[test]
    fn blocked_on_grid() {
        let g = grid_2d(7, 8, GridOptions::default(), WeightRange::default(), 2);
        let mut m = DistMatrix::from_graph(&g);
        blocked_floyd_warshall(&mut m, 13);
        assert_eq!(m, bgl_plus_apsp(&g));
    }

    #[test]
    fn handles_unreachable_pairs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 3);
        let g = b.build();
        let mut m = DistMatrix::from_graph(&g);
        blocked_floyd_warshall(&mut m, 2);
        assert_eq!(m.get(0, 1), 2);
        assert_eq!(m.get(0, 2), INF);
        assert_eq!(m.get(3, 0), INF);
    }

    #[test]
    fn minplus_tile_basic() {
        // C (2×2) = min(C, A (2×2) ⊗ B (2×2)) with stride == cols.
        let a = vec![1, INF, INF, 1];
        let b = vec![5, 6, 7, 8];
        let mut c = vec![INF; 4];
        minplus_tile(&mut c, 2, &a, 2, &b, 2, 2, 2, 2);
        assert_eq!(c, vec![6, 7, 8, 9]);
    }

    #[test]
    fn blocked_exec_backends_bit_identical() {
        let g = gnp(53, 0.1, WeightRange::default(), 11); // prime n: ragged tiles
        for block in [7, 16, 53] {
            let mut scalar = DistMatrix::from_graph(&g);
            blocked_floyd_warshall_exec(&mut scalar, block, ExecBackend::Scalar);
            for exec in [
                ExecBackend::Parallel { threads: Some(1) },
                ExecBackend::Parallel { threads: Some(3) },
                ExecBackend::Simd { threads: Some(1) },
                ExecBackend::Simd { threads: Some(3) },
            ] {
                let mut fast = DistMatrix::from_graph(&g);
                blocked_floyd_warshall_exec(&mut fast, block, exec);
                assert_eq!(fast, scalar, "block {block}, {exec}");
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let mut m = DistMatrix::new(0);
        blocked_floyd_warshall(&mut m, 8);
        assert_eq!(m.n(), 0);
    }

    #[test]
    fn zero_weight_cycles() {
        let mut b = GraphBuilder::new(3).symmetric(true);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        let g = b.build();
        let mut m = DistMatrix::from_graph(&g);
        blocked_floyd_warshall(&mut m, 2);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), 0);
            }
        }
    }
}
