//! Classic Johnson's reweighting: APSP with *negative* edge weights.
//!
//! The paper's system assumes non-negative integer weights (CUDA
//! `atomicMin` over `int`). The textbook Johnson's algorithm [10] is more
//! general: add a virtual source connected to every vertex with weight 0,
//! run Bellman-Ford to get potentials `h`, reweight every edge to
//! `w'(u,v) = w(u,v) + h(u) − h(v) ≥ 0`, run any non-negative SSSP, and
//! recover true distances as `d(u,v) = d'(u,v) − h(u) + h(v)`. This
//! module implements that front-end so the whole suite (including the
//! out-of-core GPU paths) extends to negatively weighted inputs.

use crate::dijkstra::dijkstra_sssp;
use apsp_graph::{CsrGraph, GraphBuilder, VertexId, INF};

/// A signed edge of the original problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedEdge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Possibly negative weight.
    pub weight: i64,
}

/// The input contains a negative-weight cycle: no shortest distances
/// exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeCycle;

impl std::fmt::Display for NegativeCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("graph contains a negative-weight cycle")
    }
}

impl std::error::Error for NegativeCycle {}

/// The reweighted problem: a non-negative [`CsrGraph`] plus the
/// potentials needed to translate distances back.
#[derive(Debug, Clone)]
pub struct Reweighted {
    /// Non-negative graph suitable for every APSP path in this suite.
    pub graph: CsrGraph,
    /// Bellman-Ford potentials `h` (one per vertex).
    pub potentials: Vec<i64>,
}

impl Reweighted {
    /// Build from a signed edge list over `n` vertices.
    pub fn new(n: usize, edges: &[SignedEdge]) -> Result<Self, NegativeCycle> {
        // Bellman-Ford from a virtual source connected to every vertex
        // with weight 0 — equivalently, start all potentials at 0.
        let mut h = vec![0i64; n];
        for round in 0..n {
            let mut changed = false;
            for e in edges {
                let cand = h[e.src as usize] + e.weight;
                if cand < h[e.dst as usize] {
                    h[e.dst as usize] = cand;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round + 1 == n {
                return Err(NegativeCycle);
            }
        }
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for e in edges {
            let w = e.weight + h[e.src as usize] - h[e.dst as usize];
            debug_assert!(w >= 0, "reweighting must be non-negative");
            // The triangle inequality of the potentials bounds w' by the
            // total weight spread, safely inside Dist range for any sane
            // input; clamp defensively.
            b.add_edge(e.src, e.dst, (w as u64).min((INF - 1) as u64) as u32);
        }
        Ok(Reweighted {
            graph: b.build(),
            potentials: h,
        })
    }

    /// Translate a reweighted distance (from `src`, to `dst`) back to the
    /// original weighting; `None` when unreachable.
    pub fn true_distance(&self, src: VertexId, dst: VertexId, reweighted: u32) -> Option<i64> {
        if reweighted >= INF {
            None
        } else {
            Some(reweighted as i64 - self.potentials[src as usize] + self.potentials[dst as usize])
        }
    }

    /// Full signed APSP via Dijkstra on the reweighted graph (reference
    /// implementation; any of the out-of-core paths works identically).
    pub fn apsp(&self) -> Vec<Vec<Option<i64>>> {
        let n = self.graph.num_vertices();
        (0..n as VertexId)
            .map(|s| {
                let d = dijkstra_sssp(&self.graph, s);
                (0..n as VertexId)
                    .map(|t| self.true_distance(s, t, d[t as usize]))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: u32, dst: u32, weight: i64) -> SignedEdge {
        SignedEdge { src, dst, weight }
    }

    #[test]
    fn textbook_example_with_negative_edges() {
        // CLRS-style: negative edges, no negative cycle.
        let edges = [
            e(0, 1, 3),
            e(0, 2, 8),
            e(0, 4, -4),
            e(1, 3, 1),
            e(1, 4, 7),
            e(2, 1, 4),
            e(3, 0, 2),
            e(3, 2, -5),
            e(4, 3, 6),
        ];
        let rw = Reweighted::new(5, &edges).unwrap();
        let d = rw.apsp();
        // Known answers for this classic instance.
        assert_eq!(d[0][4], Some(-4));
        assert_eq!(d[0][3], Some(2));
        assert_eq!(d[0][2], Some(-3));
        assert_eq!(d[3][1], Some(-1));
        assert_eq!(d[2][0], Some(7));
        // Diagonal zero.
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], Some(0));
        }
    }

    #[test]
    fn reweighted_graph_is_nonnegative() {
        let edges = [e(0, 1, -10), e(1, 2, 4), e(2, 0, 7)];
        let rw = Reweighted::new(3, &edges).unwrap();
        assert!(rw.graph.edges().all(|edge| edge.weight < INF));
    }

    #[test]
    fn negative_cycle_detected() {
        let edges = [e(0, 1, 1), e(1, 2, -3), e(2, 0, 1)];
        assert!(matches!(Reweighted::new(3, &edges), Err(NegativeCycle)));
        // A zero-weight cycle is fine.
        let edges = [e(0, 1, 1), e(1, 2, -2), e(2, 0, 1)];
        assert!(Reweighted::new(3, &edges).is_ok());
    }

    #[test]
    fn matches_nonnegative_dijkstra_when_no_negatives() {
        let edges = [e(0, 1, 5), e(1, 2, 2), e(0, 2, 9)];
        let rw = Reweighted::new(3, &edges).unwrap();
        let d = rw.apsp();
        assert_eq!(d[0][2], Some(7));
        assert_eq!(d[2][0], None); // unreachable
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let edges = [e(0, 1, -1)];
        let rw = Reweighted::new(3, &edges).unwrap();
        let d = rw.apsp();
        assert_eq!(d[0][1], Some(-1));
        assert_eq!(d[1][0], None);
        assert_eq!(d[0][2], None);
    }
}
