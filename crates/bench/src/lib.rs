//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section V) at a configurable scale.
//!
//! The paper's workloads are ~16–64× larger than a single host can
//! reasonably churn through a simulated device, so each experiment runs
//! at a default scale documented in DESIGN.md §7. Set `REPRO_SCALE` to
//! override every experiment's scale (larger = smaller/faster runs).
//!
//! Scaling rules (derived in DESIGN.md):
//! * graph `n` and `m` divide by `scale` (average degree preserved),
//! * device memory divides by `scale²` (output is n², so the out-of-core
//!   block/batch structure is preserved),
//! * fixed overheads (kernel launch, transfer latency) divide by `scale`
//!   (time-scale fidelity),
//! * selector density thresholds multiply by `scale`,
//! * Johnson's queue constant divides by `scale` (preserves `bat`).

pub mod experiments;

use apsp_core::options::{ApspOptions, JohnsonOptions};
use apsp_core::SelectorConfig;
use apsp_gpu_sim::DeviceProfile;
use apsp_graph::suite::{SuiteConfig, SuiteEntry};
use apsp_graph::CsrGraph;

/// Scale resolution: `REPRO_SCALE` env var wins, else the experiment's
/// default.
pub fn scale_or(default: usize) -> usize {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// The V100 profile adjusted for a scaled reproduction.
pub fn scaled_v100(scale: usize) -> DeviceProfile {
    scaled_profile(&DeviceProfile::v100(), scale)
}

/// The K80 profile adjusted for a scaled reproduction.
pub fn scaled_k80(scale: usize) -> DeviceProfile {
    scaled_profile(&DeviceProfile::k80(), scale)
}

/// Apply the scaling rules to any base profile (see
/// [`DeviceProfile::scaled_for_reproduction`]).
pub fn scaled_profile(base: &DeviceProfile, scale: usize) -> DeviceProfile {
    base.scaled_for_reproduction(scale)
}

/// Johnson options adjusted for scale and device: the queue constant is
/// chosen so the scaled batch size shrinks by the same factor as the
/// scaled `saturating_blocks` — preserving the paper run's occupancy
/// ratio `bat / saturating`:
///
/// `bat_s = (L/s²)/(c_s·(m/s)·W) = bat_p · c_p/(c_s·s)`, and
/// `sat_s = sat_p / r` (with `r = min(sat_p, s²)` because saturating
/// blocks floor at 1), so `c_s = r / s` keeps the ratio.
pub fn scaled_johnson_for(base: &DeviceProfile, scale: usize) -> JohnsonOptions {
    let s = scale as f64;
    let r = ((scale * scale) as f64).min(base.saturating_blocks as f64);
    JohnsonOptions {
        queue_words_per_edge: (r / s).max(f64::MIN_POSITIVE),
        ..Default::default()
    }
}

/// [`scaled_johnson_for`] with the V100 profile (the paper's primary
/// device).
pub fn scaled_johnson(scale: usize) -> JohnsonOptions {
    scaled_johnson_for(&DeviceProfile::v100(), scale)
}

/// Selector configuration adjusted for scale.
pub fn scaled_selector(scale: usize) -> SelectorConfig {
    SelectorConfig::scaled(scale)
}

/// Full options bundle for a scaled run.
pub fn scaled_options(scale: usize) -> ApspOptions {
    ApspOptions {
        johnson: scaled_johnson(scale),
        selector: scaled_selector(scale),
        ..Default::default()
    }
}

/// Suite generation config at a scale.
pub fn suite_config(scale: usize) -> SuiteConfig {
    SuiteConfig {
        scale,
        ..Default::default()
    }
}

/// A generated analog ready to run.
pub struct AnalogRun {
    /// The Table III/IV row this stands in for.
    pub entry: &'static SuiteEntry,
    /// The generated graph.
    pub graph: CsrGraph,
}

/// Generate analogs for a list of suite entries.
pub fn build_analogs(entries: &[&'static SuiteEntry], scale: usize) -> Vec<AnalogRun> {
    let cfg = suite_config(scale);
    entries
        .iter()
        .map(|&entry| AnalogRun {
            entry,
            graph: entry.generate(&cfg),
        })
        .collect()
}

/// Minimal fixed-width table printer for the experiment reports.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s.is_infinite() {
        "inf".to_string()
    } else if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let r = t.render();
        assert!(r.contains("name"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(250.0), "250");
        assert_eq!(fmt_secs(2.5), "2.50");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-5), "25.0us");
        assert_eq!(fmt_secs(f64::INFINITY), "inf");
    }

    #[test]
    fn scaled_profile_applies_rules() {
        let p = scaled_v100(4);
        let base = DeviceProfile::v100();
        assert_eq!(p.memory_bytes, base.memory_bytes / 16);
        assert!((p.kernel_launch_overhead - base.kernel_launch_overhead / 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_johnson_queue_constant() {
        // s = 8: s² = 64 < 160 saturating blocks ⇒ c = 64/8 = 8.
        let o = scaled_johnson(8);
        assert!((o.queue_words_per_edge - 8.0).abs() < 1e-12);
        // s = 48: s² caps at 160 ⇒ c = 160/48.
        let o48 = scaled_johnson(48);
        assert!((o48.queue_words_per_edge - 160.0 / 48.0).abs() < 1e-12);
    }
}
