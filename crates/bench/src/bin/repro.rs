//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>        run one experiment
//! repro all                 run everything (≈ tens of minutes of host time)
//! REPRO_SCALE=64 repro all  faster, smaller-scale run
//! ```

use apsp_bench::experiments::{large, optimizations, selector_exps, speedups, tables};

const EXPERIMENTS: &[(&str, fn())] = &[
    ("table1", tables::table1 as fn()),
    ("table2", tables::table2),
    ("table3", tables::table3),
    ("table4", tables::table4),
    ("fig2", speedups::fig2),
    ("fig3", speedups::fig3),
    ("fig4", speedups::fig4),
    ("fig5", large::fig5),
    ("table5", large::table5),
    ("fig6", selector_exps::fig6),
    ("fig7", selector_exps::fig7),
    ("table6", selector_exps::table6),
    ("fig8", optimizations::fig8),
    ("ablation-dynpar", optimizations::ablation_dynpar),
    ("ablation-k", optimizations::ablation_k),
    ("ablation-delta", optimizations::ablation_delta),
    ("ablation-sssp", optimizations::ablation_sssp),
    ("ablation-incore", optimizations::ablation_incore),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return;
    }
    for arg in &args {
        if arg == "all" {
            for (name, f) in EXPERIMENTS {
                println!("\n########## {name} ##########");
                f();
            }
            continue;
        }
        match EXPERIMENTS.iter().find(|(name, _)| name == arg) {
            Some((_, f)) => f(),
            None => {
                eprintln!("unknown experiment: {arg}");
                usage();
                std::process::exit(1);
            }
        }
    }
}

fn usage() {
    eprintln!("usage: repro <experiment>... | all");
    eprintln!("experiments:");
    for (name, _) in EXPERIMENTS {
        eprintln!("  {name}");
    }
    eprintln!("env: REPRO_SCALE=<n> overrides every experiment's scale divisor");
}
