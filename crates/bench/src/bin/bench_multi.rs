//! `bench_multi` — the multi-device makespan curve.
//!
//! ```text
//! bench_multi [options]
//!
//!   --smoke        reduced graph size + the same gates (CI's multi-device job)
//!   --out <path>   where to write the JSON report
//!                  (default BENCH_multi.json in the current directory)
//!   --sizes <a,b,...>   homogeneous fleet sizes to sweep (default from
//!                  APSP_FLEET_SIZES, else 1,2,4,8)
//!   --n <vertices> grid side is derived from this vertex budget
//! ```
//!
//! Sweeps the sharded boundary executor over homogeneous V100 fleets of
//! increasing size plus two heterogeneous V100/K80 mixes, on one fixed
//! partition (`k = max(sizes)`, at least 8) so every run schedules the
//! same components and only the fleet varies. Records the simulated
//! makespan, per-phase seconds, work-stealing migrations, and an FNV-1a
//! checksum of the result matrix per fleet.
//!
//! Two gates, exit 1 on violation:
//!
//! * every fleet's matrix is bit-identical (equal checksums);
//! * the homogeneous makespan curve never rises as devices are added.

use apsp_core::options::BoundaryOptions;
use apsp_core::{ooc_boundary_multi, MultiGpuStats, StorageBackend, TileStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};
use apsp_graph::{CsrGraph, Dist};
use std::time::Instant;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(values: &[Dist]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

struct FleetCase {
    label: String,
    profiles: Vec<DeviceProfile>,
    homogeneous: bool,
}

struct FleetRow {
    label: String,
    devices: usize,
    stats: MultiGpuStats,
    checksum: u64,
    wall_secs: f64,
    homogeneous: bool,
}

fn run_fleet(g: &CsrGraph, case: &FleetCase, opts: &BoundaryOptions) -> FleetRow {
    let mut devs: Vec<GpuDevice> = case
        .profiles
        .iter()
        .map(|p| GpuDevice::new(p.clone()))
        .collect();
    let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).expect("host store");
    let wall = Instant::now();
    let stats = ooc_boundary_multi(&mut devs, g, &mut store, opts)
        .unwrap_or_else(|e| panic!("fleet {} failed: {e}", case.label));
    let wall_secs = wall.elapsed().as_secs_f64();
    let matrix = store.to_dist_matrix().expect("store readback");
    FleetRow {
        label: case.label.clone(),
        devices: case.profiles.len(),
        stats,
        checksum: fnv1a(matrix.as_slice()),
        wall_secs,
        homogeneous: case.homogeneous,
    }
}

fn main() {
    let mut out = "BENCH_multi.json".to_string();
    let mut smoke = false;
    let mut sizes_spec: Option<String> = None;
    let mut n_budget: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a value"),
            "--sizes" => sizes_spec = Some(it.next().expect("--sizes needs a value")),
            "--n" => {
                n_budget = Some(
                    it.next()
                        .expect("--n needs a value")
                        .parse()
                        .expect("bad --n"),
                )
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                eprintln!(
                    "usage: bench_multi [--smoke] [--out path] [--sizes a,b,...] [--n vertices]"
                );
                std::process::exit(2);
            }
        }
    }
    let sizes_spec = sizes_spec
        .or_else(|| std::env::var("APSP_FLEET_SIZES").ok())
        .unwrap_or_else(|| "1,2,4,8".to_string());
    let sizes: Vec<usize> = sizes_spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&c| c >= 1)
        .collect();
    assert!(!sizes.is_empty(), "no fleet sizes in {sizes_spec:?}");

    // A grid keeps component boundaries small, so the partition stays
    // feasible on modest simulated devices at every k.
    let side = (n_budget.unwrap_or(if smoke { 196 } else { 576 }) as f64)
        .sqrt()
        .round() as usize;
    let g = grid_2d(
        side,
        side,
        GridOptions::default(),
        WeightRange::default(),
        0xB41C,
    );
    // Fix the partition across the whole sweep: with k free, the
    // executor raises it to the device count, and a finer partition has
    // more boundary work — which would confound the scaling curve.
    let k = sizes.iter().copied().max().unwrap_or(1).max(8);
    let opts = BoundaryOptions {
        num_components: Some(k),
        ..Default::default()
    };
    println!(
        "bench_multi: {}×{side} grid (n = {}), k = {k}, sizes {sizes:?}{}",
        side,
        g.num_vertices(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut cases: Vec<FleetCase> = sizes
        .iter()
        .map(|&c| FleetCase {
            label: format!("v100 x{c}"),
            profiles: vec![DeviceProfile::v100(); c],
            homogeneous: true,
        })
        .collect();
    cases.push(FleetCase {
        label: "v100+k80".into(),
        profiles: vec![DeviceProfile::v100(), DeviceProfile::k80()],
        homogeneous: false,
    });
    cases.push(FleetCase {
        label: "v100+k80 x2".into(),
        profiles: vec![
            DeviceProfile::v100(),
            DeviceProfile::k80(),
            DeviceProfile::v100(),
            DeviceProfile::k80(),
        ],
        homogeneous: false,
    });

    let rows: Vec<FleetRow> = cases.iter().map(|c| run_fleet(&g, c, &opts)).collect();
    for r in &rows {
        println!(
            "  {:<12} {} device(s): makespan {:.6} s (dist2 {:.6} / dist3 {:.6} / dist4 {:.6}), \
             {} stolen, wall {:.3} s, checksum {:#018x}",
            r.label,
            r.devices,
            r.stats.sim_seconds,
            r.stats.phase_seconds[0],
            r.stats.phase_seconds[1],
            r.stats.phase_seconds[2],
            r.stats.stolen_panels,
            r.wall_secs,
            r.checksum,
        );
    }

    let mut failed = false;
    let reference = rows[0].checksum;
    if rows.iter().any(|r| r.checksum != reference) {
        eprintln!("GATE FAILED: fleets disagree on the result matrix");
        failed = true;
    }
    let homogeneous: Vec<&FleetRow> = rows.iter().filter(|r| r.homogeneous).collect();
    for pair in homogeneous.windows(2) {
        if pair[1].stats.sim_seconds > pair[0].stats.sim_seconds * (1.0 + 1e-9) {
            eprintln!(
                "GATE FAILED: makespan rose from {} ({:.6} s) to {} ({:.6} s)",
                pair[0].label, pair[0].stats.sim_seconds, pair[1].label, pair[1].stats.sim_seconds
            );
            failed = true;
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"bench_multi\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"n\": {},\n", g.num_vertices()));
    json.push_str(&format!("  \"num_components\": {k},\n"));
    json.push_str(&format!(
        "  \"sizes\": [{}],\n",
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"fleets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fleet\": \"{}\", \"devices\": {}, \"homogeneous\": {}, \
             \"makespan_s\": {:.9}, \"dist2_s\": {:.9}, \"dist3_s\": {:.9}, \
             \"dist4_s\": {:.9}, \"stolen_panels\": {}, \"num_components\": {}, \
             \"wall_secs\": {:.6}, \"checksum\": \"{:#018x}\", \"bit_identical\": {}}}{}\n",
            r.label,
            r.devices,
            r.homogeneous,
            r.stats.sim_seconds,
            r.stats.phase_seconds[0],
            r.stats.phase_seconds[1],
            r.stats.phase_seconds[2],
            r.stats.stolen_panels,
            r.stats.num_components,
            r.wall_secs,
            r.checksum,
            r.checksum == reference,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    println!("report written to {out}");
    if failed {
        std::process::exit(1);
    }
}
