//! `bench_kernels` — wall-clock scalar vs parallel vs simd backend
//! comparison.
//!
//! ```text
//! bench_kernels [options]
//!
//!   --smoke        reduced sizes + CI gates: exit 1 unless the parallel
//!                  backend beats scalar by >= 1.5x on the medium
//!                  min-plus shape, and (when an accelerated ISA is
//!                  active) the simd backend beats scalar by >= 3x there
//!   --out <path>   where to write the JSON report
//!                  (default BENCH_kernels.json in the current directory)
//!   --reps <n>     timing repetitions per case, best-of (default 3)
//!   --metrics-out <path>   also write the per-case telemetry JSONL
//!                  (one run report per out-of-core case, concatenated)
//!   --calibration-dir <dir>   persist selector calibration across the
//!                  out-of-core cases: each run folds its realized
//!                  seconds back into the per-device-profile store
//!   --sdc-guard off|checksum|full   run the out-of-core cases with the
//!                  silent-corruption guard at this level (default off)
//! ```
//!
//! Two families of cases:
//!
//! * **min-plus GEMM** on square shapes — the tile kernel every
//!   out-of-core driver spends its time in, timed directly against all
//!   three backends on identical operands;
//! * **full out-of-core runs** — the three algorithms crossed with
//!   `Memory`/`Disk` storage on a deliberately small simulated device,
//!   so the host-side tile loops (what the backend accelerates)
//!   dominate.
//!
//! Every case records wall-clock seconds for each backend, the
//! per-backend speedups over scalar, the resolved thread count, and an
//! FNV-1a checksum of the result — which must be bit-identical across
//! all backends or the binary exits non-zero.
//!
//! `--smoke` additionally gates the silent-corruption guard's overhead:
//! a representative out-of-core run with `--sdc-guard checksum` may cost
//! at most 5% wall-clock over the unguarded run (plus a 10 ms floor so
//! timer noise at smoke sizes cannot flake the gate).

use apsp_core::options::{Algorithm, SdcGuardMode};
use apsp_core::{apsp, ApspOptions, RunReport, StorageBackend};
use apsp_cpu::parallel::minplus_tile_exec;
use apsp_cpu::ExecBackend;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, WeightRange};
use apsp_graph::{CsrGraph, Dist, INF};
use std::time::Instant;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u32s(values: &[Dist], mut hash: u64) -> u64 {
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// Deterministic operand matrix: mostly finite weights with INF holes,
/// so the scalar kernel's INF fast path stays exercised.
fn random_matrix(n: usize, seed: u64) -> Vec<Dist> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(n * n);
    for _ in 0..n * n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push(if state.is_multiple_of(8) {
            INF
        } else {
            (state % 10_000) as Dist
        });
    }
    out
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct CaseResult {
    kind: &'static str,
    name: String,
    n: usize,
    scalar_secs: f64,
    parallel_secs: f64,
    simd_secs: f64,
    checksum: u64,
    bit_identical: bool,
    /// Run telemetry from the simd-backend rep (ooc cases only).
    telemetry: Option<RunReport>,
}

impl CaseResult {
    fn speedup_over_scalar(&self, secs: f64) -> f64 {
        if secs > 0.0 {
            self.scalar_secs / secs
        } else {
            0.0
        }
    }

    fn parallel_speedup(&self) -> f64 {
        self.speedup_over_scalar(self.parallel_secs)
    }

    fn simd_speedup(&self) -> f64 {
        self.speedup_over_scalar(self.simd_secs)
    }
}

fn bench_minplus(n: usize, reps: usize) -> CaseResult {
    let a = random_matrix(n, 0x1234_5678 ^ n as u64);
    let b = random_matrix(n, 0x9ABC_DEF0 ^ n as u64);
    let c0 = random_matrix(n, 0x0F1E_2D3C ^ n as u64);

    let mut c_scalar = c0.clone();
    let scalar_secs = time_best(reps, || {
        c_scalar.copy_from_slice(&c0);
        minplus_tile_exec(
            &mut c_scalar,
            n,
            &a,
            n,
            &b,
            n,
            n,
            n,
            n,
            ExecBackend::scalar(),
        );
    });

    let mut c_parallel = c0.clone();
    let parallel_secs = time_best(reps, || {
        c_parallel.copy_from_slice(&c0);
        minplus_tile_exec(
            &mut c_parallel,
            n,
            &a,
            n,
            &b,
            n,
            n,
            n,
            n,
            ExecBackend::parallel(),
        );
    });

    let mut c_simd = c0.clone();
    let simd_secs = time_best(reps, || {
        c_simd.copy_from_slice(&c0);
        minplus_tile_exec(&mut c_simd, n, &a, n, &b, n, n, n, n, ExecBackend::simd());
    });

    CaseResult {
        kind: "minplus",
        name: format!("minplus-{n}"),
        n,
        scalar_secs,
        parallel_secs,
        simd_secs,
        checksum: fnv1a_u32s(&c_scalar, FNV_OFFSET_BASIS),
        bit_identical: c_scalar == c_parallel && c_scalar == c_simd,
        telemetry: None,
    }
}

fn run_ooc(
    graph: &CsrGraph,
    algorithm: Algorithm,
    storage: &StorageBackend,
    exec: ExecBackend,
    calibration_dir: Option<&std::path::Path>,
    sdc_guard: SdcGuardMode,
    telemetry: bool,
) -> (f64, u64, Option<RunReport>) {
    // 256 KiB keeps every case genuinely out-of-core (the full matrix
    // never fits). Boundary additionally needs its k-partition working
    // set resident — at the full-mode n that minimum exceeds 256 KiB —
    // so it gets 1 MiB and still streams per-pair block products.
    let mem = match algorithm {
        Algorithm::Boundary => 1 << 20,
        _ => 256 << 10,
    };
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(mem));
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: storage.clone(),
        exec,
        // Timed reps run with telemetry off: enabling it triggers a
        // shadow selection whose sampled probe batches are real host
        // work, a fixed cost identical across backends that would dilute
        // every speedup toward 1.0. The artifact's run report comes from
        // one separate untimed telemetry pass instead.
        telemetry,
        calibration_dir: calibration_dir.map(|d| d.to_path_buf()),
        sdc_guard,
        ..Default::default()
    };
    let t = Instant::now();
    let result = apsp(graph, &mut dev, &opts).expect("ooc benchmark run failed");
    let secs = t.elapsed().as_secs_f64();
    let checksum = result
        .store
        .panel_checksums(graph.num_vertices().max(1))
        .expect("checksum read failed")
        .first()
        .copied()
        .unwrap_or(FNV_OFFSET_BASIS);
    (secs, checksum, result.telemetry)
}

fn bench_ooc(
    graph: &CsrGraph,
    algorithm: Algorithm,
    disk: bool,
    reps: usize,
    calibration_dir: Option<&std::path::Path>,
    sdc_guard: SdcGuardMode,
) -> CaseResult {
    let alg_name = match algorithm {
        Algorithm::FloydWarshall => "fw",
        Algorithm::Johnson => "johnson",
        Algorithm::Boundary => "boundary",
    };
    let scratch = std::env::temp_dir().join("apsp-bench-kernels");
    let storage = if disk {
        StorageBackend::Disk(scratch)
    } else {
        StorageBackend::Memory
    };

    // Whole-pipeline runs are short (tens of ms) and the container's
    // timing noise at that scale swamps real backend margins, so the
    // out-of-core cases take a higher best-of floor than the dense
    // kernels. The backend order also rotates every rep: any slow drift
    // across the rep loop (page cache, co-tenant load) then hits each
    // backend's sample set equally instead of always taxing whichever
    // backend runs last.
    let mut secs = [f64::INFINITY; 3];
    let mut sums = [0u64; 3];
    let backends = [
        ExecBackend::scalar(),
        ExecBackend::parallel(),
        ExecBackend::simd(),
    ];
    for rep in 0..reps.max(12) {
        for lane in 0..3 {
            let b = (rep + lane) % 3;
            let (s, c, _) = run_ooc(
                graph,
                algorithm,
                &storage,
                backends[b],
                calibration_dir,
                sdc_guard,
                false,
            );
            secs[b] = secs[b].min(s);
            sums[b] = c;
        }
    }
    let [scalar_secs, parallel_secs, simd_secs] = secs;
    let [scalar_sum, parallel_sum, simd_sum] = sums;
    // Untimed pass to harvest the run report (telemetry on).
    let (_, _, telemetry) = run_ooc(
        graph,
        algorithm,
        &storage,
        ExecBackend::simd(),
        calibration_dir,
        sdc_guard,
        true,
    );

    CaseResult {
        kind: "ooc",
        name: format!("{alg_name}-{}", if disk { "disk" } else { "memory" }),
        n: graph.num_vertices(),
        scalar_secs,
        parallel_secs,
        simd_secs,
        checksum: scalar_sum,
        bit_identical: scalar_sum == parallel_sum && scalar_sum == simd_sum,
        telemetry,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn json_opt_secs(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.6}"),
        None => "null".into(),
    }
}

/// The compact telemetry object embedded per out-of-core case:
/// aggregated phase spans plus the selector calibration records.
fn telemetry_json(t: &RunReport) -> String {
    let phases = t
        .aggregated_phases()
        .iter()
        .map(|(name, count, seconds)| {
            format!(
                "{{\"name\": \"{}\", \"count\": {count}, \"seconds\": {seconds:.6}}}",
                json_escape(name)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let calibration = t
        .calibration
        .iter()
        .map(|c| {
            format!(
                "{{\"algorithm\": \"{}\", \"predicted_s\": {}, \"seed_predicted_s\": {}, \"selected\": {}, \"realized_s\": {}}}",
                c.algorithm,
                json_opt_secs(c.predicted_s),
                json_opt_secs(c.seed_predicted_s),
                c.selected,
                json_opt_secs(c.realized_s),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"sim_seconds\": {:.6}, \"bytes_h2d\": {}, \"bytes_d2h\": {}, \
         \"kernel_launches\": {}, \"overlap_efficiency\": {:.6}, \
         \"phases\": [{phases}], \"calibration\": [{calibration}]}}",
        t.sim_seconds, t.bytes_h2d, t.bytes_d2h, t.kernel_launches, t.overlap_efficiency,
    )
}

fn write_report(
    path: &str,
    smoke: bool,
    reps: usize,
    threads: usize,
    cases: &[CaseResult],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"bench_kernels\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"simd_isa\": \"{}\",\n",
        apsp_cpu::simd::active_isa()
    ));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let telemetry = match &c.telemetry {
            Some(t) => format!(", \"telemetry\": {}", telemetry_json(t)),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"name\": \"{}\", \"n\": {}, \
             \"scalar_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"simd_secs\": {:.6}, \"parallel_speedup\": {:.3}, \
             \"simd_speedup\": {:.3}, \"checksum\": \"{:#018x}\", \
             \"bit_identical\": {}{}}}{}\n",
            json_escape(c.kind),
            json_escape(&c.name),
            c.n,
            c.scalar_secs,
            c.parallel_secs,
            c.simd_secs,
            c.parallel_speedup(),
            c.simd_speedup(),
            c.checksum,
            c.bit_identical,
            telemetry,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut metrics_out: Option<String> = None;
    let mut calibration_dir: Option<std::path::PathBuf> = None;
    let mut sdc_guard = SdcGuardMode::Off;
    let mut reps = 3usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out needs a value"),
            "--metrics-out" => metrics_out = Some(it.next().expect("--metrics-out needs a value")),
            "--calibration-dir" => {
                calibration_dir = Some(std::path::PathBuf::from(
                    it.next().expect("--calibration-dir needs a value"),
                ))
            }
            "--sdc-guard" => {
                sdc_guard = it
                    .next()
                    .expect("--sdc-guard needs a value")
                    .parse()
                    .expect("bad --sdc-guard (want off|checksum|full)")
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("bad --reps")
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                eprintln!(
                    "usage: bench_kernels [--smoke] [--out path] [--reps n] [--metrics-out path] [--calibration-dir dir] [--sdc-guard off|checksum|full]"
                );
                std::process::exit(2);
            }
        }
    }

    let threads = ExecBackend::parallel().resolved_threads();
    let simd_isa = apsp_cpu::simd::active_isa();
    println!(
        "bench_kernels: {} mode, {reps} rep(s), {threads} thread(s), simd isa: {simd_isa}",
        if smoke { "smoke" } else { "full" }
    );

    let minplus_shapes: &[usize] = if smoke {
        &[64, 128, 192]
    } else {
        &[96, 256, 448]
    };
    // Full-mode OOC shape: big enough that tile kernels dominate the
    // wall clock. At n=160 the fixed driver overhead (staging, sim
    // bookkeeping) was ~2/3 of each run, pinning backend ratios to
    // 1.0 +- timer noise; at n=320 the cubic kernel work decides them.
    let ooc_n = if smoke { 96 } else { 320 };

    let mut cases = Vec::new();
    for &n in minplus_shapes {
        let c = bench_minplus(n, reps);
        println!(
            "  {:<16} scalar {:>9.4}s  parallel {:>9.4}s ({:>5.2}x)  simd {:>9.4}s ({:>5.2}x)  {}",
            c.name,
            c.scalar_secs,
            c.parallel_secs,
            c.parallel_speedup(),
            c.simd_secs,
            c.simd_speedup(),
            if c.bit_identical { "exact" } else { "MISMATCH" }
        );
        cases.push(c);
    }

    let graph = gnp(ooc_n, 0.06, WeightRange::default(), 0xBE7C);
    for algorithm in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        for disk in [false, true] {
            let c = bench_ooc(
                &graph,
                algorithm,
                disk,
                reps,
                calibration_dir.as_deref(),
                sdc_guard,
            );
            println!(
                "  {:<16} scalar {:>9.4}s  parallel {:>9.4}s ({:>5.2}x)  simd {:>9.4}s ({:>5.2}x)  {}",
                c.name,
                c.scalar_secs,
                c.parallel_secs,
                c.parallel_speedup(),
                c.simd_secs,
                c.simd_speedup(),
                if c.bit_identical { "exact" } else { "MISMATCH" }
            );
            cases.push(c);
        }
    }

    if let Err(e) = write_report(&out_path, smoke, reps, threads, &cases) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(path) = &metrics_out {
        let jsonl: String = cases
            .iter()
            .filter_map(|c| c.telemetry.as_ref())
            .map(RunReport::to_jsonl)
            .collect();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(c) = cases.iter().find(|c| !c.bit_identical) {
        eprintln!("FAIL: {} is not bit-identical across backends", c.name);
        std::process::exit(1);
    }
    if smoke {
        // SDC-overhead gate: the checksum guard on a representative
        // out-of-core run may cost at most 5% wall-clock over the
        // unguarded run. A 10 ms absolute floor keeps timer noise at
        // smoke sizes from flaking the gate.
        let time_guarded = |mode: SdcGuardMode| {
            let mut best = f64::INFINITY;
            for _ in 0..reps.max(3) {
                let (s, _, _) = run_ooc(
                    &graph,
                    Algorithm::FloydWarshall,
                    &StorageBackend::Memory,
                    ExecBackend::parallel(),
                    None,
                    mode,
                    false,
                );
                best = best.min(s);
            }
            best
        };
        let off = time_guarded(SdcGuardMode::Off);
        let checksum = time_guarded(SdcGuardMode::Checksum);
        let budget = (off * 1.05).max(off + 0.010);
        if checksum > budget {
            eprintln!(
                "FAIL: sdc checksum guard costs {checksum:.4}s vs {off:.4}s unguarded \
                 (budget {budget:.4}s)"
            );
            std::process::exit(1);
        }
        println!(
            "sdc overhead gate passed: checksum {checksum:.4}s vs off {off:.4}s \
             (budget {budget:.4}s)"
        );

        // CI gate: the largest smoke min-plus shape is the contract the
        // parallel backend must honour on a multi-core runner — it is
        // the smallest shape whose work clears the inline-dispatch
        // floor, so threads genuinely engage (the smaller shapes run
        // inline by design and pin near 1.0x).
        // Re-time the gate shape with elevated reps: the gate compares
        // two ~5 ms measurements, and on noisy (virtualized) runners a
        // single unlucky rep can swing the ratio by 2-3x. Best-of-9
        // keeps the gate about the kernels, not the scheduler.
        let gate_shape = *minplus_shapes.last().expect("no minplus shapes");
        let gate_case = bench_minplus(gate_shape, reps.max(9));
        if gate_case.parallel_speedup() < 1.5 {
            eprintln!(
                "FAIL: {} parallel speedup {:.2}x < 1.5x gate",
                gate_case.name,
                gate_case.parallel_speedup()
            );
            std::process::exit(1);
        }
        println!(
            "smoke gate passed: {} parallel at {:.2}x (>= 1.5x)",
            gate_case.name,
            gate_case.parallel_speedup()
        );
        // CI gate: the register-tiled micro-kernel's floor on the same
        // shape. Only enforceable when an accelerated ISA is actually
        // running — the portable fallback (non-x86 or
        // --no-default-features builds) has no vector floor to promise.
        if simd_isa != "portable" {
            if gate_case.simd_speedup() < 3.0 {
                eprintln!(
                    "FAIL: {} simd speedup {:.2}x < 3.0x gate (isa {simd_isa})",
                    gate_case.name,
                    gate_case.simd_speedup()
                );
                std::process::exit(1);
            }
            println!(
                "smoke gate passed: {} simd at {:.2}x (>= 3.0x, isa {simd_isa})",
                gate_case.name,
                gate_case.simd_speedup()
            );
        } else {
            println!("smoke gate skipped: simd micro-kernel running portable fallback");
        }
    }
}
