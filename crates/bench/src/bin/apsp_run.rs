//! `apsp-run` — compute APSP for a real graph file on a simulated device,
//! or replay a seeded job trace against the serving scheduler.
//!
//! ```text
//! apsp-run <graph.mtx|graph.gr> [options]
//! apsp-run serve [serve options]
//!
//!   --device v100|k80        device profile          (default v100)
//!   --devices <n>            run the sharded multi-device boundary
//!                            executor across n copies of --device
//!   --fleet <p1,p2,...>      explicit heterogeneous fleet (e.g.
//!                            v100,k80); implies the multi-device path
//!   --memory-mib <n>         override device memory (per device)
//!   --algorithm fw|johnson|boundary   force an implementation
//!   --spill <dir>            disk-backed result store
//!   --checkpoint-dir <dir>   commit crash-safe progress to this directory
//!   --resume                 continue from a checkpoint left in --checkpoint-dir
//!   --scale <s>              apply reproduction scaling rules to the profile
//!   --deadline-ms <n>        abort with a typed error once the simulated
//!                            clock passes this wall-clock budget
//!   --progress-budget-ms <n> declare a stall if no barrier commits within
//!                            this budget (watchdog)
//!   --fallback               on an unrecoverable algorithm failure, mask it
//!                            and re-enter the selector instead of erroring
//!   --sdc-guard off|checksum|full   silent-corruption guard level
//!                            (default off): checksum re-verifies per-panel
//!                            FNV hashes at every barrier, full adds the
//!                            semantic ABFT invariants (zero diagonal, INF
//!                            ceiling, monotone row sums, sampled triangle
//!                            inequality) and arms the recovery ladder
//!   --error-json             on a typed failure, print a single-line JSON
//!                            summary ({"error": <kind>, "detail": ...}) to
//!                            stdout before the nonzero exit, so harnesses
//!                            can distinguish SilentCorruption from, e.g.,
//!                            DeadlineExceeded without scraping stderr
//!   --backend scalar|parallel|simd   host execution backend  (default parallel)
//!   --threads <n>            thread count for the parallel/simd backends
//!                            (default: RAYON_NUM_THREADS or all cores)
//!   --sources <i,j,k>        partial query: compute only these source rows
//!                            through the Johnson batch driver instead of
//!                            the full n × n matrix — k sources move O(k·n),
//!                            not O(n²)
//!   --sample <count>         print this many random distances (default 3)
//!   --verify <rows>          re-derive this many random rows with Dijkstra
//!   --trace                  print the device Gantt chart afterwards
//!   --gantt                  alias for --trace
//!   --metrics-out <path>     enable run telemetry and write the JSONL
//!                            report (phase spans, transfer counters,
//!                            selector calibration) to this file
//!   --calibration-dir <dir>  persist per-device-profile selector
//!                            calibration in this directory: the run
//!                            consults the learned coefficients and folds
//!                            its realized seconds back in at the end
//!   --calibration-report     after the run, print the calibration
//!                            store's per-coefficient summary
//!                            (needs --calibration-dir)
//!
//! serve options:
//!   --seed <n>               trace seed                      (default 0x5EED)
//!   --jobs <n>               jobs to replay                  (default 16)
//!   --graphs <n>             hot-graph pool size             (default 3)
//!   --devices <n>            fleet size                      (default 2)
//!   --device v100|k80        fleet device profile            (default v100)
//!   --memory-mib <n>         per-device memory override      (default 0.5 MiB)
//!   --queue-capacity <n>     admission-queue bound           (default 5)
//!   --cache-capacity <n>     result-cache entries            (default 8)
//!   --checkpoint-root <dir>  keep expired jobs' checkpoints here for
//!                            warm resubmission
//!   --strict                 abort the replay on the first typed service
//!                            rejection, queued cancellation, or job
//!                            failure, exiting with that kind's code
//!   --error-json             with --strict, print the typed kind as a
//!                            single JSON line before the nonzero exit
//!   --metrics-out <path>     write the service telemetry JSONL (one
//!                            "service" summary record + one "job" record
//!                            per job) to this file
//! ```
//!
//! Exit codes (the README table): 0 success, 1 compute failure,
//! 2 usage, 20 `Busy`, 21 `QueueFull`, 22 `JobCancelled`.
//!
//! Drop in a SuiteSparse `.mtx` or a DIMACS `.gr` road network and this
//! runs the paper's full pipeline on it: selector, out-of-core execution,
//! profiler report.

use apsp_core::options::{Algorithm, ExecBackend, SdcGuardMode};
use apsp_core::{apsp, ApspOptions, CheckpointOptions, StorageBackend, SupervisionOptions};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::io::{read_matrix_market, WeightMode};
use apsp_graph::io_dimacs::read_dimacs;
use apsp_graph::CsrGraph;
use std::path::PathBuf;

struct Args {
    path: PathBuf,
    device: String,
    devices: Option<usize>,
    fleet: Option<String>,
    memory_mib: Option<u64>,
    algorithm: Option<Algorithm>,
    spill: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    scale: Option<usize>,
    deadline_ms: Option<u64>,
    progress_budget_ms: Option<u64>,
    fallback: bool,
    sdc_guard: SdcGuardMode,
    error_json: bool,
    backend: String,
    threads: Option<usize>,
    sources: Option<Vec<usize>>,
    sample: usize,
    verify: usize,
    trace: bool,
    metrics_out: Option<PathBuf>,
    calibration_dir: Option<PathBuf>,
    calibration_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: PathBuf::new(),
        device: "v100".into(),
        devices: None,
        fleet: None,
        memory_mib: None,
        algorithm: None,
        spill: None,
        checkpoint_dir: None,
        resume: false,
        scale: None,
        deadline_ms: None,
        progress_budget_ms: None,
        fallback: false,
        sdc_guard: SdcGuardMode::Off,
        error_json: false,
        backend: "parallel".into(),
        threads: None,
        sources: None,
        sample: 3,
        verify: 0,
        trace: false,
        metrics_out: None,
        calibration_dir: None,
        calibration_report: false,
    };
    let mut it = std::env::args().skip(1);
    let mut got_path = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--device" => args.device = it.next().ok_or("--device needs a value")?,
            "--devices" => {
                args.devices = Some(
                    it.next()
                        .ok_or("--devices needs a value")?
                        .parse()
                        .map_err(|_| "bad --devices")?,
                )
            }
            "--fleet" => args.fleet = Some(it.next().ok_or("--fleet needs a value")?),
            "--memory-mib" => {
                args.memory_mib = Some(
                    it.next()
                        .ok_or("--memory-mib needs a value")?
                        .parse()
                        .map_err(|_| "bad --memory-mib")?,
                )
            }
            "--algorithm" => {
                args.algorithm = Some(
                    match it.next().ok_or("--algorithm needs a value")?.as_str() {
                        "fw" => Algorithm::FloydWarshall,
                        "johnson" => Algorithm::Johnson,
                        "boundary" => Algorithm::Boundary,
                        other => return Err(format!("unknown algorithm '{other}'")),
                    },
                )
            }
            "--spill" => {
                args.spill = Some(PathBuf::from(it.next().ok_or("--spill needs a value")?))
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-dir needs a value")?,
                ))
            }
            "--resume" => args.resume = true,
            "--scale" => {
                args.scale = Some(
                    it.next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|_| "bad --scale")?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms")?,
                )
            }
            "--progress-budget-ms" => {
                args.progress_budget_ms = Some(
                    it.next()
                        .ok_or("--progress-budget-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --progress-budget-ms")?,
                )
            }
            "--fallback" => args.fallback = true,
            "--sdc-guard" => {
                args.sdc_guard = it
                    .next()
                    .ok_or("--sdc-guard needs a value")?
                    .parse()
                    .map_err(|_| "bad --sdc-guard (want off|checksum|full)")?
            }
            "--error-json" => args.error_json = true,
            "--backend" => match it.next().ok_or("--backend needs a value")?.as_str() {
                b @ ("scalar" | "parallel" | "simd") => args.backend = b.into(),
                other => return Err(format!("unknown backend '{other}'")),
            },
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "bad --threads")?,
                )
            }
            "--sources" => {
                let list = it.next().ok_or("--sources needs a comma-separated list")?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                args.sources =
                    Some(parsed.map_err(|_| "bad --sources (want e.g. 0,5,17)".to_string())?);
            }
            "--sample" => {
                args.sample = it
                    .next()
                    .ok_or("--sample needs a value")?
                    .parse()
                    .map_err(|_| "bad --sample")?
            }
            "--verify" => {
                args.verify = it
                    .next()
                    .ok_or("--verify needs a value")?
                    .parse()
                    .map_err(|_| "bad --verify")?
            }
            "--trace" | "--gantt" => args.trace = true,
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a value")?,
                ))
            }
            "--calibration-dir" => {
                args.calibration_dir = Some(PathBuf::from(
                    it.next().ok_or("--calibration-dir needs a value")?,
                ))
            }
            "--calibration-report" => args.calibration_report = true,
            other if !got_path && !other.starts_with("--") => {
                args.path = PathBuf::from(other);
                got_path = true;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if !got_path {
        return Err("missing graph file".into());
    }
    if args.resume && args.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }
    if args.backend == "scalar" && args.threads.is_some() {
        return Err("--threads only applies to --backend parallel|simd".into());
    }
    if args.calibration_report && args.calibration_dir.is_none() {
        return Err("--calibration-report needs --calibration-dir".into());
    }
    if args.sources.is_some()
        && (args.spill.is_some()
            || args.checkpoint_dir.is_some()
            || args.metrics_out.is_some()
            || args.calibration_dir.is_some()
            || args.verify > 0)
    {
        return Err(
            "--sources is a partial query: it has no result store, so --spill, \
             --checkpoint-dir, --metrics-out, --calibration-dir and --verify do not apply"
                .into(),
        );
    }
    if args.devices == Some(0) {
        return Err("--devices must be positive".into());
    }
    if args.devices.is_some() || args.fleet.is_some() {
        if !matches!(args.algorithm, None | Some(Algorithm::Boundary)) {
            return Err("the multi-device path runs the boundary algorithm only".into());
        }
        if args.sources.is_some() {
            return Err("--sources routes through Johnson — it has no multi-device path".into());
        }
        if args.calibration_dir.is_some() || args.calibration_report {
            return Err("selector calibration does not apply to a forced multi-device run".into());
        }
        if args.fallback {
            return Err(
                "--fallback re-enters the selector, which the multi-device path bypasses".into(),
            );
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn load(path: &PathBuf) -> Result<CsrGraph, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => read_matrix_market(path, WeightMode::ScaledAbs { scale: 1.0 })
            .map_err(|e| e.to_string()),
        Some("gr") => read_dimacs(path).map_err(|e| e.to_string()),
        _ => Err("unsupported extension (want .mtx or .gr)".into()),
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        serve_main();
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nusage: apsp-run <graph.mtx|graph.gr> [--device v100|k80] [--devices n] [--fleet p1,p2,...] [--memory-mib n] [--algorithm fw|johnson|boundary] [--spill dir] [--checkpoint-dir dir] [--resume] [--scale s] [--deadline-ms n] [--progress-budget-ms n] [--fallback] [--sdc-guard off|checksum|full] [--error-json] [--backend scalar|parallel|simd] [--threads n] [--sample n] [--trace|--gantt] [--metrics-out path] [--calibration-dir dir] [--calibration-report]");
            std::process::exit(2);
        }
    };
    let graph = match load(&args.path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args.path.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: n = {}, m = {}, density = {:.4}%",
        args.path.display(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.density() * 100.0
    );

    let mut profile = match args.device.as_str() {
        "v100" => DeviceProfile::v100(),
        "k80" => DeviceProfile::k80(),
        other => {
            eprintln!("unknown device '{other}'");
            std::process::exit(2);
        }
    };
    if let Some(s) = args.scale {
        profile = profile.scaled_for_reproduction(s);
    }
    if let Some(mib) = args.memory_mib {
        profile = profile.with_memory_bytes(mib << 20);
    }
    if args.devices.is_some() || args.fleet.is_some() {
        run_multi(&graph, &profile, &args);
        return;
    }
    println!(
        "device: {} ({} MiB)",
        profile.name,
        profile.memory_bytes >> 20
    );

    let mut dev = GpuDevice::new(profile);
    if args.trace {
        dev.enable_trace();
    }
    let exec = match args.backend.as_str() {
        "scalar" => ExecBackend::scalar(),
        "simd" => ExecBackend::Simd {
            threads: args.threads,
        },
        _ => ExecBackend::Parallel {
            threads: args.threads,
        },
    };
    let opts = ApspOptions {
        algorithm: args.algorithm,
        exec,
        storage: match &args.spill {
            Some(dir) => StorageBackend::Disk(dir.clone()),
            None => StorageBackend::Memory,
        },
        checkpoint: args.checkpoint_dir.as_ref().map(|dir| CheckpointOptions {
            dir: dir.clone(),
            resume: args.resume,
        }),
        supervision: SupervisionOptions {
            deadline_ms: args.deadline_ms,
            progress_budget_ms: args.progress_budget_ms,
            fallback: args.fallback,
            ..Default::default()
        },
        telemetry: args.metrics_out.is_some(),
        calibration_dir: args.calibration_dir.clone(),
        sdc_guard: args.sdc_guard,
        ..Default::default()
    };
    if args.sdc_guard.is_on() {
        println!("sdc guard: {}", args.sdc_guard);
    }
    if let Some(dir) = &args.calibration_dir {
        println!("calibrating selector against {}", dir.display());
    }
    if let Some(dir) = &args.checkpoint_dir {
        println!(
            "checkpointing to {} ({})",
            dir.display(),
            if args.resume {
                "resuming if a run is in flight"
            } else {
                "starting fresh"
            }
        );
    }
    if let Some(srcs) = &args.sources {
        run_partial_query(&graph, &mut dev, &opts, srcs, &args);
        return;
    }
    let result = match apsp(&graph, &mut dev, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("apsp failed: {e}");
            if args.error_json {
                // One machine-readable line on stdout: the typed kind
                // (e.g. "SilentCorruption" vs "DeadlineExceeded" vs
                // "Corruption") plus the human detail, JSON-escaped.
                println!(
                    "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                    e.kind().as_str(),
                    json_escape(&e.to_string())
                );
            }
            std::process::exit(1);
        }
    };
    println!("algorithm: {}", result.algorithm);
    println!("backend: {exec} ({} thread(s))", exec.resolved_threads());
    if let Some(sel) = &result.selection {
        for c in &sel.candidates {
            match (c.estimate, &c.filter_reason) {
                (Some(est), _) => println!("  estimate {}: {est:.6} s", c.algorithm),
                (None, Some(reason)) => println!("  estimate {}: filtered ({reason})", c.algorithm),
                (None, None) => println!("  estimate {}: unavailable", c.algorithm),
            }
        }
    }
    for fb in &result.fallback_events {
        println!(
            "fallback: {} -> {} after {:?} ({}) at {:.6} s",
            fb.from, fb.to, fb.error_kind, fb.detail, fb.sim_seconds
        );
    }
    println!("simulated time: {:.6} s", result.sim_seconds);
    let r = &result.report;
    println!(
        "transfers: {:.1} MiB D2H in {} calls, {:.1} MiB H2D in {} calls; peak device memory {:.1} MiB",
        r.bytes_d2h as f64 / (1 << 20) as f64,
        r.transfers_d2h,
        r.bytes_h2d as f64 / (1 << 20) as f64,
        r.transfers_h2d,
        r.peak_memory as f64 / (1 << 20) as f64,
    );

    // Deterministic pseudo-random distance samples.
    let n = graph.num_vertices();
    let mut state = 0x5EEDu64;
    for _ in 0..args.sample {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let i = (state as usize) % n;
        let j = (state >> 32) as usize % n;
        match result.store.get(i, j) {
            Ok(d) if d < apsp_graph::INF => println!("dist({i}, {j}) = {d}"),
            Ok(_) => println!("dist({i}, {j}) = unreachable"),
            Err(e) => println!("dist({i}, {j}) read failed: {e}"),
        }
    }
    if args.verify > 0 {
        match apsp_core::verify::verify_rows(&graph, &result.store, args.verify, 0xC0FFEE) {
            Ok(v) if v.is_verified() => println!("verification: {v:?}"),
            Ok(v) => {
                eprintln!("VERIFICATION FAILED: {v:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("verification read error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        let report = result
            .telemetry
            .as_ref()
            .expect("telemetry was enabled for --metrics-out");
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "metrics: {} record(s) written to {}",
            report.to_jsonl().lines().count(),
            path.display()
        );
    }
    if args.calibration_report {
        let dir = args.calibration_dir.as_ref().unwrap();
        match apsp_core::CalibrationStore::open(dir, dev.profile()) {
            Ok(store) => print!("{}", store.report()),
            Err(e) => {
                eprintln!("failed to read calibration store: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.trace {
        println!("\ndevice timeline:");
        print!("{}", apsp_gpu_sim::trace::render_gantt(dev.trace(), 100));
    }
}

/// The `--devices`/`--fleet` path: the sharded multi-device boundary
/// executor over a (possibly heterogeneous) simulated fleet, with the
/// same checkpoint, supervision, spill, telemetry, sampling, and
/// verification plumbing as the single-device run.
fn run_multi(graph: &CsrGraph, base_profile: &DeviceProfile, args: &Args) {
    use apsp_core::{ooc_boundary_multi_checkpointed_supervised, ooc_boundary_multi_supervised};
    use apsp_core::{parse_fleet, BoundaryOptions, Checkpoint, Supervisor, TileStore};

    let profiles: Vec<DeviceProfile> = match &args.fleet {
        Some(spec) => {
            let fleet = match parse_fleet(spec) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("bad --fleet: {e}");
                    std::process::exit(2);
                }
            };
            if let Some(d) = args.devices {
                if d != fleet.len() {
                    eprintln!(
                        "--devices {d} contradicts --fleet ({} device(s)); drop one",
                        fleet.len()
                    );
                    std::process::exit(2);
                }
            }
            fleet
                .into_iter()
                .map(|mut p| {
                    if let Some(s) = args.scale {
                        p = p.scaled_for_reproduction(s);
                    }
                    if let Some(mib) = args.memory_mib {
                        p = p.with_memory_bytes(mib << 20);
                    }
                    p
                })
                .collect()
        }
        // `base_profile` already carries --scale and --memory-mib.
        None => vec![base_profile.clone(); args.devices.unwrap_or(1)],
    };
    for (d, p) in profiles.iter().enumerate() {
        println!("device {d}: {} ({} MiB)", p.name, p.memory_bytes >> 20);
    }
    let mut devs: Vec<GpuDevice> = profiles.iter().map(|p| GpuDevice::new(p.clone())).collect();
    if args.trace {
        for dev in &mut devs {
            dev.enable_trace();
        }
    }

    let exec = match args.backend.as_str() {
        "scalar" => ExecBackend::scalar(),
        "simd" => ExecBackend::Simd {
            threads: args.threads,
        },
        _ => ExecBackend::Parallel {
            threads: args.threads,
        },
    };
    let telemetry = if args.metrics_out.is_some() {
        apsp_core::telemetry::Telemetry::enabled()
    } else {
        apsp_core::telemetry::Telemetry::disabled()
    };
    let sup = Supervisor::with_telemetry(
        &SupervisionOptions {
            deadline_ms: args.deadline_ms,
            progress_budget_ms: args.progress_budget_ms,
            ..Default::default()
        },
        0.0,
        telemetry.clone(),
    );
    let n = graph.num_vertices();
    let storage = match &args.spill {
        Some(dir) => StorageBackend::Disk(dir.clone()),
        None => StorageBackend::Memory,
    };
    let mut store = match TileStore::new(n, &storage) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to open the result store: {e}");
            std::process::exit(1);
        }
    };
    store.set_exec_backend(exec);
    store.set_supervision(sup.clone());
    let opts = BoundaryOptions {
        exec,
        sdc_guard: args.sdc_guard,
        ..Default::default()
    };
    if args.sdc_guard.is_on() {
        println!("sdc guard: {}", args.sdc_guard);
    }

    let run = match &args.checkpoint_dir {
        Some(dir) => {
            println!(
                "checkpointing to {} ({})",
                dir.display(),
                if args.resume {
                    "resuming if a run is in flight"
                } else {
                    "starting fresh"
                }
            );
            let ckpt = match Checkpoint::new(dir, graph) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("failed to open the checkpoint directory: {e}");
                    std::process::exit(1);
                }
            };
            if !args.resume {
                if let Err(e) = ckpt.clear() {
                    eprintln!("failed to clear a stale checkpoint: {e}");
                    std::process::exit(1);
                }
            }
            ooc_boundary_multi_checkpointed_supervised(
                &mut devs, graph, &mut store, &opts, &ckpt, &sup,
            )
        }
        None => ooc_boundary_multi_supervised(&mut devs, graph, &mut store, &opts, &sup),
    };
    let stats = match run {
        Ok(s) => s,
        Err(e) => {
            eprintln!("apsp failed: {e}");
            if args.error_json {
                println!(
                    "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                    e.kind().as_str(),
                    json_escape(&e.to_string())
                );
            }
            std::process::exit(1);
        }
    };

    println!("algorithm: boundary ({} device(s))", stats.num_devices);
    println!("backend: {exec} ({} thread(s))", exec.resolved_threads());
    println!(
        "partition: {} component(s), {} boundary vertices; dist2 placement {:?}, {} dist4 panel(s) stolen",
        stats.num_components, stats.total_boundary, stats.placement, stats.stolen_panels
    );
    println!(
        "phases: dist2 {:.6} s, dist3 {:.6} s, dist4 {:.6} s",
        stats.phase_seconds[0], stats.phase_seconds[1], stats.phase_seconds[2]
    );
    println!("simulated makespan: {:.6} s", stats.sim_seconds);

    // The fleet-wide profiling snapshot: counters sum across devices,
    // the makespan and peak memory are maxima.
    let merged =
        devs.iter()
            .map(|d| d.report())
            .fold(apsp_gpu_sim::SimReport::default(), |mut acc, r| {
                for (name, k) in &r.kernels {
                    let e = acc.kernels.entry(name.clone()).or_default();
                    e.launches += k.launches;
                    e.seconds += k.seconds;
                }
                acc.bytes_h2d += r.bytes_h2d;
                acc.bytes_d2h += r.bytes_d2h;
                acc.transfers_h2d += r.transfers_h2d;
                acc.transfers_d2h += r.transfers_d2h;
                acc.compute_busy += r.compute_busy;
                acc.h2d_busy += r.h2d_busy;
                acc.d2h_busy += r.d2h_busy;
                acc.elapsed = acc.elapsed.max(r.elapsed);
                acc.peak_memory = acc.peak_memory.max(r.peak_memory);
                acc.allocations += r.allocations;
                acc
            });
    println!(
        "transfers: {:.1} MiB D2H in {} calls, {:.1} MiB H2D in {} calls; peak device memory {:.1} MiB",
        merged.bytes_d2h as f64 / (1 << 20) as f64,
        merged.transfers_d2h,
        merged.bytes_h2d as f64 / (1 << 20) as f64,
        merged.transfers_h2d,
        merged.peak_memory as f64 / (1 << 20) as f64,
    );

    let mut state = 0x5EEDu64;
    for _ in 0..args.sample {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let i = (state as usize) % n;
        let j = (state >> 32) as usize % n;
        match store.get(i, j) {
            Ok(d) if d < apsp_graph::INF => println!("dist({i}, {j}) = {d}"),
            Ok(_) => println!("dist({i}, {j}) = unreachable"),
            Err(e) => println!("dist({i}, {j}) read failed: {e}"),
        }
    }
    if args.verify > 0 {
        match apsp_core::verify::verify_rows(graph, &store, args.verify, 0xC0FFEE) {
            Ok(v) if v.is_verified() => println!("verification: {v:?}"),
            Ok(v) => {
                eprintln!("VERIFICATION FAILED: {v:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("verification read error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        let report = telemetry
            .build_report(
                "boundary",
                exec.name(),
                stats.sim_seconds,
                &merged,
                &[],
                &sup.events(),
                stats.retries as u64,
                stats.checkpoint_commits as u64,
            )
            .expect("telemetry was enabled for --metrics-out");
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "metrics: {} record(s) written to {}",
            report.to_jsonl().lines().count(),
            path.display()
        );
    }
    if args.trace {
        for (d, dev) in devs.iter().enumerate() {
            println!("\ndevice {d} timeline:");
            print!("{}", apsp_gpu_sim::trace::render_gantt(dev.trace(), 100));
        }
    }
}

/// The `--sources` path: k rows through the Johnson batch driver —
/// `O(k·n)` data movement instead of the full matrix's `O(n²)`.
fn run_partial_query(
    graph: &CsrGraph,
    dev: &mut GpuDevice,
    opts: &ApspOptions,
    srcs: &[usize],
    args: &Args,
) {
    let n = graph.num_vertices();
    if let Some(&bad) = srcs.iter().find(|&&s| s >= n) {
        eprintln!("--sources: source {bad} out of range (n = {n})");
        std::process::exit(2);
    }
    let sources: Vec<apsp_graph::VertexId> =
        srcs.iter().map(|&s| s as apsp_graph::VertexId).collect();
    let jopts = apsp_core::JohnsonOptions {
        exec: opts.exec,
        sdc_guard: opts.sdc_guard,
        ..Default::default()
    };
    let sup = apsp_core::Supervisor::new(&opts.supervision, dev.elapsed().seconds());
    let (rows, stats) =
        match apsp_core::ooc_johnson::ooc_johnson_sources(dev, graph, &sources, &jopts, &sup) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("partial query failed: {e}");
                if args.error_json {
                    println!(
                        "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                        e.kind().as_str(),
                        json_escape(&e.to_string())
                    );
                }
                std::process::exit(1);
            }
        };
    println!(
        "partial query: {} source row(s) in {} Johnson batch(es) of {} — \
         moved O(k·n), not O(n²)",
        sources.len(),
        stats.num_batches,
        stats.batch_size,
    );
    println!("simulated time: {:.6} s", dev.elapsed().seconds());
    for (ri, &s) in sources.iter().enumerate() {
        let row = &rows[ri * n..(ri + 1) * n];
        let reachable = row.iter().filter(|&&d| d < apsp_graph::INF).count();
        let far = row
            .iter()
            .enumerate()
            .filter(|(_, &d)| d < apsp_graph::INF)
            .max_by_key(|(_, &d)| d);
        match far {
            Some((j, &d)) => println!(
                "  source {s}: {reachable}/{n} reachable, eccentricity dist({s}, {j}) = {d}"
            ),
            None => println!("  source {s}: nothing reachable"),
        }
    }
    if args.trace {
        println!("\ndevice timeline:");
        print!("{}", apsp_gpu_sim::trace::render_gantt(dev.trace(), 100));
    }
}

struct ServeArgs {
    seed: u64,
    jobs: usize,
    graphs: usize,
    devices: usize,
    device: String,
    memory_mib: Option<u64>,
    queue_capacity: usize,
    cache_capacity: usize,
    checkpoint_root: Option<PathBuf>,
    strict: bool,
    error_json: bool,
    metrics_out: Option<PathBuf>,
}

fn parse_serve_args() -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        seed: 0x5EED,
        jobs: 16,
        graphs: 3,
        devices: 2,
        device: "v100".into(),
        memory_mib: None,
        queue_capacity: 5,
        cache_capacity: 8,
        checkpoint_root: None,
        strict: false,
        error_json: false,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let num = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<u64, String> {
            it.next()
                .ok_or(format!("{flag} needs a value"))?
                .parse()
                .map_err(|_| format!("bad {flag}"))
        };
        match a.as_str() {
            "--seed" => args.seed = num("--seed", &mut it)?,
            "--jobs" => args.jobs = num("--jobs", &mut it)? as usize,
            "--graphs" => args.graphs = num("--graphs", &mut it)? as usize,
            "--devices" => args.devices = num("--devices", &mut it)? as usize,
            "--device" => args.device = it.next().ok_or("--device needs a value")?,
            "--memory-mib" => args.memory_mib = Some(num("--memory-mib", &mut it)?),
            "--queue-capacity" => args.queue_capacity = num("--queue-capacity", &mut it)? as usize,
            "--cache-capacity" => args.cache_capacity = num("--cache-capacity", &mut it)? as usize,
            "--checkpoint-root" => {
                args.checkpoint_root = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-root needs a value")?,
                ))
            }
            "--strict" => args.strict = true,
            "--error-json" => args.error_json = true,
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a value")?,
                ))
            }
            other => return Err(format!("unexpected serve argument '{other}'")),
        }
    }
    if args.jobs == 0 || args.devices == 0 || args.queue_capacity == 0 {
        return Err("--jobs, --devices and --queue-capacity must be positive".into());
    }
    Ok(args)
}

/// Print the typed service error and exit with its distinct code
/// (`--strict` mode's abort path).
fn serve_fail(kind: apsp_core::ServiceErrorKind, detail: &str, error_json: bool) -> ! {
    eprintln!("serve: {detail}");
    if error_json {
        println!(
            "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
            kind.as_str(),
            json_escape(detail)
        );
    }
    std::process::exit(kind.exit_code());
}

/// `apsp-run serve`: replay a seeded job trace — full and k-source
/// partial queries over a hot-graph pool, with faults, tight deadlines,
/// queue overload, and queued cancellations — against [`ApspService`].
fn serve_main() {
    use apsp_core::service::trace::{self, TraceConfig};
    use apsp_core::{ApspService, JobState, ServiceConfig, ServiceErrorKind};

    let args = match parse_serve_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: apsp-run serve [--seed n] [--jobs n] [--graphs n] \
                 [--devices n] [--device v100|k80] [--memory-mib n] [--queue-capacity n] \
                 [--cache-capacity n] [--checkpoint-root dir] [--strict] [--error-json] \
                 [--metrics-out path]"
            );
            std::process::exit(2);
        }
    };
    let mut profile = match args.device.as_str() {
        "v100" => DeviceProfile::v100(),
        "k80" => DeviceProfile::k80(),
        other => {
            eprintln!("unknown device '{other}'");
            std::process::exit(2);
        }
    };
    // Small fleet memory by default so full jobs batch (and can be
    // overtaken by deadlines) at trace-pool graph sizes.
    profile = profile.with_memory_bytes(args.memory_mib.map_or(512 << 10, |mib| mib << 20));

    let trace_cfg = TraceConfig {
        seed: args.seed,
        jobs: args.jobs,
        graphs: args.graphs.max(1),
        ..TraceConfig::default()
    };
    let jobs = trace::seeded_jobs(&trace_cfg);
    let mut svc = ApspService::new(ServiceConfig {
        devices: vec![profile.clone(); args.devices],
        queue_capacity: args.queue_capacity,
        cache_capacity: args.cache_capacity,
        checkpoint_root: args.checkpoint_root.clone(),
        admission_control: true,
    });
    println!(
        "serving {} job(s) (seed {:#x}) over {} × {} ({} KiB), queue bound {}, cache {}",
        jobs.len(),
        args.seed,
        args.devices,
        profile.name,
        profile.memory_bytes >> 10,
        args.queue_capacity,
        args.cache_capacity,
    );

    // Wave 1: submit everything, pumping every third submit so the
    // queue churns; cancel the trace's flagged jobs while still queued.
    let mut handles: Vec<Option<apsp_core::JobId>> = Vec::with_capacity(jobs.len());
    for (i, tj) in jobs.iter().enumerate() {
        match svc.submit(tj.request.clone()) {
            Ok(id) => {
                if tj.cancel_while_queued {
                    let _ = svc.cancel(id);
                    if args.strict {
                        serve_fail(
                            ServiceErrorKind::JobCancelled,
                            &format!("trace job {i} cancelled while queued"),
                            args.error_json,
                        );
                    }
                }
                handles.push(Some(id));
            }
            Err(e) => {
                if args.strict {
                    serve_fail(
                        e.kind(),
                        &format!("trace job {i} rejected: {e}"),
                        args.error_json,
                    );
                }
                let hint = e
                    .retry_after_ms()
                    .map_or(String::new(), |ms| format!(" (retry after ~{ms} ms)"));
                println!("job --- rejected typed {}{hint}", e.kind().as_str());
                handles.push(None);
            }
        }
        if i % 3 == 2 {
            svc.pump_one();
        }
    }
    svc.run_until_idle();
    // Wave 2: honour the retry hints against the drained queue.
    for (i, tj) in jobs.iter().enumerate() {
        if handles[i].is_none() {
            handles[i] = svc.submit(tj.request.clone()).ok();
        }
    }
    svc.run_until_idle();

    for (i, tj) in jobs.iter().enumerate() {
        let kind = match &tj.request.spec {
            apsp_core::JobSpec::Full => "full".to_string(),
            apsp_core::JobSpec::Sources(s) => format!("sources[{}]", s.len()),
        };
        let Some(id) = handles[i] else {
            println!("job {i:>3} {kind:<11} rejected on both admission attempts");
            continue;
        };
        match svc.state(id) {
            Some(JobState::Completed(done)) => println!(
                "job {i:>3} {kind:<11} completed{} in {:.6} s (queued {:.6} s)",
                if done.from_cache { " (cache)" } else { "" },
                done.sim_seconds,
                done.queue_wait_s,
            ),
            Some(JobState::Failed(fj)) => {
                println!(
                    "job {i:>3} {kind:<11} failed typed {:?}{}",
                    fj.kind,
                    if fj.checkpoint_kept {
                        " — checkpoint kept for warm resubmission"
                    } else {
                        ""
                    },
                );
                if args.strict {
                    serve_fail(
                        ServiceErrorKind::Compute(fj.kind),
                        &format!("trace job {i} failed: {}", fj.detail),
                        args.error_json,
                    );
                }
            }
            Some(JobState::Cancelled { .. }) => {
                println!("job {i:>3} {kind:<11} cancelled while queued");
            }
            Some(JobState::Queued) | None => {
                eprintln!("serve: job {i} never reached a terminal state — a hang");
                std::process::exit(1);
            }
        }
    }
    let c = svc.counters();
    println!(
        "service: {} submitted, {} admitted, {} completed, {} failed, {} expired, \
         {} cancelled, {} rejected (busy {}, queue-full {}), cache {}/{} hit/miss \
         ({} evicted, {} corrupt-evicted), {:.6} simulated s",
        c.submitted,
        c.admitted,
        c.completed,
        c.failed,
        c.expired,
        c.cancelled,
        c.rejected_busy + c.rejected_queue_full,
        c.rejected_busy,
        c.rejected_queue_full,
        c.cache_hits,
        c.cache_misses,
        c.cache_evictions,
        c.cache_corrupt_evictions,
        svc.now_s(),
    );
    if let Some(path) = &args.metrics_out {
        let jsonl = svc.to_jsonl();
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "metrics: {} record(s) written to {}",
            jsonl.lines().count(),
            path.display()
        );
    }
}
