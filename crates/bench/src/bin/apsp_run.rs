//! `apsp-run` — compute APSP for a real graph file on a simulated device.
//!
//! ```text
//! apsp-run <graph.mtx|graph.gr> [options]
//!
//!   --device v100|k80        device profile          (default v100)
//!   --memory-mib <n>         override device memory
//!   --algorithm fw|johnson|boundary   force an implementation
//!   --spill <dir>            disk-backed result store
//!   --checkpoint-dir <dir>   commit crash-safe progress to this directory
//!   --resume                 continue from a checkpoint left in --checkpoint-dir
//!   --scale <s>              apply reproduction scaling rules to the profile
//!   --deadline-ms <n>        abort with a typed error once the simulated
//!                            clock passes this wall-clock budget
//!   --progress-budget-ms <n> declare a stall if no barrier commits within
//!                            this budget (watchdog)
//!   --fallback               on an unrecoverable algorithm failure, mask it
//!                            and re-enter the selector instead of erroring
//!   --sdc-guard off|checksum|full   silent-corruption guard level
//!                            (default off): checksum re-verifies per-panel
//!                            FNV hashes at every barrier, full adds the
//!                            semantic ABFT invariants (zero diagonal, INF
//!                            ceiling, monotone row sums, sampled triangle
//!                            inequality) and arms the recovery ladder
//!   --error-json             on a typed failure, print a single-line JSON
//!                            summary ({"error": <kind>, "detail": ...}) to
//!                            stdout before the nonzero exit, so harnesses
//!                            can distinguish SilentCorruption from, e.g.,
//!                            DeadlineExceeded without scraping stderr
//!   --backend scalar|parallel   host execution backend  (default parallel)
//!   --threads <n>            thread count for the parallel backend
//!                            (default: RAYON_NUM_THREADS or all cores)
//!   --sample <count>         print this many random distances (default 3)
//!   --verify <rows>          re-derive this many random rows with Dijkstra
//!   --trace                  print the device Gantt chart afterwards
//!   --gantt                  alias for --trace
//!   --metrics-out <path>     enable run telemetry and write the JSONL
//!                            report (phase spans, transfer counters,
//!                            selector calibration) to this file
//!   --calibration-dir <dir>  persist per-device-profile selector
//!                            calibration in this directory: the run
//!                            consults the learned coefficients and folds
//!                            its realized seconds back in at the end
//!   --calibration-report     after the run, print the calibration
//!                            store's per-coefficient summary
//!                            (needs --calibration-dir)
//! ```
//!
//! Drop in a SuiteSparse `.mtx` or a DIMACS `.gr` road network and this
//! runs the paper's full pipeline on it: selector, out-of-core execution,
//! profiler report.

use apsp_core::options::{Algorithm, ExecBackend, SdcGuardMode};
use apsp_core::{apsp, ApspOptions, CheckpointOptions, StorageBackend, SupervisionOptions};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::io::{read_matrix_market, WeightMode};
use apsp_graph::io_dimacs::read_dimacs;
use apsp_graph::CsrGraph;
use std::path::PathBuf;

struct Args {
    path: PathBuf,
    device: String,
    memory_mib: Option<u64>,
    algorithm: Option<Algorithm>,
    spill: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    scale: Option<usize>,
    deadline_ms: Option<u64>,
    progress_budget_ms: Option<u64>,
    fallback: bool,
    sdc_guard: SdcGuardMode,
    error_json: bool,
    backend_scalar: bool,
    threads: Option<usize>,
    sample: usize,
    verify: usize,
    trace: bool,
    metrics_out: Option<PathBuf>,
    calibration_dir: Option<PathBuf>,
    calibration_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: PathBuf::new(),
        device: "v100".into(),
        memory_mib: None,
        algorithm: None,
        spill: None,
        checkpoint_dir: None,
        resume: false,
        scale: None,
        deadline_ms: None,
        progress_budget_ms: None,
        fallback: false,
        sdc_guard: SdcGuardMode::Off,
        error_json: false,
        backend_scalar: false,
        threads: None,
        sample: 3,
        verify: 0,
        trace: false,
        metrics_out: None,
        calibration_dir: None,
        calibration_report: false,
    };
    let mut it = std::env::args().skip(1);
    let mut got_path = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--device" => args.device = it.next().ok_or("--device needs a value")?,
            "--memory-mib" => {
                args.memory_mib = Some(
                    it.next()
                        .ok_or("--memory-mib needs a value")?
                        .parse()
                        .map_err(|_| "bad --memory-mib")?,
                )
            }
            "--algorithm" => {
                args.algorithm = Some(
                    match it.next().ok_or("--algorithm needs a value")?.as_str() {
                        "fw" => Algorithm::FloydWarshall,
                        "johnson" => Algorithm::Johnson,
                        "boundary" => Algorithm::Boundary,
                        other => return Err(format!("unknown algorithm '{other}'")),
                    },
                )
            }
            "--spill" => {
                args.spill = Some(PathBuf::from(it.next().ok_or("--spill needs a value")?))
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-dir needs a value")?,
                ))
            }
            "--resume" => args.resume = true,
            "--scale" => {
                args.scale = Some(
                    it.next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|_| "bad --scale")?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --deadline-ms")?,
                )
            }
            "--progress-budget-ms" => {
                args.progress_budget_ms = Some(
                    it.next()
                        .ok_or("--progress-budget-ms needs a value")?
                        .parse()
                        .map_err(|_| "bad --progress-budget-ms")?,
                )
            }
            "--fallback" => args.fallback = true,
            "--sdc-guard" => {
                args.sdc_guard = it
                    .next()
                    .ok_or("--sdc-guard needs a value")?
                    .parse()
                    .map_err(|_| "bad --sdc-guard (want off|checksum|full)")?
            }
            "--error-json" => args.error_json = true,
            "--backend" => match it.next().ok_or("--backend needs a value")?.as_str() {
                "scalar" => args.backend_scalar = true,
                "parallel" => args.backend_scalar = false,
                other => return Err(format!("unknown backend '{other}'")),
            },
            "--threads" => {
                args.threads = Some(
                    it.next()
                        .ok_or("--threads needs a value")?
                        .parse()
                        .map_err(|_| "bad --threads")?,
                )
            }
            "--sample" => {
                args.sample = it
                    .next()
                    .ok_or("--sample needs a value")?
                    .parse()
                    .map_err(|_| "bad --sample")?
            }
            "--verify" => {
                args.verify = it
                    .next()
                    .ok_or("--verify needs a value")?
                    .parse()
                    .map_err(|_| "bad --verify")?
            }
            "--trace" | "--gantt" => args.trace = true,
            "--metrics-out" => {
                args.metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a value")?,
                ))
            }
            "--calibration-dir" => {
                args.calibration_dir = Some(PathBuf::from(
                    it.next().ok_or("--calibration-dir needs a value")?,
                ))
            }
            "--calibration-report" => args.calibration_report = true,
            other if !got_path && !other.starts_with("--") => {
                args.path = PathBuf::from(other);
                got_path = true;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if !got_path {
        return Err("missing graph file".into());
    }
    if args.resume && args.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }
    if args.backend_scalar && args.threads.is_some() {
        return Err("--threads only applies to --backend parallel".into());
    }
    if args.calibration_report && args.calibration_dir.is_none() {
        return Err("--calibration-report needs --calibration-dir".into());
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn load(path: &PathBuf) -> Result<CsrGraph, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => read_matrix_market(path, WeightMode::ScaledAbs { scale: 1.0 })
            .map_err(|e| e.to_string()),
        Some("gr") => read_dimacs(path).map_err(|e| e.to_string()),
        _ => Err("unsupported extension (want .mtx or .gr)".into()),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nusage: apsp-run <graph.mtx|graph.gr> [--device v100|k80] [--memory-mib n] [--algorithm fw|johnson|boundary] [--spill dir] [--checkpoint-dir dir] [--resume] [--scale s] [--deadline-ms n] [--progress-budget-ms n] [--fallback] [--sdc-guard off|checksum|full] [--error-json] [--backend scalar|parallel] [--threads n] [--sample n] [--trace|--gantt] [--metrics-out path] [--calibration-dir dir] [--calibration-report]");
            std::process::exit(2);
        }
    };
    let graph = match load(&args.path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args.path.display());
            std::process::exit(1);
        }
    };
    println!(
        "loaded {}: n = {}, m = {}, density = {:.4}%",
        args.path.display(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.density() * 100.0
    );

    let mut profile = match args.device.as_str() {
        "v100" => DeviceProfile::v100(),
        "k80" => DeviceProfile::k80(),
        other => {
            eprintln!("unknown device '{other}'");
            std::process::exit(2);
        }
    };
    if let Some(s) = args.scale {
        profile = profile.scaled_for_reproduction(s);
    }
    if let Some(mib) = args.memory_mib {
        profile = profile.with_memory_bytes(mib << 20);
    }
    println!(
        "device: {} ({} MiB)",
        profile.name,
        profile.memory_bytes >> 20
    );

    let mut dev = GpuDevice::new(profile);
    if args.trace {
        dev.enable_trace();
    }
    let exec = if args.backend_scalar {
        ExecBackend::scalar()
    } else {
        ExecBackend::Parallel {
            threads: args.threads,
        }
    };
    let opts = ApspOptions {
        algorithm: args.algorithm,
        exec,
        storage: match &args.spill {
            Some(dir) => StorageBackend::Disk(dir.clone()),
            None => StorageBackend::Memory,
        },
        checkpoint: args.checkpoint_dir.as_ref().map(|dir| CheckpointOptions {
            dir: dir.clone(),
            resume: args.resume,
        }),
        supervision: SupervisionOptions {
            deadline_ms: args.deadline_ms,
            progress_budget_ms: args.progress_budget_ms,
            fallback: args.fallback,
            ..Default::default()
        },
        telemetry: args.metrics_out.is_some(),
        calibration_dir: args.calibration_dir.clone(),
        sdc_guard: args.sdc_guard,
        ..Default::default()
    };
    if args.sdc_guard.is_on() {
        println!("sdc guard: {}", args.sdc_guard);
    }
    if let Some(dir) = &args.calibration_dir {
        println!("calibrating selector against {}", dir.display());
    }
    if let Some(dir) = &args.checkpoint_dir {
        println!(
            "checkpointing to {} ({})",
            dir.display(),
            if args.resume {
                "resuming if a run is in flight"
            } else {
                "starting fresh"
            }
        );
    }
    let result = match apsp(&graph, &mut dev, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("apsp failed: {e}");
            if args.error_json {
                // One machine-readable line on stdout: the typed kind
                // (e.g. "SilentCorruption" vs "DeadlineExceeded" vs
                // "Corruption") plus the human detail, JSON-escaped.
                println!(
                    "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                    e.kind().as_str(),
                    json_escape(&e.to_string())
                );
            }
            std::process::exit(1);
        }
    };
    println!("algorithm: {}", result.algorithm);
    println!("backend: {exec} ({} thread(s))", exec.resolved_threads());
    if let Some(sel) = &result.selection {
        for c in &sel.candidates {
            match (c.estimate, &c.filter_reason) {
                (Some(est), _) => println!("  estimate {}: {est:.6} s", c.algorithm),
                (None, Some(reason)) => println!("  estimate {}: filtered ({reason})", c.algorithm),
                (None, None) => println!("  estimate {}: unavailable", c.algorithm),
            }
        }
    }
    for fb in &result.fallback_events {
        println!(
            "fallback: {} -> {} after {:?} ({}) at {:.6} s",
            fb.from, fb.to, fb.error_kind, fb.detail, fb.sim_seconds
        );
    }
    println!("simulated time: {:.6} s", result.sim_seconds);
    let r = &result.report;
    println!(
        "transfers: {:.1} MiB D2H in {} calls, {:.1} MiB H2D in {} calls; peak device memory {:.1} MiB",
        r.bytes_d2h as f64 / (1 << 20) as f64,
        r.transfers_d2h,
        r.bytes_h2d as f64 / (1 << 20) as f64,
        r.transfers_h2d,
        r.peak_memory as f64 / (1 << 20) as f64,
    );

    // Deterministic pseudo-random distance samples.
    let n = graph.num_vertices();
    let mut state = 0x5EEDu64;
    for _ in 0..args.sample {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let i = (state as usize) % n;
        let j = (state >> 32) as usize % n;
        match result.store.get(i, j) {
            Ok(d) if d < apsp_graph::INF => println!("dist({i}, {j}) = {d}"),
            Ok(_) => println!("dist({i}, {j}) = unreachable"),
            Err(e) => println!("dist({i}, {j}) read failed: {e}"),
        }
    }
    if args.verify > 0 {
        match apsp_core::verify::verify_rows(&graph, &result.store, args.verify, 0xC0FFEE) {
            Ok(v) if v.is_verified() => println!("verification: {v:?}"),
            Ok(v) => {
                eprintln!("VERIFICATION FAILED: {v:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("verification read error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        let report = result
            .telemetry
            .as_ref()
            .expect("telemetry was enabled for --metrics-out");
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "metrics: {} record(s) written to {}",
            report.to_jsonl().lines().count(),
            path.display()
        );
    }
    if args.calibration_report {
        let dir = args.calibration_dir.as_ref().unwrap();
        match apsp_core::CalibrationStore::open(dir, dev.profile()) {
            Ok(store) => print!("{}", store.report()),
            Err(e) => {
                eprintln!("failed to read calibration store: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.trace {
        println!("\ndevice timeline:");
        print!("{}", apsp_gpu_sim::trace::render_gantt(dev.trace(), 100));
    }
}
