//! Figures 6–7 and Table VI: cost-model accuracy and selector decisions.

use crate::experiments::{label, run_boundary, run_fw, run_johnson};
use crate::{
    build_analogs, fmt_secs, scale_or, scaled_johnson, scaled_selector, scaled_v100, Table,
};
use apsp_core::options::{BoundaryOptions, FwOptions};
use apsp_core::selector::{CostModels, JohnsonModel};
use apsp_gpu_sim::DeviceProfile;
use apsp_graph::generators::{rmat, RmatParams, WeightRange};
use apsp_graph::suite::table3_small_separator;

/// Fig 6: estimated vs actual times of boundary and Johnson on the
/// small-separator graphs, V100. The paper's bar: the model "can quite
/// accurately predict the real execution times and is always able to
/// choose the correct implementation".
pub fn fig6() {
    let scale = scale_or(32);
    fig_estimate_vs_actual("Fig 6", &DeviceProfile::v100(), scale);
}

/// Fig 7: the same on the K80 profile (generality check).
pub fn fig7() {
    let scale = scale_or(32);
    fig_estimate_vs_actual("Fig 7", &DeviceProfile::k80(), scale);
}

fn fig_estimate_vs_actual(tag: &str, base: &DeviceProfile, scale: usize) {
    let profile = crate::scaled_profile(base, scale);
    println!(
        "== {tag}: estimated vs actual, boundary & Johnson, small-separator graphs ({}) ==",
        profile.name
    );
    let models = CostModels::calibrate(&profile);
    let cfg = scaled_selector(scale);
    let jopts = crate::scaled_johnson_for(base, scale);
    let mut t = Table::new(vec![
        "graph",
        "est. boundary",
        "act. boundary",
        "est. Johnson",
        "act. Johnson",
        "selected",
        "actual best",
        "correct?",
    ]);
    let mut correct = 0usize;
    let mut total = 0usize;
    for run in build_analogs(&table3_small_separator(), scale) {
        let g = &run.graph;
        let est_b = models.boundary.estimate_seconds(&models, g);
        let est_j = JohnsonModel::probe(&profile, g, &cfg, &jopts)
            .map(|m| m.estimate_seconds(&models, g))
            .unwrap_or(f64::INFINITY);
        let act_b = run_boundary(&profile, g, &BoundaryOptions::default())
            .map(|(s, _, _)| s)
            .unwrap_or(f64::INFINITY);
        let act_j = run_johnson(&profile, g, &jopts)
            .map(|(s, _, _)| s)
            .unwrap_or(f64::INFINITY);
        let selected = if est_b <= est_j {
            "boundary"
        } else {
            "Johnson"
        };
        let best = if act_b <= act_j {
            "boundary"
        } else {
            "Johnson"
        };
        total += 1;
        if selected == best {
            correct += 1;
        }
        t.row(vec![
            label(&run),
            fmt_secs(est_b),
            fmt_secs(act_b),
            fmt_secs(est_j),
            fmt_secs(act_j),
            selected.to_string(),
            best.to_string(),
            if selected == best { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    println!("selector correct on {correct}/{total} graphs\n");
}

/// Table VI: Johnson vs blocked Floyd-Warshall selection on R-MAT graphs
/// of fixed `n` and doubling `m` (density crossing the 1% threshold).
/// Paper shape: FW time flat across rows, Johnson time growing with `m`,
/// selector always picking the winner.
pub fn table6() {
    let scale = scale_or(32);
    println!(
        "== Table VI: Johnson vs blocked FW selection, fixed n, doubling m (scale 1/{scale}) =="
    );
    let profile = scaled_v100(scale);
    let models = CostModels::calibrate(&profile);
    let cfg = scaled_selector(scale);
    let jopts = scaled_johnson(scale);
    let n = (80_000 / scale).max(256);
    // Start below the FW/Johnson crossover and double m past it. (The
    // paper sweeps m from ~1M to ~50M at n ≈ 70–80K; the crossover
    // density shifts with scale — see DESIGN.md §7 — so the sweep is
    // anchored at average degree 2 rather than at an absolute density.)
    let m0 = n * 2;
    let mut t = Table::new(vec![
        "setup",
        "m",
        "density(%)",
        "est. FW",
        "act. FW",
        "est. Johnson",
        "act. Johnson",
        "selected",
        "correct?",
    ]);
    // FW's time is independent of m: run it once on the sparsest setup
    // and reuse the measurement (the paper's FW column is constant too).
    let mut act_fw_cache: Option<f64> = None;
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, mult) in [1usize, 2, 4, 8, 16, 32].into_iter().enumerate() {
        let m = m0 * mult;
        let g = rmat(
            n,
            m,
            RmatParams::scale_free(),
            WeightRange::default(),
            0x7AB6 + i as u64,
        );
        let est_fw = models.fw.estimate_seconds(&models, &g);
        let est_j = JohnsonModel::probe(&profile, &g, &cfg, &jopts)
            .map(|jm| jm.estimate_seconds(&models, &g))
            .unwrap_or(f64::INFINITY);
        let act_fw = *act_fw_cache.get_or_insert_with(|| {
            run_fw(&profile, &g, &FwOptions::default())
                .map(|(s, _, _)| s)
                .unwrap_or(f64::INFINITY)
        });
        let act_j = run_johnson(&profile, &g, &jopts)
            .map(|(s, _, _)| s)
            .unwrap_or(f64::INFINITY);
        let selected = if est_fw <= est_j { "FW" } else { "Johnson" };
        let best = if act_fw <= act_j { "FW" } else { "Johnson" };
        total += 1;
        if selected == best {
            correct += 1;
        }
        t.row(vec![
            format!("setup{}", i + 1),
            g.num_edges().to_string(),
            format!("{:.3}", g.density() * 100.0),
            fmt_secs(est_fw),
            fmt_secs(act_fw),
            fmt_secs(est_j),
            fmt_secs(act_j),
            selected.to_string(),
            if selected == best { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();
    println!("selector correct on {correct}/{total} setups\n");
}
