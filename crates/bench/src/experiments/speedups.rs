//! Figures 2–4: speedups of the out-of-core GPU implementations over the
//! CPU baselines.
//!
//! CPU times come from the calibrated [`apsp_cpu::cost::CpuCostModel`]
//! evaluated at the analog's actual size (see DESIGN.md for why measured
//! wall time on this host cannot stand in for the paper's 28-thread
//! Xeon); GPU times are the device simulator's output for the same
//! analogs.

use crate::experiments::{label, run_boundary, run_johnson};
use crate::{build_analogs, fmt_secs, scale_or, scaled_johnson, scaled_v100, Table};
use apsp_core::options::BoundaryOptions;
use apsp_cpu::cost::CpuCostModel;
use apsp_graph::suite::{table3_other_sparse, table3_small_separator};

/// Fig 2: boundary algorithm vs BGL-Plus on the small-separator graphs.
/// Paper band: 8.22–12.40×.
pub fn fig2() {
    let scale = scale_or(32);
    println!("== Fig 2: OOC boundary vs BGL-Plus, small-separator graphs (scale 1/{scale}) ==");
    println!("paper speedup band: 8.22x .. 12.40x");
    let cpu = CpuCostModel::default();
    let profile = scaled_v100(scale);
    let mut t = Table::new(vec![
        "graph",
        "BGL-Plus (model)",
        "boundary (sim)",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for run in build_analogs(&table3_small_separator(), scale) {
        let (n, m) = (run.graph.num_vertices(), run.graph.num_edges());
        let cpu_s = cpu.bgl_plus_seconds(n, m);
        match run_boundary(&profile, &run.graph, &BoundaryOptions::default()) {
            Ok((gpu_s, _, _)) => {
                let speedup = cpu_s / gpu_s;
                speedups.push(speedup);
                t.row(vec![
                    label(&run),
                    fmt_secs(cpu_s),
                    fmt_secs(gpu_s),
                    format!("{speedup:.2}x"),
                ]);
            }
            Err(e) => t.row(vec![
                label(&run),
                fmt_secs(cpu_s),
                format!("{e}"),
                "-".into(),
            ]),
        }
    }
    t.print();
    summarize("speedup", &speedups);
}

/// Fig 3: Johnson's vs BGL-Plus on the other sparse graphs.
/// Paper band: 2.23–2.79×.
pub fn fig3() {
    let scale = scale_or(48);
    println!("== Fig 3: OOC Johnson vs BGL-Plus, other sparse graphs (scale 1/{scale}) ==");
    println!("paper speedup band: 2.23x .. 2.79x");
    let cpu = CpuCostModel::default();
    let profile = scaled_v100(scale);
    let jopts = scaled_johnson(scale);
    let mut t = Table::new(vec![
        "graph",
        "BGL-Plus (model)",
        "Johnson (sim)",
        "bat",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for run in build_analogs(&table3_other_sparse(), scale) {
        let (n, m) = (run.graph.num_vertices(), run.graph.num_edges());
        let cpu_s = cpu.bgl_plus_seconds(n, m);
        match run_johnson(&profile, &run.graph, &jopts) {
            Ok((gpu_s, stats, _)) => {
                let speedup = cpu_s / gpu_s;
                speedups.push(speedup);
                t.row(vec![
                    label(&run),
                    fmt_secs(cpu_s),
                    fmt_secs(gpu_s),
                    stats.batch_size.to_string(),
                    format!("{speedup:.2}x"),
                ]);
            }
            Err(e) => t.row(vec![
                label(&run),
                fmt_secs(cpu_s),
                format!("{e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.print();
    summarize("speedup", &speedups);
}

/// Fig 4: our implementation vs SuperFW and Galois (reported-number
/// baselines reproduced as cost models). Paper bands: 4.70–69.2× over
/// SuperFW, 79.93–152.62× over Galois.
///
/// Galois (Θ(n·m)) scales with our Johnson times under the 1/s workload
/// scaling, so its ratio is computed at the analog size directly.
/// SuperFW is Θ(n³), which scales by an extra 1/s: its comparison is
/// therefore *projected to paper scale* — our measured simulated time
/// grows by s² (Johnson's n·m scaling) against `superfw_seconds(n_paper)`.
pub fn fig4() {
    let scale = scale_or(48);
    println!("== Fig 4: vs SuperFW and Galois, other sparse graphs (scale 1/{scale}) ==");
    println!("paper bands: SuperFW 4.70x .. 69.2x;  Galois 79.93x .. 152.62x");
    let cpu = CpuCostModel::default();
    let profile = scaled_v100(scale);
    let jopts = scaled_johnson(scale);
    let mut t = Table::new(vec![
        "graph",
        "ours (sim)",
        "ours @paper scale",
        "SuperFW @paper scale",
        "vs SuperFW",
        "Galois (model)",
        "vs Galois",
    ]);
    let mut s_fw = Vec::new();
    let mut s_ga = Vec::new();
    for run in build_analogs(&table3_other_sparse(), scale) {
        let (n, m) = (run.graph.num_vertices(), run.graph.num_edges());
        let Ok((ours, _, _)) = run_johnson(&profile, &run.graph, &jopts) else {
            continue;
        };
        let ours_paper = ours * (scale * scale) as f64;
        let superfw = cpu.superfw_seconds(run.entry.n_paper);
        let galois = cpu.galois_seconds(n, m);
        s_fw.push(superfw / ours_paper);
        s_ga.push(galois / ours);
        t.row(vec![
            label(&run),
            fmt_secs(ours),
            fmt_secs(ours_paper),
            fmt_secs(superfw),
            format!("{:.1}x", superfw / ours_paper),
            fmt_secs(galois),
            format!("{:.1}x", galois / ours),
        ]);
    }
    t.print();
    summarize("vs SuperFW", &s_fw);
    summarize("vs Galois", &s_ga);
}

fn summarize(what: &str, xs: &[f64]) {
    if xs.is_empty() {
        return;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(0.0f64, f64::max);
    println!("measured {what} range: {min:.2}x .. {max:.2}x\n");
}
