//! Tables I–IV: algorithm summary, device specs, and the input suites.

use crate::{build_analogs, scale_or, suite_config, Table};
use apsp_gpu_sim::DeviceProfile;
use apsp_graph::suite::{SuiteEntry, TABLE3, TABLE4};
use apsp_partition::{kway_partition, PartitionConfig};

/// Table I: the qualitative comparison of the three implementations.
pub fn table1() {
    println!("== Table I: comparison of the implementations ==");
    let mut t = Table::new(vec!["property", "Floyd-Warshall", "Johnson's", "Boundary"]);
    t.row(vec![
        "computation complexity",
        "O(n^3)",
        "O(n m log n) .. O(n m)",
        "O(n^1.5) .. O(n^3)",
    ]);
    t.row(vec![
        "data access / control flow",
        "regular",
        "irregular",
        "regular",
    ]);
    t.row(vec!["data movement", "O(n_d * n^2)", "O(n^2)", "O(n^2)"]);
    t.row(vec![
        "target graphs",
        "dense",
        "sparse scale-free",
        "small separator",
    ]);
    t.print();
}

/// Table II: the simulated device profiles standing in for the paper's
/// V100 and K80.
pub fn table2() {
    println!("== Table II: simulated device profiles ==");
    let mut t = Table::new(vec!["property", "Tesla V100", "Tesla K80"]);
    let v = DeviceProfile::v100();
    let k = DeviceProfile::k80();
    let row =
        |name: &str, f: &dyn Fn(&DeviceProfile) -> String| vec![name.to_string(), f(&v), f(&k)];
    let mut push = |name: &str, f: &dyn Fn(&DeviceProfile) -> String| {
        t.row(row(name, f));
    };
    push("device memory (GiB)", &|p| {
        format!("{:.0}", p.memory_bytes as f64 / (1u64 << 30) as f64)
    });
    push("SMs", &|p| p.sm_count.to_string());
    push("effective compute (Gop/s)", &|p| {
        format!("{:.0}", p.compute_ops_per_sec / 1e9)
    });
    push("memory bandwidth (GB/s)", &|p| {
        format!("{:.0}", p.mem_bandwidth / 1e9)
    });
    push("D2H throughput (GB/s, measured)", &|p| {
        format!("{:.2}", p.d2h_bytes_per_sec / 1e9)
    });
    t.print();
}

fn suite_table(title: &str, entries: &[SuiteEntry], scale: usize, with_separator: bool) {
    println!("{title} (scale 1/{scale})");
    let mut headers = vec![
        "matrix".to_string(),
        "paper n(K)".to_string(),
        "paper m(K)".to_string(),
        "analog n".to_string(),
        "analog m".to_string(),
        "density(%)".to_string(),
    ];
    if with_separator {
        headers.push("sqrt(k*n)".to_string());
        headers.push("#boundary".to_string());
        headers.push("small sep?".to_string());
    }
    let mut t = Table::new(headers);
    let cfg = suite_config(scale);
    for e in entries {
        let g = e.generate(&cfg);
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut row = vec![
            e.name.to_string(),
            (e.n_paper / 1000).to_string(),
            (e.m_paper / 1000).to_string(),
            n.to_string(),
            m.to_string(),
            format!("{:.4}", g.density() * 100.0),
        ];
        if with_separator {
            let k = apsp_core::ooc_boundary::default_num_components(n);
            let p = kway_partition(&g, k, &PartitionConfig::default());
            let nb = p.num_boundary_nodes(&g);
            let ideal = ((k * n) as f64).sqrt();
            row.push(format!("{ideal:.0}"));
            row.push(nb.to_string());
            row.push(if e.small_separator { "yes" } else { "no" }.to_string());
        }
        t.row(row);
    }
    t.print();
}

/// Table III: the 19 graphs whose output fits host RAM, with measured
/// boundary counts of the analogs.
pub fn table3() {
    let scale = scale_or(32);
    suite_table(
        "== Table III: input graphs (output fits host RAM) ==",
        TABLE3,
        scale,
        true,
    );
}

/// Table IV: the 10 graphs whose output exceeds host RAM.
pub fn table4() {
    let scale = scale_or(96);
    suite_table(
        "== Table IV: large input graphs (output exceeds host RAM) ==",
        TABLE4,
        scale,
        false,
    );
    // Sanity line showing which analogs actually got generated.
    let runs = build_analogs(&TABLE4.iter().collect::<Vec<_>>(), scale);
    println!("generated {} analogs", runs.len());
}
