//! Fig 8 and the ablation studies.

use crate::experiments::{label, run_boundary, run_johnson};
use crate::{build_analogs, fmt_secs, scale_or, scaled_johnson, scaled_v100, Table};
use apsp_core::options::{BoundaryOptions, DynamicParallelism};
use apsp_graph::generators::{rmat, RmatParams, WeightRange};
use apsp_graph::suite::table3_small_separator;

/// Fig 8: benefits of the boundary algorithm's optimizations on the
/// small-separator graphs. Paper bands: batching 1.988–5.706×, overlap a
/// further 12.7–29.1%.
pub fn fig8() {
    let scale = scale_or(32);
    println!("== Fig 8: boundary-algorithm optimizations (scale 1/{scale}) ==");
    println!("paper bands: batching 1.988x .. 5.706x; overlap +12.7% .. +29.1%");
    let profile = scaled_v100(scale);
    let mut t = Table::new(vec![
        "graph",
        "naive",
        "batched",
        "batching speedup",
        "batched+overlap",
        "overlap gain",
        "naive transfer frac",
    ]);
    let mut batch_speedups = Vec::new();
    let mut overlap_gains = Vec::new();
    for run in build_analogs(&table3_small_separator(), scale) {
        let base = BoundaryOptions {
            batch_transfers: false,
            overlap_transfers: false,
            ..Default::default()
        };
        let batched = BoundaryOptions {
            batch_transfers: true,
            overlap_transfers: false,
            ..Default::default()
        };
        let both = BoundaryOptions {
            batch_transfers: true,
            overlap_transfers: true,
            ..Default::default()
        };
        let (Ok((t_naive, _, rep_naive)), Ok((t_batch, _, _)), Ok((t_both, _, _))) = (
            run_boundary(&profile, &run.graph, &base),
            run_boundary(&profile, &run.graph, &batched),
            run_boundary(&profile, &run.graph, &both),
        ) else {
            t.row(vec![
                label(&run),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let speedup = t_naive / t_batch;
        let gain = (t_batch - t_both) / t_batch * 100.0;
        batch_speedups.push(speedup);
        overlap_gains.push(gain);
        t.row(vec![
            label(&run),
            fmt_secs(t_naive),
            fmt_secs(t_batch),
            format!("{speedup:.2}x"),
            fmt_secs(t_both),
            format!("{gain:.1}%"),
            format!("{:.1}%", rep_naive.transfer_fraction() * 100.0),
        ]);
    }
    t.print();
    range("batching speedup", &batch_speedups, "x");
    range("overlap gain", &overlap_gains, "%");
    println!();
}

/// Ablation: dynamic parallelism on/off for Johnson's on scale-free
/// graphs whose batch size is too small to saturate the device.
pub fn ablation_dynpar() {
    let scale = scale_or(32);
    println!("== Ablation: dynamic parallelism (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let n = (100_000 / scale).max(512);
    let mut t = Table::new(vec!["m", "bat", "DP off", "DP on", "speedup"]);
    for deg in [32usize, 64, 128] {
        let m = n * deg;
        let g = rmat(
            n,
            m,
            RmatParams::scale_free(),
            WeightRange::default(),
            0xD1 + deg as u64,
        );
        let mut off = scaled_johnson(scale);
        off.dynamic_parallelism = DynamicParallelism::Off;
        // Shrink the batch to force under-utilization, as happens at
        // paper scale for edge-heavy graphs.
        off.queue_words_per_edge = 32.0 / scale as f64;
        let mut on = off;
        on.dynamic_parallelism = DynamicParallelism::On;
        on.heavy_degree_threshold = 128;
        let (Ok((t_off, stats, _)), Ok((t_on, _, _))) = (
            run_johnson(&profile, &g, &off),
            run_johnson(&profile, &g, &on),
        ) else {
            continue;
        };
        t.row(vec![
            g.num_edges().to_string(),
            stats.batch_size.to_string(),
            fmt_secs(t_off),
            fmt_secs(t_on),
            format!("{:.2}x", t_off / t_on),
        ]);
    }
    t.print();
    println!();
}

/// Ablation: component-count sweep for the boundary algorithm (the paper
/// settles on √n/4 as the best default).
pub fn ablation_k() {
    let scale = scale_or(32);
    println!("== Ablation: boundary component count k (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let runs = build_analogs(&table3_small_separator()[..2], scale);
    let mut t = Table::new(vec!["graph", "k", "NB", "sim time"]);
    for run in &runs {
        let n = run.graph.num_vertices();
        let default_k = apsp_core::ooc_boundary::default_num_components(n);
        for k in [default_k / 2, default_k, default_k * 2, default_k * 4] {
            let opts = BoundaryOptions {
                num_components: Some(k.max(2)),
                ..Default::default()
            };
            match run_boundary(&profile, &run.graph, &opts) {
                Ok((s, stats, _)) => t.row(vec![
                    run.entry.name.to_string(),
                    stats.num_components.to_string(),
                    stats.total_boundary.to_string(),
                    fmt_secs(s),
                ]),
                Err(e) => t.row(vec![
                    run.entry.name.to_string(),
                    k.to_string(),
                    "-".into(),
                    format!("{e}"),
                ]),
            }
        }
    }
    t.print();
    println!();
}

/// Ablation: Near-Far Δ sweep for Johnson's.
pub fn ablation_delta() {
    let scale = scale_or(48);
    println!("== Ablation: Near-Far delta (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let run = &build_analogs(&table3_small_separator()[..1], scale)[0];
    let mut t = Table::new(vec!["delta", "sim time", "relaxations", "near iters"]);
    for delta in [1u32, 10, 50, 100, 500] {
        let mut opts = scaled_johnson(scale);
        opts.delta = Some(delta);
        match run_johnson(&profile, &run.graph, &opts) {
            Ok((s, stats, _)) => t.row(vec![
                delta.to_string(),
                fmt_secs(s),
                stats.work.total_relaxations().to_string(),
                stats.work.near_iterations.to_string(),
            ]),
            Err(e) => t.row(vec![
                delta.to_string(),
                format!("{e}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.print();
    println!();
}

/// Ablation: Near-Far vs device Bellman-Ford as the SSSP engine — the
/// related-work trade-off the paper discusses (Section VI): Bellman-Ford
/// parallelizes perfectly but redoes every edge each round.
pub fn ablation_sssp() {
    use apsp_gpu_sim::GpuDevice;
    let scale = scale_or(64);
    println!("== Ablation: SSSP engine, Near-Far vs Bellman-Ford (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let mut t = Table::new(vec![
        "graph",
        "near-far time",
        "near-far relax",
        "bellman-ford time",
        "bellman-ford relax",
        "BF slowdown",
    ]);
    for run in build_analogs(&table3_small_separator()[..3], scale) {
        let g = &run.graph;
        // Near-Far (single source 0, device-charged via one MSSP launch).
        let mut d1 = GpuDevice::new(profile.clone());
        let s1 = d1.default_stream();
        let mut out = apsp_kernels::DeviceMatrix::alloc_inf(&d1, 1, g.num_vertices()).unwrap();
        let outcome = apsp_kernels::mssp::mssp_kernel(
            &mut d1,
            s1,
            g,
            &[0],
            &mut out,
            apsp_kernels::mssp::MsspOptions::new(apsp_kernels::nearfar::default_delta(g)),
        );
        let t_nf = d1.synchronize().seconds();
        // Bellman-Ford.
        let mut d2 = GpuDevice::new(profile.clone());
        let s2 = d2.default_stream();
        let (_, bf) = apsp_kernels::bellman_ford::bellman_ford_device(&mut d2, s2, g, 0);
        let t_bf = d2.synchronize().seconds();
        t.row(vec![
            run.entry.name.to_string(),
            fmt_secs(t_nf),
            outcome.stats.total_relaxations().to_string(),
            fmt_secs(t_bf),
            bf.relaxations.to_string(),
            format!("{:.1}x", t_bf / t_nf),
        ]);
    }
    t.print();
    println!();
}

/// Ablation: the in-core prior-work baseline vs the out-of-core
/// Floyd-Warshall across growing n — showing the size wall the paper's
/// implementations remove, and the (small) out-of-core overhead below it.
pub fn ablation_incore() {
    use apsp_core::in_core::{in_core_fw, max_in_core_vertices};
    use apsp_core::options::FwOptions;
    use apsp_gpu_sim::GpuDevice;
    let scale = scale_or(32);
    println!("== Ablation: in-core baseline vs out-of-core FW (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let cap = max_in_core_vertices(&GpuDevice::new(profile.clone()));
    println!("device holds at most a {cap}² matrix in-core");
    let mut t = Table::new(vec!["n", "in-core", "out-of-core", "ooc overhead"]);
    for frac in [0.5f64, 0.9, 1.5, 3.0] {
        let n = ((cap as f64 * frac) as usize).max(16);
        let g = rmat(
            n,
            8 * n,
            RmatParams::scale_free(),
            WeightRange::default(),
            0x1C + n as u64,
        );
        let mut d1 = GpuDevice::new(profile.clone());
        let in_core = in_core_fw(&mut d1, &g).map(|(_, s)| s.sim_seconds);
        let ooc =
            crate::experiments::run_fw(&profile, &g, &FwOptions::default()).map(|(s, _, _)| s);
        let overhead = match (&in_core, &ooc) {
            (Ok(i), Ok(o)) => format!("{:+.1}%", (o / i - 1.0) * 100.0),
            _ => "-".into(),
        };
        t.row(vec![
            n.to_string(),
            in_core.map_or_else(|e| e.to_string(), fmt_secs),
            ooc.map_or_else(|e| e.to_string(), fmt_secs),
            overhead,
        ]);
    }
    t.print();
    println!();
}

fn range(what: &str, xs: &[f64], unit: &str) {
    if xs.is_empty() {
        return;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("measured {what} range: {min:.2}{unit} .. {max:.2}{unit}");
}
