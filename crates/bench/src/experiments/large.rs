//! Fig 5 and Table V: behaviour on graphs whose output exceeds host RAM,
//! and R-MAT scaling.

use crate::experiments::label;
use crate::{
    build_analogs, fmt_secs, scale_or, scaled_johnson, scaled_k80, scaled_selector, scaled_v100,
    Table,
};
use apsp_core::ooc_johnson::ooc_johnson;
use apsp_core::{apsp, ApspOptions, StorageBackend, TileStore};
use apsp_gpu_sim::GpuDevice;
use apsp_graph::generators::{rmat, RmatParams, WeightRange};
use apsp_graph::suite::TABLE4;

/// Fig 5: execution times on the Table IV analogs with a disk-backed
/// result store (the "output does not fit in CPU memory" regime). The
/// paper's point is that the out-of-core implementations complete where
/// nothing else can.
pub fn fig5() {
    let scale = scale_or(96);
    println!("== Fig 5: large graphs, disk-spilled output (scale 1/{scale}) ==");
    let profile = scaled_v100(scale);
    let spill_dir = std::env::temp_dir().join("apsp-repro-fig5");
    let mut t = Table::new(vec!["graph", "algorithm", "sim time", "store"]);
    for run in build_analogs(&TABLE4.iter().collect::<Vec<_>>(), scale) {
        // Memory scales 1/s² but the CSR input only 1/s, so at deep scale
        // the edge-heaviest analogs outgrow the scaled capacity even
        // though the paper's inputs trivially fit the real 16 GB. Floor
        // the capacity at a few × the input so the experiment's actual
        // subject — output ≫ device ≫ nothing-fits-host — is preserved.
        let input_floor = 4 * (run.graph.storage_bytes() as u64);
        let dev_profile = profile.with_memory_bytes(profile.memory_bytes.max(input_floor));
        let mut dev = GpuDevice::new(dev_profile);
        let opts = ApspOptions {
            storage: StorageBackend::Disk(spill_dir.clone()),
            johnson: scaled_johnson(scale),
            selector: scaled_selector(scale),
            ..Default::default()
        };
        match apsp(&run.graph, &mut dev, &opts) {
            Ok(result) => {
                t.row(vec![
                    label(&run),
                    result.algorithm.to_string(),
                    fmt_secs(result.sim_seconds),
                    if result.store.is_disk_backed() {
                        "disk".to_string()
                    } else {
                        "ram".to_string()
                    },
                ]);
            }
            Err(e) => t.row(vec![label(&run), "-".into(), format!("{e}"), "-".into()]),
        }
    }
    t.print();
    println!();
}

/// Table V: R-MAT scaling on both device profiles; the paper's efficiency
/// statistic `n·m/s` should stay roughly flat as sizes grow (data
/// movement does not take over).
pub fn table5() {
    let scale = scale_or(32);
    println!("== Table V: R-MAT scaling, V100 vs K80 (scale 1/{scale}) ==");
    println!("paper claim: n*m/s stays roughly stable as size doubles");
    // Paper sweep: 10K..320K vertices, in-degree distribution fixed.
    let paper_sizes = [10_000usize, 20_000, 40_000, 80_000, 160_000, 320_000];
    let avg_deg = 16usize;
    let mut t = Table::new(vec![
        "paper n",
        "analog n",
        "analog m",
        "V100 time",
        "V100 n*m/s",
        "K80 time",
        "K80 n*m/s",
    ]);
    for paper_n in paper_sizes {
        let n = (paper_n / scale).max(64);
        let m = n * avg_deg;
        let g = rmat(
            n,
            m,
            RmatParams::scale_free(),
            WeightRange::default(),
            0x7AB1E5 ^ n as u64,
        );
        let mut row = vec![
            paper_n.to_string(),
            n.to_string(),
            g.num_edges().to_string(),
        ];
        for (base, profile) in [
            (apsp_gpu_sim::DeviceProfile::v100(), scaled_v100(scale)),
            (apsp_gpu_sim::DeviceProfile::k80(), scaled_k80(scale)),
        ] {
            let mut dev = GpuDevice::new(profile);
            let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
            match ooc_johnson(
                &mut dev,
                &g,
                &mut store,
                &crate::scaled_johnson_for(&base, scale),
            ) {
                Ok(stats) => {
                    let nm_per_s = (n as f64) * (g.num_edges() as f64) / stats.sim_seconds;
                    row.push(fmt_secs(stats.sim_seconds));
                    row.push(format!("{:.2e}", nm_per_s));
                }
                Err(e) => {
                    row.push(format!("{e}"));
                    row.push("-".into());
                }
            }
        }
        t.row(row);
    }
    t.print();
    println!();
}
