//! One module per paper table/figure, plus the ablations.
//!
//! Every experiment prints a self-describing report: the paper's claimed
//! band (where the paper states one) next to the measured value, so
//! EXPERIMENTS.md can be assembled directly from `repro all` output.

pub mod large;
pub mod optimizations;
pub mod selector_exps;
pub mod speedups;
pub mod tables;

use crate::AnalogRun;
use apsp_core::ooc_boundary::{ooc_boundary, BoundaryRunStats};
use apsp_core::ooc_fw::{init_store_from_graph, ooc_floyd_warshall, FwRunStats};
use apsp_core::ooc_johnson::{ooc_johnson, JohnsonRunStats};
use apsp_core::options::{BoundaryOptions, FwOptions, JohnsonOptions};
use apsp_core::{ApspError, StorageBackend, TileStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice, SimReport};
use apsp_graph::CsrGraph;

/// Run the boundary algorithm; returns (sim seconds, stats, profile
/// report).
pub fn run_boundary(
    profile: &DeviceProfile,
    g: &CsrGraph,
    opts: &BoundaryOptions,
) -> Result<(f64, BoundaryRunStats, SimReport), ApspError> {
    let mut dev = GpuDevice::new(profile.clone());
    let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory)?;
    let stats = ooc_boundary(&mut dev, g, &mut store, opts)?;
    Ok((stats.sim_seconds, stats, dev.report()))
}

/// Run Johnson's; returns (sim seconds, stats, report).
pub fn run_johnson(
    profile: &DeviceProfile,
    g: &CsrGraph,
    opts: &JohnsonOptions,
) -> Result<(f64, JohnsonRunStats, SimReport), ApspError> {
    let mut dev = GpuDevice::new(profile.clone());
    let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory)?;
    let stats = ooc_johnson(&mut dev, g, &mut store, opts)?;
    Ok((stats.sim_seconds, stats, dev.report()))
}

/// Run out-of-core Floyd-Warshall; returns (sim seconds, stats, report).
pub fn run_fw(
    profile: &DeviceProfile,
    g: &CsrGraph,
    opts: &FwOptions,
) -> Result<(f64, FwRunStats, SimReport), ApspError> {
    let mut dev = GpuDevice::new(profile.clone());
    let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory)?;
    init_store_from_graph(g, &mut store)?;
    let stats = ooc_floyd_warshall(&mut dev, &mut store, opts)?;
    Ok((stats.sim_seconds, stats, dev.report()))
}

/// Pretty label for an analog: `name (n=…, m=…)`.
pub fn label(run: &AnalogRun) -> String {
    format!(
        "{} (n={}, m={})",
        run.entry.name,
        run.graph.num_vertices(),
        run.graph.num_edges()
    )
}
