//! Criterion bench for the Fig 3 workload: batched Johnson's on the
//! "other sparse" analogs.

use apsp_bench::experiments::run_johnson;
use apsp_bench::{build_analogs, scaled_johnson, scaled_v100};
use apsp_graph::suite::table3_other_sparse;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = 192;
    let profile = scaled_v100(scale);
    let jopts = scaled_johnson(scale);
    let runs = build_analogs(&table3_other_sparse()[..3], scale);
    let mut group = c.benchmark_group("fig3_johnson");
    group.sample_size(10);
    for run in &runs {
        // Deep scaling shrinks memory (1/s²) faster than the CSR input
        // (1/s); floor capacity at a few × the graph, as the real 16 GB
        // device trivially provides.
        let floor = 4 * run.graph.storage_bytes() as u64;
        let profile = profile.with_memory_bytes(profile.memory_bytes.max(floor));
        group.bench_function(run.entry.name, |b| {
            b.iter(|| {
                let out = run_johnson(&profile, black_box(&run.graph), &jopts).unwrap();
                black_box(out.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
