//! Criterion bench for the Table VI workload: blocked Floyd-Warshall vs
//! Johnson's across a density sweep at fixed n.

use apsp_bench::experiments::{run_fw, run_johnson};
use apsp_bench::{scaled_johnson, scaled_v100};
use apsp_core::options::FwOptions;
use apsp_graph::generators::{rmat, RmatParams, WeightRange};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = 128;
    let profile = scaled_v100(scale);
    let jopts = scaled_johnson(scale);
    let n = 625;
    let mut group = c.benchmark_group("table6");
    group.sample_size(10);
    // FW once (its time is density-independent).
    let sparse = rmat(
        n,
        2 * n,
        RmatParams::scale_free(),
        WeightRange::default(),
        1,
    );
    group.bench_function("blocked_fw", |b| {
        b.iter(|| {
            let out = run_fw(&profile, black_box(&sparse), &FwOptions::default()).unwrap();
            black_box(out.0)
        })
    });
    for deg in [2usize, 8, 32] {
        let g = rmat(
            n,
            deg * n,
            RmatParams::scale_free(),
            WeightRange::default(),
            deg as u64,
        );
        group.bench_with_input(BenchmarkId::new("johnson_deg", deg), &g, |b, g| {
            b.iter(|| {
                let out = run_johnson(&profile, black_box(g), &jopts).unwrap();
                black_box(out.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
