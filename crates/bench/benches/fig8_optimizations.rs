//! Criterion bench for the Fig 8 workload: boundary-algorithm transfer
//! optimizations toggled on a small-separator analog.

use apsp_bench::experiments::run_boundary;
use apsp_bench::{build_analogs, scaled_v100};
use apsp_core::options::BoundaryOptions;
use apsp_graph::suite::table3_small_separator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = 192;
    let profile = scaled_v100(scale);
    let run = &build_analogs(&table3_small_separator()[..1], scale)[0];
    let mut group = c.benchmark_group("fig8_boundary_optimizations");
    group.sample_size(10);
    for (tag, batch, overlap) in [
        ("naive", false, false),
        ("batched", true, false),
        ("batched_overlap", true, true),
    ] {
        let opts = BoundaryOptions {
            batch_transfers: batch,
            overlap_transfers: overlap,
            ..Default::default()
        };
        group.bench_function(tag, |b| {
            b.iter(|| {
                let out = run_boundary(&profile, black_box(&run.graph), &opts).unwrap();
                black_box(out.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
