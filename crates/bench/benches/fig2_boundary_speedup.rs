//! Criterion bench for the Fig 2 workload: the boundary algorithm on
//! small-separator analogs (wall time of the full simulated pipeline —
//! partitioning, kernels, transfers — at a reduced scale; the paper-shape
//! *simulated* numbers come from `repro fig2`).

use apsp_bench::experiments::run_boundary;
use apsp_bench::{build_analogs, scaled_v100};
use apsp_core::options::BoundaryOptions;
use apsp_graph::suite::table3_small_separator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = 192; // tiny graphs: benches measure host throughput
    let profile = scaled_v100(scale);
    let runs = build_analogs(&table3_small_separator()[..3], scale);
    let mut group = c.benchmark_group("fig2_boundary");
    group.sample_size(10);
    for run in &runs {
        group.bench_function(run.entry.name, |b| {
            b.iter(|| {
                let out =
                    run_boundary(&profile, black_box(&run.graph), &BoundaryOptions::default())
                        .unwrap();
                black_box(out.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
