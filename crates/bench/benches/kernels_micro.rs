//! Micro-benchmarks of the building blocks: min-plus multiply, in-device
//! blocked Floyd-Warshall, Near-Far SSSP and the k-way partitioner.

use apsp_cpu::blocked_fw::blocked_floyd_warshall;
use apsp_cpu::DistMatrix;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, random_geometric, WeightRange};
use apsp_kernels::fw_block::fw_device;
use apsp_kernels::minplus::minplus_product;
use apsp_kernels::near_far_sssp;
use apsp_kernels::DeviceMatrix;
use apsp_partition::{kway_partition, PartitionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_minplus(c: &mut Criterion) {
    let mut group = c.benchmark_group("minplus");
    group.sample_size(10);
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dev = GpuDevice::new(DeviceProfile::v100());
            let a = DeviceMatrix::alloc(&dev, n, n).unwrap();
            let bm = DeviceMatrix::alloc(&dev, n, n).unwrap();
            let mut dev = dev;
            b.iter(|| {
                let mut cm = DeviceMatrix::alloc_inf(&dev, n, n).unwrap();
                let s = dev.default_stream();
                minplus_product(&mut dev, s, &mut cm, &a, &bm);
                black_box(cm.get(0, 0))
            })
        });
    }
    group.finish();
}

fn bench_fw(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocked_fw");
    group.sample_size(10);
    for n in [128usize, 256] {
        let g = gnp(n, 0.05, WeightRange::default(), 3);
        group.bench_with_input(BenchmarkId::new("host", n), &g, |b, g| {
            b.iter(|| {
                let mut m = DistMatrix::from_graph(g);
                blocked_floyd_warshall(&mut m, 64);
                black_box(m.get(0, 0))
            })
        });
        group.bench_with_input(BenchmarkId::new("device", n), &g, |b, g| {
            b.iter(|| {
                let mut dev = GpuDevice::new(DeviceProfile::v100());
                let s = dev.default_stream();
                let host = DistMatrix::from_graph(g);
                let mut m = DeviceMatrix::alloc(&dev, g.num_vertices(), g.num_vertices()).unwrap();
                m.as_mut_slice().copy_from_slice(host.as_slice());
                fw_device(&mut dev, s, &mut m);
                black_box(m.get(0, 0))
            })
        });
    }
    group.finish();
}

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("near_far_sssp");
    group.sample_size(20);
    for n in [1_000usize, 4_000] {
        let g = gnp(n, 8.0 / n as f64, WeightRange::default(), 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(near_far_sssp(g, 0, 25, usize::MAX).0[n - 1]))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_partition");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let g = random_geometric(
            n,
            (8.0 / (n as f64 * std::f64::consts::PI)).sqrt(),
            WeightRange::default(),
            9,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let p = kway_partition(g, 16, &PartitionConfig::default());
                black_box(p.num_boundary_nodes(g))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_minplus,
    bench_fw,
    bench_sssp,
    bench_partition
);
criterion_main!(benches);
