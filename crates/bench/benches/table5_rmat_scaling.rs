//! Criterion bench for the Table V workload: Johnson's on growing R-MAT
//! graphs, on both device profiles.

use apsp_bench::experiments::run_johnson;
use apsp_bench::{scaled_johnson_for, scaled_k80, scaled_v100};
use apsp_gpu_sim::DeviceProfile;
use apsp_graph::generators::{rmat, RmatParams, WeightRange};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = 128;
    let mut group = c.benchmark_group("table5_rmat");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let g = rmat(
            n,
            16 * n,
            RmatParams::scale_free(),
            WeightRange::default(),
            n as u64,
        );
        for (tag, base, profile) in [
            ("v100", DeviceProfile::v100(), scaled_v100(scale)),
            ("k80", DeviceProfile::k80(), scaled_k80(scale)),
        ] {
            let jopts = scaled_johnson_for(&base, scale);
            group.bench_with_input(BenchmarkId::new(tag, n), &g, |b, g| {
                b.iter(|| {
                    let out = run_johnson(&profile, black_box(g), &jopts).unwrap();
                    black_box(out.0)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
