//! Graph statistics: degree distributions, density classification and
//! connected components — the inputs to the paper's density filter and the
//! table columns of the experimental section.

use crate::{CsrGraph, VertexId};

/// Degree-distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min_out: usize,
    /// Maximum out-degree.
    pub max_out: usize,
    /// Mean out-degree.
    pub mean_out: f64,
    /// Population standard deviation of out-degree.
    pub std_out: f64,
}

/// Compute out-degree statistics. Zero-vertex graphs return all-zero stats.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min_out: 0,
            max_out: 0,
            mean_out: 0.0,
            std_out: 0.0,
        };
    }
    let mut min_out = usize::MAX;
    let mut max_out = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0f64;
    for v in 0..n as VertexId {
        let d = g.out_degree(v);
        min_out = min_out.min(d);
        max_out = max_out.max(d);
        sum += d;
        sum_sq += (d * d) as f64;
    }
    let mean = sum as f64 / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    DegreeStats {
        min_out,
        max_out,
        mean_out: mean,
        std_out: var.sqrt(),
    }
}

/// Number of weakly connected components (directions ignored).
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let rev = g.transpose();
    let mut stack = Vec::new();
    let mut count = 0u32;
    for start in 0..n as VertexId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for (u, _) in g.edges_from(v).chain(rev.edges_from(v)) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    count as usize
}

/// Unweighted BFS distances from `source` (hop counts;
/// `usize::MAX` = unreachable).
pub fn bfs_hops(g: &CsrGraph, source: VertexId) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    if n == 0 {
        return dist;
    }
    let mut q = std::collections::VecDeque::from([source]);
    dist[source as usize] = 0;
    while let Some(v) = q.pop_front() {
        for (u, _) in g.edges_from(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Lower bound on the hop diameter by the classic double-sweep heuristic:
/// BFS from `seed`, then BFS from the farthest vertex found; exact on
/// trees and typically within a few percent on road-like graphs. Drives
/// the iteration-count expectations of the Johnson cost discussion.
pub fn approx_diameter_hops(g: &CsrGraph, seed: VertexId) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let first = bfs_hops(g, seed);
    let far = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(seed);
    bfs_hops(g, far)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0)
}

/// Out-degree histogram in power-of-two buckets: `histogram[b]` counts
/// vertices with out-degree in `[2^b, 2^{b+1})` (bucket 0 additionally
/// holds degree-0 vertices). Used to judge how scale-free an input is —
/// the property behind the dynamic-parallelism optimization.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// The density classes of the paper's selector filter (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// density < 0.01% — Johnson vs boundary territory.
    VerySparse,
    /// 0.01% ≤ density ≤ 1% — Johnson's algorithm is always chosen.
    Sparse,
    /// density > 1% — Johnson vs blocked Floyd-Warshall territory.
    Dense,
}

/// Classify a graph by the paper's density thresholds (density is `m/n²`;
/// the thresholds 1% and 0.01% are fractions 1e-2 and 1e-4).
pub fn density_class(g: &CsrGraph) -> DensityClass {
    let d = g.density();
    if d > 1e-2 {
        DensityClass::Dense
    } else if d < 1e-4 {
        DensityClass::VerySparse
    } else {
        DensityClass::Sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnp, grid_2d, GridOptions, WeightRange};
    use crate::GraphBuilder;

    #[test]
    fn degree_stats_of_path() {
        // 0 -> 1 -> 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let s = degree_stats(&b.build());
        assert_eq!(s.min_out, 0);
        assert_eq!(s.max_out, 1);
        assert!((s.mean_out - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.max_out, 0);
        assert_eq!(s.mean_out, 0.0);
    }

    #[test]
    fn components_counts_isolated_vertices() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        b.add_edge(3, 4, 1);
        let g = b.build();
        assert_eq!(connected_components(&g), 3); // {0,1}, {2}, {3,4}
    }

    #[test]
    fn components_ignore_direction() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 0, 1);
        b.add_edge(1, 2, 1);
        assert_eq!(connected_components(&b.build()), 1);
    }

    #[test]
    fn grid_is_one_component() {
        let g = grid_2d(8, 8, GridOptions::default(), WeightRange::default(), 1);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn density_classes_match_thresholds() {
        // Dense: G(100, 0.05) → density ≈ 5% > 1%.
        let dense = gnp(100, 0.05, WeightRange::default(), 1);
        assert_eq!(density_class(&dense), DensityClass::Dense);
        // Sparse: grid 50×50 → m ≈ 2*2*50*49 ≈ 9800, n² = 6.25e6 → ~0.16%.
        let sparse = grid_2d(50, 50, GridOptions::default(), WeightRange::default(), 1);
        assert_eq!(density_class(&sparse), DensityClass::Sparse);
        // Very sparse: grid 200×200 → m ≈ 159k, n² = 1.6e9 → ~0.01% — use
        // 300×300 to be safely below.
        let vs = grid_2d(300, 300, GridOptions::default(), WeightRange::default(), 1);
        assert_eq!(density_class(&vs), DensityClass::VerySparse);
    }

    #[test]
    fn bfs_hops_on_path_graph() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 9);
        }
        let g = b.build();
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            bfs_hops(&g, 4),
            vec![usize::MAX, usize::MAX, usize::MAX, usize::MAX, 0]
        );
    }

    #[test]
    fn double_sweep_finds_grid_diameter() {
        // 10×10 4-connected grid: hop diameter = 18 between opposite
        // corners; double sweep from any seed finds it exactly here.
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 3);
        assert_eq!(approx_diameter_hops(&g, 47), 18);
    }

    #[test]
    fn approx_diameter_handles_disconnected_inputs() {
        let mut b = GraphBuilder::new(4).symmetric(true);
        b.add_edge(0, 1, 1); // component {0,1}, isolated {2}, {3}
        let g = b.build();
        assert_eq!(approx_diameter_hops(&g, 0), 1);
        assert_eq!(approx_diameter_hops(&g, 2), 0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut b = GraphBuilder::new(4);
        // degrees 0, 1, 2, 3 → buckets 0, 0, 1, 1.
        b.add_edge(1, 0, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(2, 1, 1);
        b.add_edge(3, 0, 1);
        b.add_edge(3, 1, 1);
        b.add_edge(3, 2, 1);
        let hist = degree_histogram(&b.build());
        assert_eq!(hist, vec![2, 2]);
        // Scale-free graphs reach high buckets.
        let sf = crate::generators::rmat(
            512,
            8192,
            crate::generators::RmatParams::scale_free(),
            WeightRange::default(),
            3,
        );
        assert!(
            degree_histogram(&sf).len() >= 6,
            "{:?}",
            degree_histogram(&sf)
        );
    }

    #[test]
    fn cross_check_paper_densities() {
        // Table III lists usroads with n=129K, m=331K, density 0.0020%;
        // sanity-check our definition against the paper's reported value.
        let n = 129_000f64;
        let m = 331_000f64;
        let density_pct = m / (n * n) * 100.0;
        assert!((density_pct - 0.0020).abs() < 0.0005, "{density_pct}");
    }
}
