//! Compressed-sparse-row graph storage.

use crate::{Dist, Edge, VertexId};

/// A weighted directed graph in compressed-sparse-row form.
///
/// The out-neighbourhood of vertex `v` occupies the half-open index range
/// `row_ptr[v] .. row_ptr[v + 1]` of `col_idx` / `weights`. Within a row,
/// neighbours are sorted by destination id and contain no duplicates
/// (multi-edges are folded to their minimum weight by [`crate::GraphBuilder`]).
///
/// ```
/// use apsp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_edge(0, 1, 3); // multi-edge folds to the minimum
/// b.add_edge(1, 2, 7);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(0, 1), Some(3));
/// assert_eq!(g.out_degree(2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    row_ptr: Vec<usize>,
    col_idx: Vec<VertexId>,
    weights: Vec<Dist>,
}

impl CsrGraph {
    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `row_ptr` must be non-empty
    /// and non-decreasing, start at 0, end at `col_idx.len()`, and
    /// `col_idx.len() == weights.len()` with all column ids `< n`.
    pub fn from_raw(row_ptr: Vec<usize>, col_idx: Vec<VertexId>, weights: Vec<Dist>) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must end at the number of edges"
        );
        assert_eq!(col_idx.len(), weights.len());
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        let n = (row_ptr.len() - 1) as VertexId;
        assert!(col_idx.iter().all(|&c| c < n), "column index out of range");
        CsrGraph {
            row_ptr,
            col_idx,
            weights,
        }
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            row_ptr: vec![0; n + 1],
            col_idx: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Edge density `m / n²` (as used by the paper's selector filter),
    /// returned as a fraction in `[0, 1]`. Zero-vertex graphs report 0.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices() as f64;
        if n == 0.0 {
            0.0
        } else {
            self.num_edges() as f64 / (n * n)
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]
    }

    /// Out-neighbours of `v` as parallel `(destination, weight)` slices.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> (&[VertexId], &[Dist]) {
        let lo = self.row_ptr[v as usize];
        let hi = self.row_ptr[v as usize + 1];
        (&self.col_idx[lo..hi], &self.weights[lo..hi])
    }

    /// Iterate over the out-edges of `v`.
    #[inline]
    pub fn edges_from(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Dist)> + '_ {
        let (cols, ws) = self.neighbors(v);
        cols.iter().copied().zip(ws.iter().copied())
    }

    /// Iterate over every edge of the graph.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.edges_from(v).map(move |(dst, w)| Edge::new(v, dst, w)))
    }

    /// Weight of the edge `(u, v)` if present (binary search within the row).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        let (cols, ws) = self.neighbors(u);
        cols.binary_search(&v).ok().map(|i| ws[i])
    }

    /// Raw row-pointer array (length `n + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array (length `m`).
    #[inline]
    pub fn col_idx(&self) -> &[VertexId] {
        &self.col_idx
    }

    /// Raw weight array (length `m`).
    #[inline]
    pub fn weights(&self) -> &[Dist] {
        &self.weights
    }

    /// Bytes needed to hold the CSR arrays — the `S` term of the paper's
    /// batch-size formula `bat = (L − S) / (c·m)`.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Dist>()
    }

    /// The transpose (reverse) graph: edge `(u, v, w)` becomes `(v, u, w)`.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0 as VertexId; self.num_edges()];
        let mut weights = vec![0 as Dist; self.num_edges()];
        let mut cursor = counts;
        for v in 0..n as VertexId {
            for (dst, w) in self.edges_from(v) {
                let slot = cursor[dst as usize];
                cursor[dst as usize] += 1;
                col_idx[slot] = v;
                weights[slot] = w;
            }
        }
        // Rows of the transpose are filled in increasing source order, so
        // they are already sorted by destination; no per-row sort needed.
        CsrGraph::from_raw(row_ptr, col_idx, weights)
    }

    /// Extract the subgraph induced by `vertices` (which must be sorted and
    /// duplicate-free). Vertex `vertices[i]` becomes vertex `i` in the
    /// result; only edges with both endpoints in the set are kept.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> CsrGraph {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        let n_all = self.num_vertices();
        let mut remap = vec![VertexId::MAX; n_all];
        for (new_id, &old_id) in vertices.iter().enumerate() {
            remap[old_id as usize] = new_id as VertexId;
        }
        let mut row_ptr = Vec::with_capacity(vertices.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut weights = Vec::new();
        for &old_id in vertices {
            for (dst, w) in self.edges_from(old_id) {
                let nd = remap[dst as usize];
                if nd != VertexId::MAX {
                    col_idx.push(nd);
                    weights.push(w);
                }
            }
            row_ptr.push(col_idx.len());
        }
        // Remapping preserves relative order (the map is monotone), so the
        // rows remain sorted.
        CsrGraph::from_raw(row_ptr, col_idx, weights)
    }

    /// Check the structural invariants the rest of the suite relies on:
    /// sorted, duplicate-free rows. Used by tests and `debug_assert!`s.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices() as VertexId;
        for v in 0..n {
            let (cols, _) = self.neighbors(v);
            if !cols.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {v} is not strictly sorted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (5), 2 -> 3 (1)
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 4);
        b.add_edge(1, 2, 2);
        b.add_edge(1, 3, 5);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.edge_weight(0, 2), Some(4));
        assert_eq!(g.edge_weight(2, 0), None);
        let (cols, ws) = g.neighbors(1);
        assert_eq!(cols, &[2, 3]);
        assert_eq!(ws, &[2, 5]);
    }

    #[test]
    fn density_matches_definition() {
        let g = diamond();
        assert!((g.density() - 5.0 / 16.0).abs() < 1e-12);
        assert_eq!(CsrGraph::empty(0).density(), 0.0);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = diamond();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&Edge::new(2, 3, 1)));
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.edge_weight(1, 0), Some(1));
        assert_eq!(t.edge_weight(3, 2), Some(1));
        assert_eq!(t.edge_weight(0, 1), None);
        t.check_invariants().unwrap();
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = diamond();
        let sub = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Kept: 0->1 (1), 1->3 (5) which becomes 1->2.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge_weight(0, 1), Some(1));
        assert_eq!(sub.edge_weight(1, 2), Some(5));
        sub.check_invariants().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn from_raw_rejects_bad_columns() {
        CsrGraph::from_raw(vec![0, 1], vec![5], vec![1]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_rejects_decreasing_row_ptr() {
        CsrGraph::from_raw(vec![0, 2, 1, 2], vec![0, 1], vec![1, 1]);
    }

    #[test]
    fn storage_bytes_counts_arrays() {
        let g = diamond();
        let expect = 5 * 8 + 5 * 4 + 5 * 4; // row_ptr(5×usize) + col(5×u32) + w(5×u32)
        assert_eq!(g.storage_bytes(), expect);
    }
}
