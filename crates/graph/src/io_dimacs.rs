//! DIMACS shortest-path (`.gr`) format.
//!
//! The 9th DIMACS Implementation Challenge distributed the USA road
//! networks (the real `usroads`-class inputs) in this format:
//!
//! ```text
//! c comment
//! p sp <n> <m>
//! a <src> <dst> <weight>     (1-indexed)
//! ```
//!
//! Reading one of those files gives the genuine article for every
//! road-network experiment in the suite.

use crate::{CsrGraph, Dist, GraphBuilder, VertexId, INF};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from DIMACS parsing.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "I/O error: {e}"),
            DimacsError::Parse(msg) => write!(f, "DIMACS parse error: {msg}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

fn perr(msg: impl Into<String>) -> DimacsError {
    DimacsError::Parse(msg.into())
}

/// Read a DIMACS `.gr` file.
pub fn read_dimacs<P: AsRef<Path>>(path: P) -> Result<CsrGraph, DimacsError> {
    read_dimacs_from(File::open(path)?)
}

/// [`read_dimacs`] over any reader.
pub fn read_dimacs_from<R: Read>(reader: R) -> Result<CsrGraph, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_m = 0usize;
    let mut seen_m = 0usize;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let mut fields = t.split_whitespace();
        match fields.next() {
            Some("c") => {}
            Some("p") => {
                if builder.is_some() {
                    return Err(perr("duplicate problem line"));
                }
                let kind = fields.next().ok_or_else(|| perr("missing problem kind"))?;
                if kind != "sp" {
                    return Err(perr(format!("unsupported problem kind '{kind}'")));
                }
                let n: usize = fields
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| perr("bad vertex count"))?;
                declared_m = fields
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| perr("bad edge count"))?;
                builder = Some(GraphBuilder::with_capacity(n, declared_m));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| perr("arc before problem line"))?;
                let src: usize = fields
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| perr(format!("bad arc line: {t}")))?;
                let dst: usize = fields
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| perr(format!("bad arc line: {t}")))?;
                let w: u64 = fields
                    .next()
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| perr(format!("bad arc line: {t}")))?;
                if src == 0 || dst == 0 || src > b.num_vertices() || dst > b.num_vertices() {
                    return Err(perr(format!("arc ({src}, {dst}) out of bounds")));
                }
                b.add_edge(
                    (src - 1) as VertexId,
                    (dst - 1) as VertexId,
                    (w.min((INF - 1) as u64)) as Dist,
                );
                seen_m += 1;
            }
            Some(other) => return Err(perr(format!("unknown line kind '{other}'"))),
            None => {}
        }
    }
    let builder = builder.ok_or_else(|| perr("missing problem line"))?;
    if seen_m != declared_m {
        return Err(perr(format!("expected {declared_m} arcs, found {seen_m}")));
    }
    Ok(builder.build())
}

/// Write a graph as a DIMACS `.gr` file.
pub fn write_dimacs<P: AsRef<Path>>(path: P, g: &CsrGraph) -> Result<(), DimacsError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "c written by apsp-graph")?;
    writeln!(w, "p sp {} {}", g.num_vertices(), g.num_edges())?;
    for e in g.edges() {
        writeln!(w, "a {} {} {}", e.src + 1, e.dst + 1, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "c tiny road fragment\n\
p sp 4 5\n\
a 1 2 7\n\
a 2 1 7\n\
a 2 3 2\n\
a 3 4 11\n\
a 4 1 3\n";

    #[test]
    fn reads_sample() {
        let g = read_dimacs_from(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.edge_weight(0, 1), Some(7));
        assert_eq!(g.edge_weight(3, 0), Some(3));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn rejects_arc_count_mismatch() {
        let text = "p sp 2 2\na 1 2 5\n";
        let err = read_dimacs_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 arcs"));
    }

    #[test]
    fn rejects_out_of_bounds_and_zero_ids() {
        for bad in ["p sp 2 1\na 0 1 5\n", "p sp 2 1\na 1 3 5\n"] {
            assert!(read_dimacs_from(bad.as_bytes()).is_err());
        }
    }

    #[test]
    fn rejects_arc_before_header_and_non_sp() {
        assert!(read_dimacs_from("a 1 2 3\n".as_bytes()).is_err());
        assert!(read_dimacs_from("p max 2 1\na 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let g = read_dimacs_from(SAMPLE.as_bytes()).unwrap();
        let dir = std::env::temp_dir().join("apsp_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.gr");
        write_dimacs(&path, &g).unwrap();
        let g2 = read_dimacs(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c a\n\nc b\np sp 2 1\nc mid\na 1 2 4\n";
        let g = read_dimacs_from(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
