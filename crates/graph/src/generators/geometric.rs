//! Random geometric graphs — road-network analogs.
//!
//! Vertices are dropped uniformly in the unit square and connected when
//! within radius `r`; weights are proportional to Euclidean distance (as
//! road segments are). Geometric graphs have `O(√n)`-ish separators, so
//! they stand in for the paper's `usroads` / `*_osm` / census graphs.

use super::WeightRange;
use crate::{CsrGraph, Dist, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random geometric graph: `n` points in `[0,1]²`, undirected edges between
/// pairs closer than `radius`, weight scaled from the Euclidean distance
/// into the given [`WeightRange`].
///
/// A uniform grid of cell size `radius` keeps neighbour search `O(n)`
/// expected instead of `O(n²)`.
pub fn random_geometric(n: usize, radius: f64, weights: WeightRange, seed: u64) -> CsrGraph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        bins[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let span = (weights.hi - weights.lo) as f64;
    let mut builder = GraphBuilder::new(n).symmetric(true);
    let r2 = radius * radius;
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let (nx, ny) = (cx as i64 + dx, cy as i64 + dy);
                if nx < 0 || ny < 0 || nx as usize >= cells || ny as usize >= cells {
                    continue;
                }
                for &j in &bins[ny as usize * cells + nx as usize] {
                    // Emit each undirected pair once; symmetric(true)
                    // creates the reverse direction.
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    if d2 <= r2 {
                        let frac = d2.sqrt() / radius; // in [0, 1]
                        let w = weights.lo + (frac * span).round() as Dist;
                        builder.add_edge(i as VertexId, j, w.clamp(weights.lo, weights.hi));
                    }
                }
            }
        }
    }
    builder.build()
}

/// Choose the radius that gives an expected average degree `deg` for `n`
/// points in the unit square: `E[deg] ≈ n · π · r²`.
pub fn radius_for_avg_degree(n: usize, deg: f64) -> f64 {
    assert!(n > 0 && deg > 0.0);
    (deg / (n as f64 * std::f64::consts::PI)).sqrt().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn average_degree_near_target() {
        let n = 2000;
        let r = radius_for_avg_degree(n, 6.0);
        let g = random_geometric(n, r, WeightRange::default(), 17);
        let avg = g.num_edges() as f64 / n as f64;
        assert!((4.0..8.0).contains(&avg), "avg out-degree = {avg}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn weights_scale_with_distance() {
        let g = random_geometric(500, 0.08, WeightRange::new(1, 1000), 3);
        // All weights must respect the range.
        assert!(g.edges().all(|e| (1..=1000).contains(&e.weight)));
        // And they should not all be equal (they encode distance).
        let first = g.edges().next().unwrap().weight;
        assert!(g.edges().any(|e| e.weight != first));
    }

    #[test]
    fn symmetric_structure() {
        let g = random_geometric(300, 0.1, WeightRange::default(), 5);
        for e in g.edges() {
            assert_eq!(g.edge_weight(e.dst, e.src), Some(e.weight));
        }
    }

    #[test]
    fn deterministic() {
        let a = random_geometric(200, 0.1, WeightRange::default(), 8);
        let b = random_geometric(200, 0.1, WeightRange::default(), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_radius_connects_everything() {
        let g = random_geometric(100, 1.0, WeightRange::default(), 1);
        assert_eq!(stats::connected_components(&g), 1);
        // Radius 1 covers most of the unit square (diameter √2), so the
        // graph is close to complete.
        assert!(g.num_edges() > (100 * 99) / 2, "m = {}", g.num_edges());
    }

    #[test]
    fn no_self_loops() {
        let g = random_geometric(200, 0.2, WeightRange::default(), 9);
        assert!(g.edges().all(|e| e.src != e.dst));
    }
}
