//! Banded-matrix generator with random long-range fill — the analog for
//! the paper's FEM / structural-engineering matrices (pkustk14, gearbox,
//! SiO2, …): moderately dense rows clustered near the diagonal, plus
//! enough irregular fill that k-way partitions have *large* boundary sets.

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a symmetric banded graph: vertex `i` connects to `deg_band`
/// random distinct neighbours within `±bandwidth`, plus each vertex gains a
/// long-range edge with probability `fill_prob` (uniform random endpoint),
/// mimicking the off-band fill of assembled stiffness matrices.
pub fn banded(
    n: usize,
    bandwidth: usize,
    deg_band: usize,
    fill_prob: f64,
    weights: WeightRange,
    seed: u64,
) -> CsrGraph {
    assert!(bandwidth >= 1, "bandwidth must be at least 1");
    assert!((0.0..=1.0).contains(&fill_prob));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).symmetric(true).drop_self_loops(true);
    for i in 0..n {
        // In-band edges: sample with replacement; the builder folds dups.
        for _ in 0..deg_band {
            let lo = i.saturating_sub(bandwidth);
            let hi = (i + bandwidth).min(n.saturating_sub(1));
            if lo == hi {
                continue;
            }
            let j = rng.gen_range(lo..=hi);
            if j != i {
                builder.add_edge(i as VertexId, j as VertexId, weights.sample(&mut rng));
            }
        }
        // Long-range fill.
        if n > 1 && rng.gen::<f64>() < fill_prob {
            let mut j = rng.gen_range(0..n);
            if j == i {
                j = (j + 1) % n;
            }
            builder.add_edge(i as VertexId, j as VertexId, weights.sample(&mut rng));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_band_without_fill() {
        let bw = 8;
        let g = banded(500, bw, 6, 0.0, WeightRange::default(), 1);
        for e in g.edges() {
            let gap = (e.src as i64 - e.dst as i64).unsigned_abs() as usize;
            assert!(gap <= bw, "edge ({}, {}) outside band", e.src, e.dst);
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn fill_creates_long_range_edges() {
        let bw = 4;
        let g = banded(1000, bw, 4, 0.5, WeightRange::default(), 2);
        let long = g
            .edges()
            .filter(|e| (e.src as i64 - e.dst as i64).unsigned_abs() as usize > bw)
            .count();
        assert!(
            long > 100,
            "expected substantial long-range fill, got {long}"
        );
    }

    #[test]
    fn symmetric() {
        let g = banded(200, 5, 4, 0.2, WeightRange::default(), 3);
        for e in g.edges() {
            assert_eq!(g.edge_weight(e.dst, e.src), Some(e.weight));
        }
    }

    #[test]
    fn deterministic() {
        let a = banded(100, 3, 3, 0.1, WeightRange::default(), 4);
        let b = banded(100, 3, 3, 0.1, WeightRange::default(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let g = banded(100, 2, 5, 0.3, WeightRange::default(), 5);
        assert!(g.edges().all(|e| e.src != e.dst));
    }

    #[test]
    fn tiny_inputs() {
        let g = banded(1, 1, 2, 0.5, WeightRange::default(), 6);
        assert_eq!(g.num_edges(), 0);
        let g2 = banded(2, 1, 2, 0.0, WeightRange::default(), 6);
        assert!(g2.num_edges() <= 2);
    }
}
