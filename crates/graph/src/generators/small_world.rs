//! Watts–Strogatz small-world generator.
//!
//! Starts from a ring lattice (each vertex joined to its `k` nearest
//! neighbours) and rewires each edge with probability `beta`. At
//! `beta = 0` the graph is a high-diameter lattice (boundary-algorithm
//! territory); a few percent of rewiring collapses the diameter while
//! keeping local structure — a family that stress-tests the selector's
//! separator classification between its two sparse regimes.

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Watts–Strogatz graph: ring lattice of `n` vertices with `k` nearest
/// neighbours each (`k` even, `k < n`), each lattice edge rewired with
/// probability `beta` to a uniform random endpoint.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, weights: WeightRange, seed: u64) -> CsrGraph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k)
        .symmetric(true)
        .drop_self_loops(true);
    for v in 0..n {
        for hop in 1..=(k / 2) {
            let mut u = (v + hop) % n;
            if rng.gen::<f64>() < beta {
                // Rewire: new endpoint, avoiding a self-loop (multi-edges
                // fold in the builder as usual).
                u = rng.gen_range(0..n);
                if u == v {
                    u = (u + 1) % n;
                }
            }
            b.add_edge(v as VertexId, u as VertexId, weights.sample(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn lattice_when_beta_zero() {
        let g = watts_strogatz(20, 4, 0.0, WeightRange::default(), 1);
        // Ring lattice: every vertex has exactly k undirected neighbours.
        for v in 0..20u32 {
            assert_eq!(g.out_degree(v), 4, "vertex {v}");
        }
        assert_eq!(stats::connected_components(&g), 1);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let n = 400;
        let hops = |g: &CsrGraph| {
            // BFS hop count from 0 to the antipode.
            let mut dist = vec![usize::MAX; n];
            let mut q = std::collections::VecDeque::from([0u32]);
            dist[0] = 0;
            while let Some(v) = q.pop_front() {
                for (u, _) in g.edges_from(v) {
                    if dist[u as usize] == usize::MAX {
                        dist[u as usize] = dist[v as usize] + 1;
                        q.push_back(u);
                    }
                }
            }
            dist[n / 2]
        };
        let lattice = watts_strogatz(n, 4, 0.0, WeightRange::default(), 2);
        let small_world = watts_strogatz(n, 4, 0.1, WeightRange::default(), 2);
        let (d_lat, d_sw) = (hops(&lattice), hops(&small_world));
        assert!(d_sw * 3 < d_lat, "lattice {d_lat} vs small-world {d_sw}");
    }

    #[test]
    fn deterministic_and_canonical() {
        let a = watts_strogatz(100, 6, 0.2, WeightRange::default(), 9);
        let b = watts_strogatz(100, 6, 0.2, WeightRange::default(), 9);
        assert_eq!(a, b);
        a.check_invariants().unwrap();
        assert!(a.edges().all(|e| e.src != e.dst));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, WeightRange::default(), 0);
    }
}
