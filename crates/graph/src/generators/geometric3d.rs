//! 3-D random geometric graphs — volumetric-mesh analogs.
//!
//! FEM meshes over 3-D domains (the paper's `fe_tooth`, `stomach`) have
//! `O(n^{2/3})` separators — bigger than planar `O(√n)`, smaller than
//! expander Ω(n). A 3-D disk graph reproduces that intermediate regime,
//! exercising the selector between its small-separator formula and the
//! `N_op · c_unit` model.

use super::WeightRange;
use crate::{CsrGraph, Dist, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random geometric graph in the unit cube: undirected edges between
/// point pairs within `radius`, weights scaled from Euclidean length.
pub fn random_geometric_3d(n: usize, radius: f64, weights: WeightRange, seed: u64) -> CsrGraph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [rng.gen(), rng.gen(), rng.gen()]).collect();
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells * cells * cells];
    let bin_idx = |p: &[f64; 3]| (cell_of(p[2]) * cells + cell_of(p[1])) * cells + cell_of(p[0]);
    for (i, p) in pts.iter().enumerate() {
        bins[bin_idx(p)].push(i as u32);
    }
    let span = (weights.hi - weights.lo) as f64;
    let mut b = GraphBuilder::new(n).symmetric(true);
    let r2 = radius * radius;
    for (i, p) in pts.iter().enumerate() {
        let (cx, cy, cz) = (cell_of(p[0]), cell_of(p[1]), cell_of(p[2]));
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (nx, ny, nz) = (cx as i64 + dx, cy as i64 + dy, cz as i64 + dz);
                    if nx < 0
                        || ny < 0
                        || nz < 0
                        || nx as usize >= cells
                        || ny as usize >= cells
                        || nz as usize >= cells
                    {
                        continue;
                    }
                    for &j in &bins[(nz as usize * cells + ny as usize) * cells + nx as usize] {
                        if (j as usize) <= i {
                            continue;
                        }
                        let q = &pts[j as usize];
                        let d2 =
                            (q[0] - p[0]).powi(2) + (q[1] - p[1]).powi(2) + (q[2] - p[2]).powi(2);
                        if d2 <= r2 {
                            let frac = d2.sqrt() / radius;
                            let w = weights.lo + (frac * span).round() as Dist;
                            b.add_edge(i as VertexId, j, w.clamp(weights.lo, weights.hi));
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Radius giving expected average degree `deg` in the unit cube:
/// `E[deg] ≈ n · (4/3)π r³`.
pub fn radius_for_avg_degree_3d(n: usize, deg: f64) -> f64 {
    assert!(n > 0 && deg > 0.0);
    (deg / (n as f64 * 4.0 / 3.0 * std::f64::consts::PI))
        .cbrt()
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_near_target() {
        let n = 3000;
        let r = radius_for_avg_degree_3d(n, 12.0);
        let g = random_geometric_3d(n, r, WeightRange::default(), 5);
        let avg = g.num_edges() as f64 / n as f64;
        assert!((8.0..16.0).contains(&avg), "avg degree = {avg}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn symmetric_and_loop_free() {
        let g = random_geometric_3d(400, 0.15, WeightRange::default(), 7);
        assert!(g.edges().all(|e| e.src != e.dst));
        for e in g.edges() {
            assert_eq!(g.edge_weight(e.dst, e.src), Some(e.weight));
        }
    }

    #[test]
    fn deterministic() {
        let a = random_geometric_3d(200, 0.2, WeightRange::default(), 3);
        let b = random_geometric_3d(200, 0.2, WeightRange::default(), 3);
        assert_eq!(a, b);
    }
}
