//! Star / hub-and-spoke generator: a few extreme-degree hubs.
//!
//! Hub vertices stress the paths the power-law families only sample: the
//! Johnson implementation's dynamic-parallelism offload (a hub's
//! out-degree dwarfs `heavy_degree_threshold`), Near-Far bucket skew, and
//! the boundary algorithm's partitioner (a hub touches every component).
//! Every spoke connects bidirectionally to one pseudo-randomly chosen
//! hub, and the hubs form a bidirectional ring so the graph is strongly
//! connected whenever `n > 0`.

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Star graph on `n` vertices with `hubs ≥ 1` hub vertices (ids
/// `0..hubs`). With `hubs == 1` this is the textbook star; larger values
/// give a multi-hub "dandelion" whose hubs still have degree `Θ(n/hubs)`.
pub fn star(n: usize, hubs: usize, weights: WeightRange, seed: u64) -> CsrGraph {
    assert!(hubs >= 1, "a star needs at least one hub");
    let mut rng = SmallRng::seed_from_u64(seed);
    let hubs = hubs.min(n.max(1));
    let mut b = GraphBuilder::with_capacity(n, 2 * n + 2 * hubs);
    if n == 0 {
        return b.build();
    }
    // Hub ring (a single hub needs no ring; two hubs get one two-way link).
    if hubs > 1 {
        for h in 0..hubs as VertexId {
            let next = ((h + 1) % hubs as VertexId) as VertexId;
            let w = weights.sample(&mut rng);
            b.add_edge(h, next, w);
            b.add_edge(next, h, w);
        }
    }
    // Spokes.
    for v in hubs..n {
        let hub = rng.gen_range(0..hubs) as VertexId;
        let w = weights.sample(&mut rng);
        b.add_edge(hub, v as VertexId, w);
        b.add_edge(v as VertexId, hub, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn single_hub_touches_everyone() {
        let g = star(200, 1, WeightRange::default(), 3);
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(g.out_degree(0), 199);
        assert!((1..200).all(|v| g.out_degree(v as VertexId) == 1));
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn multi_hub_degrees_stay_extreme() {
        let n = 300;
        let hubs = 3;
        let g = star(n, hubs, WeightRange::default(), 5);
        for h in 0..hubs as VertexId {
            // Ring contributes 2; spokes split ~n/hubs ways.
            assert!(
                g.out_degree(h) > n / hubs / 2,
                "hub {h} degree {}",
                g.out_degree(h)
            );
        }
        assert_eq!(connected_components(&g), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_and_tiny_cases() {
        assert_eq!(
            star(120, 2, WeightRange::default(), 9),
            star(120, 2, WeightRange::default(), 9)
        );
        assert_eq!(star(0, 1, WeightRange::default(), 0).num_vertices(), 0);
        let one = star(1, 1, WeightRange::default(), 0);
        assert_eq!((one.num_vertices(), one.num_edges()), (1, 0));
        // More hubs than vertices degrades to a plain ring.
        let tiny = star(2, 5, WeightRange::default(), 1);
        assert_eq!(connected_components(&tiny), 1);
    }
}
