//! R-MAT (recursive matrix) scale-free graph generator.
//!
//! Follows Chakrabarti, Zhan & Faloutsos (SDM 2004): each edge picks its
//! (row, column) cell by recursively descending a 2×2 partition of the
//! adjacency matrix with probabilities `(a, b, c, d)`. Skewed parameters
//! produce the heavy-tailed degree distributions the paper's Table V and
//! Table VI sweeps rely on.

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Per-level probability noise, as in the Graph500 reference
    /// implementation, to avoid exactly self-similar structure.
    pub noise: f64,
}

impl RmatParams {
    /// The classic skewed parameters (a=0.45, b=0.22, c=0.22, d=0.11)
    /// producing scale-free graphs.
    pub fn scale_free() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
            noise: 0.1,
        }
    }

    /// Uniform parameters (all 0.25): degenerates to Erdős–Rényi-like
    /// structure; useful as an ablation.
    pub fn uniform() -> Self {
        RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
        }
    }

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1 (got {s})"
        );
        assert!((0.0..=1.0).contains(&self.noise));
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams::scale_free()
    }
}

/// Generate an R-MAT graph with `n` vertices (rounded up internally to a
/// power of two for the recursion, then mapped back down) and `m` directed
/// edges before multi-edge folding. Self-loops are dropped to match the
/// edge-count conventions of the paper's tables.
pub fn rmat(n: usize, m: usize, params: RmatParams, weights: WeightRange, seed: u64) -> CsrGraph {
    params.validate();
    assert!(n >= 2, "R-MAT needs at least two vertices");
    let levels = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2 n)
    let side = 1usize << levels;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m).drop_self_loops(true);
    let mut emitted = 0usize;
    // Rejection-sample cells that land outside [0, n) when n is not a
    // power of two; the acceptance rate is >= (n/side)^2 >= 1/4.
    while emitted < m {
        let (mut row, mut col) = (0usize, 0usize);
        let mut half = side >> 1;
        for _ in 0..levels {
            // Jitter quadrant probabilities per level.
            let jitter = |p: f64, rng: &mut SmallRng| {
                if params.noise > 0.0 {
                    let u: f64 = rng.gen_range(-params.noise..=params.noise);
                    (p * (1.0 + u)).max(0.0)
                } else {
                    p
                }
            };
            let a = jitter(params.a, &mut rng);
            let b = jitter(params.b, &mut rng);
            let c = jitter(params.c, &mut rng);
            let d = jitter(params.d, &mut rng);
            let total = a + b + c + d;
            let r: f64 = rng.gen_range(0.0..total);
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                col += half;
            } else if r < a + b + c {
                row += half;
            } else {
                row += half;
                col += half;
            }
            half >>= 1;
        }
        if row < n && col < n && row != col {
            builder.add_edge(row as VertexId, col as VertexId, weights.sample(&mut rng));
            emitted += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn produces_requested_size() {
        let g = rmat(1000, 5000, RmatParams::default(), WeightRange::default(), 7);
        assert_eq!(g.num_vertices(), 1000);
        // Multi-edge folding can only shrink the edge count.
        assert!(g.num_edges() <= 5000);
        assert!(
            g.num_edges() > 3000,
            "folding should not dominate at this density"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = rmat(256, 1024, RmatParams::default(), WeightRange::default(), 42);
        let b = rmat(256, 1024, RmatParams::default(), WeightRange::default(), 42);
        assert_eq!(a, b);
        let c = rmat(256, 1024, RmatParams::default(), WeightRange::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_free_is_more_skewed_than_uniform() {
        let sf = rmat(
            2048,
            16384,
            RmatParams::scale_free(),
            WeightRange::default(),
            1,
        );
        let un = rmat(
            2048,
            16384,
            RmatParams::uniform(),
            WeightRange::default(),
            1,
        );
        let max_sf = stats::degree_stats(&sf).max_out;
        let max_un = stats::degree_stats(&un).max_out;
        assert!(
            max_sf > 2 * max_un,
            "scale-free max degree {max_sf} should dwarf uniform {max_un}"
        );
    }

    #[test]
    fn non_power_of_two_vertices() {
        let g = rmat(777, 3000, RmatParams::default(), WeightRange::default(), 5);
        assert_eq!(g.num_vertices(), 777);
        assert!(g
            .edges()
            .all(|e| (e.dst as usize) < 777 && (e.src as usize) < 777));
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(128, 2000, RmatParams::default(), WeightRange::default(), 3);
        assert!(g.edges().all(|e| e.src != e.dst));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        let p = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            noise: 0.0,
        };
        rmat(16, 32, p, WeightRange::default(), 0);
    }
}
