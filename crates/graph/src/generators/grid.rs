//! 2-D lattice generator — the canonical planar, small-separator family.
//!
//! An `r × c` grid has an `O(√n)` separator, which is exactly the property
//! the boundary algorithm exploits; grids (optionally with diagonal edges
//! and random edge deletions) stand in for the paper's road networks and
//! census-tract graphs.

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options for [`grid_2d`].
#[derive(Debug, Clone, Copy)]
pub struct GridOptions {
    /// Also connect diagonal neighbours (8-connectivity).
    pub diagonals: bool,
    /// Independently delete each undirected edge with this probability,
    /// roughening the lattice the way real road networks are irregular.
    pub deletion_prob: f64,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            diagonals: false,
            deletion_prob: 0.0,
        }
    }
}

/// An `rows × cols` undirected grid (each undirected edge is stored as two
/// directed edges with equal weight).
pub fn grid_2d(
    rows: usize,
    cols: usize,
    opts: GridOptions,
    weights: WeightRange,
    seed: u64,
) -> CsrGraph {
    assert!((0.0..1.0).contains(&opts.deletion_prob) || opts.deletion_prob == 0.0);
    let n = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).symmetric(true);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let add = |builder: &mut GraphBuilder, rng: &mut SmallRng, a: VertexId, b: VertexId| {
        if opts.deletion_prob == 0.0 || rng.gen::<f64>() >= opts.deletion_prob {
            builder.add_edge(a, b, weights.sample(rng));
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                add(&mut builder, &mut rng, id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                add(&mut builder, &mut rng, id(r, c), id(r + 1, c));
            }
            if opts.diagonals {
                if r + 1 < rows && c + 1 < cols {
                    add(&mut builder, &mut rng, id(r, c), id(r + 1, c + 1));
                }
                if r + 1 < rows && c > 0 {
                    add(&mut builder, &mut rng, id(r, c), id(r + 1, c - 1));
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn four_connectivity_edge_count() {
        // r×c grid: r(c-1) + c(r-1) undirected edges, ×2 directed.
        let g = grid_2d(5, 7, GridOptions::default(), WeightRange::default(), 1);
        assert_eq!(g.num_vertices(), 35);
        assert_eq!(g.num_edges(), 2 * (5 * 6 + 7 * 4));
    }

    #[test]
    fn grid_is_connected() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 2);
        assert_eq!(stats::connected_components(&g), 1);
    }

    #[test]
    fn diagonals_add_edges() {
        let base = grid_2d(6, 6, GridOptions::default(), WeightRange::default(), 3);
        let diag = grid_2d(
            6,
            6,
            GridOptions {
                diagonals: true,
                ..Default::default()
            },
            WeightRange::default(),
            3,
        );
        assert!(diag.num_edges() > base.num_edges());
    }

    #[test]
    fn deletion_thins_the_grid() {
        let opts = GridOptions {
            diagonals: false,
            deletion_prob: 0.3,
        };
        let full = grid_2d(20, 20, GridOptions::default(), WeightRange::default(), 4);
        let thin = grid_2d(20, 20, opts, WeightRange::default(), 4);
        let ratio = thin.num_edges() as f64 / full.num_edges() as f64;
        assert!((0.55..0.85).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn symmetric_weights() {
        let g = grid_2d(4, 4, GridOptions::default(), WeightRange::default(), 5);
        for e in g.edges() {
            assert_eq!(g.edge_weight(e.dst, e.src), Some(e.weight));
        }
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_2d(1, 8, GridOptions::default(), WeightRange::default(), 6);
        assert_eq!(line.num_edges(), 14);
        let dot = grid_2d(1, 1, GridOptions::default(), WeightRange::default(), 6);
        assert_eq!(dot.num_edges(), 0);
    }
}
