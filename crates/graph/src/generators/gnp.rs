//! Erdős–Rényi G(n, p) generator (directed), used for controlled-density
//! sweeps and as calibration input for the selector's cost models (the
//! paper calibrates the Floyd-Warshall model on "a randomly generated
//! graph").

use super::WeightRange;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Directed G(n, p): every ordered pair `(u, v)`, `u != v`, is an edge
/// independently with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes) so generation is O(m), not
/// O(n²) — essential for the sparse end of the density sweeps.
pub fn gnp(n: usize, p: f64, weights: WeightRange, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return builder.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in 0..n as VertexId {
                if u != v {
                    builder.add_edge(u, v, weights.sample(&mut rng));
                }
            }
        }
        return builder.build();
    }
    // Walk the flattened n×n adjacency matrix with geometric jumps.
    let log_1p = (1.0 - p).ln();
    let total = (n * n) as u64;
    let mut idx: i64 = -1;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log_1p).floor() as i64 + 1;
        idx += skip.max(1);
        if idx as u64 >= total {
            break;
        }
        let row = (idx as u64 / n as u64) as VertexId;
        let col = (idx as u64 % n as u64) as VertexId;
        if row != col {
            builder.add_edge(row, col, weights.sample(&mut rng));
        }
    }
    builder.build()
}

/// Directed G(n, p) targeting an expected edge count `m`:
/// `p = m / (n·(n−1))`.
pub fn gnm_expected(n: usize, m: usize, weights: WeightRange, seed: u64) -> CsrGraph {
    let pairs = (n as f64) * (n as f64 - 1.0);
    let p = if pairs > 0.0 {
        (m as f64 / pairs).min(1.0)
    } else {
        0.0
    };
    gnp(n, p, weights, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = gnp(n, p, WeightRange::default(), 11);
        let expect = (n * (n - 1)) as f64 * p;
        let m = g.num_edges() as f64;
        assert!(
            (m - expect).abs() < 0.15 * expect,
            "m = {m}, expected ≈ {expect}"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn p_zero_and_p_one() {
        let g0 = gnp(10, 0.0, WeightRange::default(), 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(10, 1.0, WeightRange::default(), 1);
        assert_eq!(g1.num_edges(), 90);
    }

    #[test]
    fn deterministic() {
        let a = gnp(100, 0.1, WeightRange::default(), 9);
        let b = gnp(100, 0.1, WeightRange::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let g = gnp(50, 0.5, WeightRange::default(), 2);
        assert!(g.edges().all(|e| e.src != e.dst));
    }

    #[test]
    fn gnm_hits_target_roughly() {
        let g = gnm_expected(400, 8000, WeightRange::default(), 4);
        let m = g.num_edges() as f64;
        assert!((m - 8000.0).abs() < 0.15 * 8000.0, "m = {m}");
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnp(0, 0.5, WeightRange::default(), 0).num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, WeightRange::default(), 0).num_edges(), 0);
    }
}
