//! Edge-list accumulation and CSR construction.

use crate::{CsrGraph, Dist, Edge, VertexId};

/// Accumulates edges and produces a canonical [`CsrGraph`].
///
/// Canonicalization folds parallel edges to their minimum weight (the only
/// one that can ever matter for shortest paths) and drops nothing else;
/// self-loops are kept unless [`GraphBuilder::drop_self_loops`] is set —
/// they are harmless for APSP (a non-negative self-loop never shortens a
/// path) but some generators want them removed to match published edge
/// counts.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    symmetric: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            symmetric: false,
            drop_self_loops: false,
        }
    }

    /// Pre-allocate space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        b.edges.reserve(m);
        b
    }

    /// Also add the reverse of every edge at build time (undirected input,
    /// as with SuiteSparse symmetric matrices and road networks).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Silently discard `v → v` edges.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Number of vertices this builder was created for.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges accumulated so far (before folding/symmetrizing).
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: Dist) {
        assert!(
            (src as usize) < self.n && (dst as usize) < self.n,
            "edge ({src}, {dst}) out of range for n = {}",
            self.n
        );
        self.edges.push(Edge::new(src, dst, weight));
    }

    /// Add every edge from an iterator.
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for e in iter {
            self.add_edge(e.src, e.dst, e.weight);
        }
    }

    /// Produce the canonical CSR graph: rows sorted by destination,
    /// parallel edges folded to minimum weight.
    pub fn build(self) -> CsrGraph {
        let GraphBuilder {
            n,
            mut edges,
            symmetric,
            drop_self_loops,
        } = self;
        if drop_self_loops {
            edges.retain(|e| e.src != e.dst);
        }
        if symmetric {
            let rev: Vec<Edge> = edges
                .iter()
                .filter(|e| e.src != e.dst)
                .map(|e| Edge::new(e.dst, e.src, e.weight))
                .collect();
            edges.extend(rev);
        }
        // Counting sort by source, then per-row sort by destination keeps
        // construction O(m log d_max) instead of a global O(m log m) sort.
        let mut row_ptr = vec![0usize; n + 1];
        for e in &edges {
            row_ptr[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let m = edges.len();
        let mut col_idx = vec![0 as VertexId; m];
        let mut weights = vec![0 as Dist; m];
        let mut cursor = row_ptr.clone();
        for e in &edges {
            let slot = cursor[e.src as usize];
            cursor[e.src as usize] += 1;
            col_idx[slot] = e.dst;
            weights[slot] = e.weight;
        }
        // Per-row: sort by destination and fold duplicates to min weight.
        let mut out_row_ptr = vec![0usize; n + 1];
        let mut out_col = Vec::with_capacity(m);
        let mut out_w = Vec::with_capacity(m);
        let mut scratch: Vec<(VertexId, Dist)> = Vec::new();
        for v in 0..n {
            let lo = row_ptr[v];
            let hi = row_ptr[v + 1];
            scratch.clear();
            scratch.extend(
                col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(weights[lo..hi].iter().copied()),
            );
            scratch.sort_unstable();
            let mut last: Option<VertexId> = None;
            for &(dst, w) in scratch.iter() {
                if last == Some(dst) {
                    let slot = out_w.len() - 1;
                    if w < out_w[slot] {
                        out_w[slot] = w;
                    }
                } else {
                    out_col.push(dst);
                    out_w.push(w);
                    last = Some(dst);
                }
            }
            out_row_ptr[v + 1] = out_col.len();
        }
        CsrGraph::from_raw(out_row_ptr, out_col, out_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_parallel_edges_to_min() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7);
        b.add_edge(0, 1, 3);
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn symmetric_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3).symmetric(true);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(1, 0), Some(2));
        assert_eq!(g.edge_weight(2, 1), Some(4));
    }

    #[test]
    fn symmetric_does_not_duplicate_self_loops() {
        let mut b = GraphBuilder::new(2).symmetric(true);
        b.add_edge(0, 0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn drop_self_loops_works() {
        let mut b = GraphBuilder::new(2).drop_self_loops(true);
        b.add_edge(0, 0, 1);
        b.add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn rows_end_up_sorted() {
        let mut b = GraphBuilder::new(5);
        for dst in [4, 1, 3, 0, 2] {
            b.add_edge(0, dst, dst + 1);
        }
        let g = b.build();
        g.check_invariants().unwrap();
        let (cols, _) = g.neighbors(0);
        assert_eq!(cols, &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn extend_and_counters() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.extend([Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        assert_eq!(b.num_vertices(), 3);
        assert_eq!(b.num_raw_edges(), 2);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
