//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's real inputs come from the SuiteSparse Matrix Collection,
//! which distributes Matrix Market coordinate files. This loader accepts
//! the common variants (`pattern` / `integer` / `real`, `general` /
//! `symmetric`) so real matrices can be dropped into the benchmark harness
//! in place of the synthetic analogs.

use crate::{CsrGraph, Dist, GraphBuilder, VertexId};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// How to turn a matrix value into an edge weight.
#[derive(Debug, Clone, Copy)]
pub enum WeightMode {
    /// Ignore stored values; every edge gets this weight (common for
    /// pattern matrices and for APSP hop-count studies).
    Unit(Dist),
    /// Use `ceil(|value| * scale)` clamped to `[1, INF)`; SuiteSparse
    /// stiffness values are floats of wildly varying magnitude, so a scale
    /// plus clamp keeps them usable as integer distances.
    ScaledAbs {
        /// Multiplier applied before rounding.
        scale: f64,
    },
}

/// Read a Matrix Market coordinate file into a graph.
///
/// * `symmetric` headers mirror every off-diagonal entry,
/// * entries on the diagonal become self-loops (harmless for APSP),
/// * duplicate entries fold to minimum weight via [`GraphBuilder`].
pub fn read_matrix_market<P: AsRef<Path>>(path: P, mode: WeightMode) -> Result<CsrGraph, MtxError> {
    let file = File::open(path)?;
    read_matrix_market_from(BufReader::new(file), mode)
}

/// [`read_matrix_market`] over any reader (used by tests and in-memory
/// fixtures).
pub fn read_matrix_market_from<R: Read>(reader: R, mode: WeightMode) -> Result<CsrGraph, MtxError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(parse_err(format!(
            "unsupported header (need 'matrix coordinate'): {header}"
        )));
    }
    let is_pattern = header_lc.contains("pattern");
    let is_symmetric = header_lc.contains("symmetric") || header_lc.contains("skew-symmetric");

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let mut it = size_line.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    let cols: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    let nnz: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    if rows != cols {
        return Err(parse_err(format!(
            "adjacency matrix must be square, got {rows}×{cols}"
        )));
    }

    let mut builder = GraphBuilder::with_capacity(rows, if is_symmetric { 2 * nnz } else { nnz })
        .symmetric(is_symmetric);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut f = t.split_whitespace();
        let r: usize = f
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t}")))?;
        let c: usize = f
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t}")))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("entry ({r}, {c}) out of bounds")));
        }
        let w = match mode {
            WeightMode::Unit(w) => w,
            WeightMode::ScaledAbs { scale } => {
                if is_pattern {
                    1
                } else {
                    let v: f64 = f
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| parse_err(format!("missing value: {t}")))?;
                    let scaled = (v.abs() * scale).ceil();
                    (scaled as Dist).clamp(1, crate::INF - 1)
                }
            }
        };
        builder.add_edge((r - 1) as VertexId, (c - 1) as VertexId, w);
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(builder.build())
}

/// Write a graph as a `general integer` Matrix Market coordinate file.
pub fn write_matrix_market<P: AsRef<Path>>(path: P, g: &CsrGraph) -> Result<(), MtxError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate integer general")?;
    writeln!(w, "% written by apsp-graph")?;
    writeln!(
        w,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.src + 1, e.dst + 1, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate integer general\n\
% a comment\n\
3 3 3\n\
1 2 5\n\
2 3 7\n\
3 1 2\n";

    const SYMMETRIC: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
2 2 1\n\
2 1 3.5\n";

    const PATTERN: &str = "%%MatrixMarket matrix coordinate pattern general\n\
2 2 2\n\
1 2\n\
2 1\n";

    #[test]
    fn reads_general_integer() {
        let g = read_matrix_market_from(GENERAL.as_bytes(), WeightMode::ScaledAbs { scale: 1.0 })
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(2, 0), Some(2));
    }

    #[test]
    fn symmetric_mirrors_entries() {
        let g = read_matrix_market_from(SYMMETRIC.as_bytes(), WeightMode::ScaledAbs { scale: 2.0 })
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(7)); // ceil(3.5 * 2)
        assert_eq!(g.edge_weight(1, 0), Some(7));
    }

    #[test]
    fn pattern_gets_unit_weights() {
        let g = read_matrix_market_from(PATTERN.as_bytes(), WeightMode::Unit(9)).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(9));
        assert_eq!(g.edge_weight(1, 0), Some(9));
    }

    #[test]
    fn rejects_non_square() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 3 1\n1 2 1\n";
        let err = read_matrix_market_from(text.as_bytes(), WeightMode::Unit(1)).unwrap_err();
        assert!(err.to_string().contains("square"));
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 1\n";
        let err = read_matrix_market_from(text.as_bytes(), WeightMode::Unit(1)).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n3 1 1\n";
        assert!(read_matrix_market_from(text.as_bytes(), WeightMode::Unit(1)).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let g = read_matrix_market_from(GENERAL.as_bytes(), WeightMode::ScaledAbs { scale: 1.0 })
            .unwrap();
        let dir = std::env::temp_dir().join("apsp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        write_matrix_market(&path, &g).unwrap();
        let g2 = read_matrix_market(&path, WeightMode::ScaledAbs { scale: 1.0 }).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }
}
