//! Weighted-graph substrate for the out-of-core APSP suite.
//!
//! This crate provides everything the APSP algorithms consume:
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency storage with `u32`
//!   vertex ids and non-negative `u32` edge weights,
//! * [`GraphBuilder`] — edge-list accumulation with multi-edge folding and
//!   optional symmetrization,
//! * [`generators`] — R-MAT, G(n,p), grid, random-geometric and banded
//!   generators plus the synthetic SuiteSparse analogs used by the paper
//!   reproduction ([`suite`]),
//! * [`io`] — Matrix Market reading/writing so real SuiteSparse matrices
//!   drop in when available,
//! * [`stats`] — density, degree distributions and connected components.
//!
//! Distances use [`Dist`] (`u32`) with [`INF`] as the "unreachable"
//! sentinel. `INF` is `u32::MAX / 4` so that `a.saturating_add(b)` of two
//! in-range distances can never wrap past `u32::MAX`, and `INF + w` for an
//! edge weight stays `>= INF` under [`dist_add`]'s clamping.

pub mod builder;
pub mod csr;
pub mod generators;
pub mod io;
pub mod io_dimacs;
pub mod stats;
pub mod suite;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;

/// Distance value type used throughout the suite (the paper uses `int` so
/// that CUDA `atomicMin` applies; we mirror that with `u32`).
pub type Dist = u32;

/// Vertex identifier.
pub type VertexId = u32;

/// "Unreachable" distance sentinel. Any true shortest distance is `< INF`.
///
/// Chosen as `u32::MAX / 4` so sums of two values `<= INF` never overflow
/// `u32` even before clamping.
pub const INF: Dist = u32::MAX / 4;

/// Saturating min-plus addition: `INF` absorbs, and any sum that reaches or
/// exceeds `INF` is clamped back to `INF` so the sentinel is preserved.
#[inline(always)]
pub fn dist_add(a: Dist, b: Dist) -> Dist {
    let s = a.saturating_add(b);
    if s >= INF {
        INF
    } else {
        s
    }
}

/// An edge of a weighted directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Non-negative weight.
    pub weight: Dist,
}

impl Edge {
    /// Convenience constructor.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId, weight: Dist) -> Self {
        Edge { src, dst, weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_add_clamps_to_inf() {
        assert_eq!(dist_add(INF, 0), INF);
        assert_eq!(dist_add(INF, INF), INF);
        assert_eq!(dist_add(INF - 1, 1), INF);
        assert_eq!(dist_add(1, 2), 3);
        assert_eq!(dist_add(0, 0), 0);
    }

    #[test]
    fn dist_add_never_wraps() {
        // Even the largest representable operands must not wrap around.
        assert_eq!(dist_add(u32::MAX, u32::MAX), INF);
        assert!(dist_add(INF, u32::MAX) >= INF);
    }

    #[test]
    fn inf_leaves_summation_headroom() {
        // Two INFs must fit in u32 without wrapping — the invariant the
        // sentinel choice is built on.
        assert!(INF.checked_add(INF).is_some());
    }
}
