//! Synthetic analogs of the paper's input-graph suite (Tables III and IV).
//!
//! The paper evaluates on 29 SuiteSparse matrices. Those files are not
//! bundled here, so each matrix is replaced by a generated analog matched
//! on (a) its structural family — road network / census tract / OSM map /
//! FEM-stiffness / web-or-biology — (b) its vertex count, and (c) its
//! average degree. Family determines separator behaviour: geometric and
//! grid analogs keep the `O(√n)` separators of the paper's
//! "small separator" class, banded-with-fill and R-MAT analogs keep the
//! large boundary sets of the "other sparse" class.
//!
//! **Scaling.** At paper scale the output matrix of the smallest graph is
//! ~19 GB; a laptop-scale run divides `n` by [`SuiteConfig::scale`]
//! (default 16) and divides `m` by the same factor, preserving average
//! degree and separator character. Density then *rises* by the scale
//! factor, so the selector's absolute density thresholds must be scaled by
//! the same factor — the harness does this via the selector's
//! configuration; see `apsp-core`.

use crate::generators::{
    banded, gnm_expected, grid_2d, radius_for_avg_degree, random_geometric, rmat, GridOptions,
    RmatParams, WeightRange,
};
use crate::CsrGraph;

/// Structural family used to synthesize an analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Random geometric graph (road networks, census tracts) —
    /// small separator.
    Geometric,
    /// Thinned 2-D grid (OSM street maps) — small separator.
    GridRoad,
    /// Banded matrix with random fill (FEM / structural matrices) —
    /// large separator.
    Banded,
    /// R-MAT scale-free (web graphs, `cage`-style biology matrices) —
    /// large separator.
    Rmat,
    /// Erdős–Rényi (fallback for matrices without clear structure) —
    /// large separator.
    Random,
}

/// One row of Table III or Table IV.
#[derive(Debug, Clone, Copy)]
pub struct SuiteEntry {
    /// SuiteSparse matrix name as printed in the paper (a few names are
    /// garbled in the source scan; the closest SuiteSparse name is used).
    pub name: &'static str,
    /// Paper-reported vertex count.
    pub n_paper: usize,
    /// Paper-reported edge count.
    pub m_paper: usize,
    /// Paper's "small separator?" classification (Table III column 2).
    pub small_separator: bool,
    /// Whether the n×n output fits in the host's RAM in the paper's setup
    /// (Table III yes, Table IV no).
    pub output_fits_host: bool,
    /// Generator family for the analog.
    pub family: Family,
}

/// Table III — the 19 graphs whose output fits in host memory.
pub const TABLE3: &[SuiteEntry] = &[
    // "Other sparse" graphs (FEM / structural / meshes): large separators.
    entry("pkustk14", 152_000, 14_988_000, false, true, Family::Banded),
    entry("SiO2", 155_000, 11_439_000, false, true, Family::Banded),
    entry("bmwcra_1", 149_000, 10_793_000, false, true, Family::Banded),
    entry("gearbox", 154_000, 9_234_000, false, true, Family::Banded),
    entry("oilpan", 74_000, 3_071_000, false, true, Family::Banded),
    entry("net4-1", 88_000, 2_530_000, false, true, Family::Random),
    entry("fe_tooth", 78_000, 905_000, false, true, Family::Banded),
    entry("onera_dual", 86_000, 505_000, false, true, Family::Banded),
    // "Small separator" graphs (roads, OSM, census tracts).
    // Road networks have degree ≈ 2.6 — far below the connectivity
    // threshold of a random geometric graph, which would shatter into
    // chained dust with vacuously small separators. Thinned grids keep
    // both the degree and the genuine O(√n) separator structure.
    entry("usroads-48", 126_000, 324_000, true, true, Family::GridRoad),
    entry("usroads", 129_000, 331_000, true, true, Family::GridRoad),
    entry(
        "luxembourg_osm",
        115_000,
        239_000,
        true,
        true,
        Family::GridRoad,
    ),
    // Census-tract adjacency graphs are planar (polygon adjacency);
    // near-planar thinned grids keep their thin O(√n) separators, which a
    // thick geometric disk graph would not.
    entry("ri2010", 86_000, 428_000, true, true, Family::GridRoad),
    entry("nm2010", 169_000, 831_000, true, true, Family::GridRoad),
    entry("ms2010", 70_000, 335_000, true, true, Family::GridRoad),
    entry("md2010", 145_000, 700_000, true, true, Family::GridRoad),
    entry("id2010", 150_000, 728_000, true, true, Family::GridRoad),
    entry("nd2010", 134_000, 626_000, true, true, Family::GridRoad),
    entry("nj2010", 170_000, 830_000, true, true, Family::GridRoad),
    entry("wv2010", 135_000, 663_000, true, true, Family::GridRoad),
];

/// Table IV — the 10 graphs whose output exceeds host memory.
pub const TABLE4: &[SuiteEntry] = &[
    entry(
        "af_shell1",
        505_000,
        18_094_000,
        false,
        false,
        Family::Banded,
    ),
    entry("cage13", 445_000, 7_479_000, false, false, Family::Rmat),
    entry("kim2", 457_000, 11_330_000, false, false, Family::Banded),
    entry("language", 256_000, 2_500_000, false, false, Family::Rmat),
    entry("pwtk", 218_000, 11_852_000, false, false, Family::Banded),
    entry("stanford", 282_000, 2_312_000, false, false, Family::Rmat),
    entry("stomach", 213_000, 3_022_000, false, false, Family::Banded),
    entry("troll", 213_000, 12_199_000, false, false, Family::Banded),
    entry("boyd2", 466_000, 1_780_000, false, false, Family::Rmat),
    entry("CO", 221_000, 7_887_000, false, false, Family::Banded),
];

const fn entry(
    name: &'static str,
    n_paper: usize,
    m_paper: usize,
    small_separator: bool,
    output_fits_host: bool,
    family: Family,
) -> SuiteEntry {
    SuiteEntry {
        name,
        n_paper,
        m_paper,
        small_separator,
        output_fits_host,
        family,
    }
}

/// Scaling configuration for analog generation.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Divide paper `n` and `m` by this factor. 1 = paper scale.
    pub scale: usize,
    /// RNG seed base; each entry perturbs it by its index.
    pub seed: u64,
    /// Edge-weight range.
    pub weights: WeightRange,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            scale: 16,
            seed: 0xAB5F,
            weights: WeightRange::new(1, 100),
        }
    }
}

impl SuiteEntry {
    /// Scaled vertex count under `cfg`.
    pub fn scaled_n(&self, cfg: &SuiteConfig) -> usize {
        (self.n_paper / cfg.scale).max(64)
    }

    /// Scaled edge target under `cfg`.
    pub fn scaled_m(&self, cfg: &SuiteConfig) -> usize {
        let n = self.scaled_n(cfg);
        // Preserve the paper's average degree at the scaled vertex count.
        let avg_deg = self.m_paper as f64 / self.n_paper as f64;
        (avg_deg * n as f64) as usize
    }

    /// Generate the analog graph.
    pub fn generate(&self, cfg: &SuiteConfig) -> CsrGraph {
        let n = self.scaled_n(cfg);
        let m = self.scaled_m(cfg);
        let avg_deg = m as f64 / n as f64;
        let seed = cfg.seed ^ fxhash(self.name);
        match self.family {
            Family::Geometric => {
                let r = radius_for_avg_degree(n, avg_deg.max(3.0));
                let g = random_geometric(n, r, cfg.weights, seed);
                // Road networks are connected; a sparse disk graph sheds
                // isolated pockets that must be chained back in.
                crate::generators::ensure_connected(&g, cfg.weights, seed ^ 0xC0)
            }
            Family::GridRoad => {
                let side = (n as f64).sqrt().round() as usize;
                // A 4-connected grid has ≈ 4 directed edges per vertex and
                // an 8-connected one ≈ 8; pick connectivity by the target
                // degree and delete down to it. The keep floor of 0.55
                // stays above the percolation threshold so a giant
                // component survives.
                let diagonals = avg_deg > 4.2;
                let full_deg = if diagonals { 8.0 } else { 4.0 };
                let keep = (avg_deg / full_deg).clamp(0.55, 1.0);
                let g = grid_2d(
                    side,
                    side.max(1),
                    GridOptions {
                        diagonals,
                        deletion_prob: 1.0 - keep,
                    },
                    cfg.weights,
                    seed,
                );
                crate::generators::ensure_connected(&g, cfg.weights, seed ^ 0xC1)
            }
            Family::Banded => {
                // Symmetrization doubles directed degree; band width wide
                // enough that k-way partitions cut many edges.
                let deg_band = ((avg_deg / 2.0).round() as usize).max(2);
                let bandwidth = (deg_band * 8).max(16);
                banded(n, bandwidth, deg_band, 0.3, cfg.weights, seed)
            }
            Family::Rmat => rmat(n, m, RmatParams::scale_free(), cfg.weights, seed),
            Family::Random => gnm_expected(n, m, cfg.weights, seed),
        }
    }
}

/// Entries of Table III with a small separator (the Fig 2 / Fig 6 / Fig 7
/// workload).
pub fn table3_small_separator() -> Vec<&'static SuiteEntry> {
    TABLE3.iter().filter(|e| e.small_separator).collect()
}

/// Entries of Table III without a small separator (the Fig 3 workload).
pub fn table3_other_sparse() -> Vec<&'static SuiteEntry> {
    TABLE3.iter().filter(|e| !e.small_separator).collect()
}

/// Look up an entry by name across both tables.
pub fn find(name: &str) -> Option<&'static SuiteEntry> {
    TABLE3.iter().chain(TABLE4.iter()).find(|e| e.name == name)
}

/// Stable tiny string hash for per-entry seeds (FxHash-style fold).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn table_sizes_match_paper() {
        assert_eq!(TABLE3.len(), 19);
        assert_eq!(TABLE4.len(), 10);
        assert_eq!(table3_small_separator().len(), 11);
        assert_eq!(table3_other_sparse().len(), 8);
    }

    #[test]
    fn generated_analog_matches_scaled_size() {
        let cfg = SuiteConfig {
            scale: 64,
            ..Default::default()
        };
        let e = find("usroads").unwrap();
        let g = e.generate(&cfg);
        let n = e.scaled_n(&cfg);
        // Grid analogs round n to a square; stay within a few percent.
        let dn = (g.num_vertices() as f64 - n as f64).abs() / n as f64;
        assert!(dn < 0.1, "vertex count off by {:.1}%", dn * 100.0);
        let target_deg = e.m_paper as f64 / e.n_paper as f64;
        let actual_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        // The thinned-grid keep-floor (0.55) bounds degree from below;
        // usroads' paper degree is ~2.6.
        assert!(
            actual_deg > 1.5 && actual_deg < 2.0 * target_deg.max(2.2),
            "deg = {actual_deg}, target = {target_deg}"
        );
    }

    #[test]
    fn small_separator_analogs_are_sparser() {
        let cfg = SuiteConfig {
            scale: 128,
            ..Default::default()
        };
        let road = find("usroads").unwrap().generate(&cfg);
        let fem = find("pkustk14").unwrap().generate(&cfg);
        assert!(road.density() < fem.density());
    }

    #[test]
    fn all_entries_generate_at_tiny_scale() {
        let cfg = SuiteConfig {
            scale: 512,
            ..Default::default()
        };
        for e in TABLE3.iter().chain(TABLE4.iter()) {
            let g = e.generate(&cfg);
            assert!(g.num_vertices() >= 64, "{} too small", e.name);
            assert!(g.num_edges() > 0, "{} has no edges", e.name);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn analogs_are_deterministic() {
        let cfg = SuiteConfig {
            scale: 256,
            ..Default::default()
        };
        let a = find("nj2010").unwrap().generate(&cfg);
        let b = find("nj2010").unwrap().generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_analogs_are_mostly_connected() {
        let cfg = SuiteConfig {
            scale: 64,
            ..Default::default()
        };
        let g = find("nm2010").unwrap().generate(&cfg);
        let comps = stats::connected_components(&g);
        // Random geometric graphs can shed a few isolated pockets; the
        // giant component must dominate.
        assert!(comps < g.num_vertices() / 20, "{comps} components");
    }

    #[test]
    fn find_handles_unknown() {
        assert!(find("nonexistent").is_none());
        assert!(find("troll").is_some());
    }
}
