//! Crash-safe checkpoint/resume for the out-of-core runs.
//!
//! A checkpoint is a directory holding two things:
//!
//! * `state-{a,b}.bin` — a full snapshot of the [`TileStore`] matrix,
//!   written with the store's atomic [`TileStore::persist`] (temp file +
//!   `sync_all` + rename). Commits alternate between the two slots so the
//!   snapshot named by the manifest is never the one being replaced.
//! * `manifest` — a small versioned text file naming the live slot and
//!   recording the run's identity (graph fingerprint, dimension), its
//!   geometry + progress cursor, and per-row-panel FNV-1a checksums of
//!   the snapshot *as read back from disk*. The manifest ends in a
//!   self-checksum line and is itself written atomically — renaming it
//!   into place is the commit point of the whole checkpoint.
//!
//! Recovery is exact, not approximate, because the three out-of-core
//! algorithms only ever move store cells *downward* toward the metric
//! closure (min-plus relaxations are monotone) or overwrite rows with
//! values recomputed from the graph. Replaying a partially-committed
//! round/batch/phase on a restored snapshot therefore converges to the
//! same matrix as an uninterrupted run — the kill-resume differential
//! tests in `crates/conformance` enforce this bit-for-bit.
//!
//! Failure policy: a *missing* manifest means "no checkpoint" and resumes
//! as a fresh start (a crash can precede the first commit), but a
//! *present-and-invalid* one — truncated, failing its self-checksum,
//! fingerprinting a different graph, or naming a snapshot whose panel
//! checksums do not match — is always a typed
//! [`ApspError::Corruption`]. Wrong distances are never an outcome.

use crate::error::ApspError;
use crate::tile_store::{fnv1a, TileStore, FNV_OFFSET_BASIS};
use apsp_graph::{CsrGraph, VertexId};
use std::io;
use std::path::{Path, PathBuf};

/// Manifest format version this build writes and understands.
pub const MANIFEST_VERSION: u32 = 1;

/// Rows per checksum panel recorded in new manifests. Small enough that
/// a corrupt region is localized, large enough that the manifest stays
/// tiny even for paper-scale matrices.
pub const DEFAULT_PANEL_ROWS: usize = 64;

/// Where a run is, in units of its natural commit barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Blocked Floyd-Warshall: `next_round` pivot rounds of `n_d =
    /// ceil(n / block)` are fully applied to the snapshot.
    FloydWarshall {
        /// Tile side the committed rounds ran at (rounds are only
        /// resumable at the same blocking).
        block: usize,
        /// First pivot round not yet committed.
        next_round: usize,
    },
    /// Batched Johnson's: every source row below `next_row` is final in
    /// the snapshot.
    Johnson {
        /// Batch size of the committed run (informational; a resume may
        /// re-batch the remaining rows freely).
        batch_size: usize,
        /// First source row not yet committed.
        next_row: usize,
    },
    /// Boundary algorithm: every component below `next_component` has
    /// its dist₄ row panel final in the snapshot. dist₂/dist₃ are
    /// recomputed on resume (deterministic given the partition), so the
    /// cursor only advances through the streaming phase.
    Boundary {
        /// Component count of the committed partition.
        components: usize,
        /// Partitioner seed — the resume must reproduce the identical
        /// partition or the committed panels would describe the wrong
        /// vertex sets.
        partition_seed: u64,
        /// First component whose dist₄ panel is not yet committed.
        next_component: usize,
    },
}

impl Progress {
    /// Short algorithm tag used in the manifest (`fw`, `johnson`,
    /// `boundary`).
    pub fn algorithm_tag(&self) -> &'static str {
        match self {
            Progress::FloydWarshall { .. } => "fw",
            Progress::Johnson { .. } => "johnson",
            Progress::Boundary { .. } => "boundary",
        }
    }
}

/// A parsed, self-checksum-validated manifest. Graph-fingerprint
/// validation happens in [`Checkpoint::load`]; snapshot-checksum
/// validation in [`Checkpoint::restore_into`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version (always [`MANIFEST_VERSION`] after a load).
    pub version: u32,
    /// [`graph_fingerprint`] of the input graph.
    pub fingerprint: u64,
    /// Matrix dimension.
    pub n: usize,
    /// Snapshot slot file name (`state-a.bin` / `state-b.bin`).
    pub state_file: String,
    /// Rows per checksum panel.
    pub panel_rows: usize,
    /// FNV-1a checksum of each consecutive `panel_rows`-row panel of the
    /// snapshot, as read back from disk at commit time.
    pub checksums: Vec<u64>,
    /// The progress cursor.
    pub progress: Progress,
}

/// Order-sensitive FNV-1a fingerprint of a graph's exact structure and
/// weights (vertex count, edge count, every adjacency in CSR order).
/// Identical graphs — and only identical graphs, up to hash collision —
/// may resume each other's checkpoints.
pub fn graph_fingerprint(g: &CsrGraph) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    h = fnv1a(&(g.num_vertices() as u64).to_le_bytes(), h);
    h = fnv1a(&(g.num_edges() as u64).to_le_bytes(), h);
    for v in 0..g.num_vertices() as VertexId {
        for (u, w) in g.edges_from(v) {
            h = fnv1a(&u.to_le_bytes(), h);
            h = fnv1a(&w.to_le_bytes(), h);
        }
    }
    h
}

/// Handle to a checkpoint directory, bound to one graph.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    fingerprint: u64,
    n: usize,
    /// Slot the *next* commit writes to; flipped after every successful
    /// commit so the manifest never points at the slot being rewritten.
    next_slot: std::cell::Cell<u8>,
}

impl Checkpoint {
    /// Bind a checkpoint directory (created if missing) to graph `g`.
    pub fn new<P: AsRef<Path>>(dir: P, g: &CsrGraph) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Checkpoint {
            dir,
            fingerprint: graph_fingerprint(g),
            n: g.num_vertices(),
            next_slot: std::cell::Cell::new(0),
        })
    }

    /// The bound directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest")
    }

    fn slot_name(slot: u8) -> &'static str {
        if slot == 0 {
            "state-a.bin"
        } else {
            "state-b.bin"
        }
    }

    /// Durably commit `store` + `progress`. The snapshot lands in the
    /// inactive slot, is re-opened and checksummed from disk, and only
    /// then does the manifest rename make it the live checkpoint — a
    /// crash anywhere in between leaves the previous checkpoint intact.
    pub fn commit(&self, store: &TileStore, progress: &Progress) -> Result<(), ApspError> {
        let slot = self.next_slot.get();
        let state_path = self.dir.join(Self::slot_name(slot));
        store.persist(&state_path)?;
        // Checksum what is actually on disk, not what we think we wrote.
        let snapshot = TileStore::open(&state_path, self.n)?;
        let checksums = snapshot.panel_checksums(DEFAULT_PANEL_ROWS.min(self.n.max(1)))?;
        drop(snapshot);
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            fingerprint: self.fingerprint,
            n: self.n,
            state_file: Self::slot_name(slot).to_string(),
            panel_rows: DEFAULT_PANEL_ROWS.min(self.n.max(1)),
            checksums,
            progress: *progress,
        };
        write_manifest_atomic(&self.manifest_path(), &manifest)?;
        self.next_slot.set(1 - slot);
        Ok(())
    }

    /// Load and validate the manifest. `Ok(None)` means no checkpoint
    /// exists (fresh start); any present-but-invalid state is
    /// [`ApspError::Corruption`].
    pub fn load(&self) -> Result<Option<Manifest>, ApspError> {
        let path = self.manifest_path();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let manifest = parse_manifest(&bytes).map_err(|detail| ApspError::Corruption {
            detail: format!("{}: {detail}", path.display()),
        })?;
        if manifest.fingerprint != self.fingerprint {
            return Err(ApspError::Corruption {
                detail: format!(
                    "{} was written for a different graph (fingerprint {:016x}, this graph is {:016x})",
                    path.display(),
                    manifest.fingerprint,
                    self.fingerprint
                ),
            });
        }
        if manifest.n != self.n {
            return Err(ApspError::Corruption {
                detail: format!(
                    "manifest records an {m}×{m} matrix, this graph needs {n}×{n}",
                    m = manifest.n,
                    n = self.n
                ),
            });
        }
        // Resume writes to the slot the manifest does NOT occupy.
        self.next_slot
            .set(if manifest.state_file == Self::slot_name(0) {
                1
            } else {
                0
            });
        Ok(Some(manifest))
    }

    /// Verify the snapshot named by `manifest` against its recorded
    /// checksums and copy it into `store`, row by row. Checksum or size
    /// mismatch is [`ApspError::Corruption`].
    pub fn restore_into(
        &self,
        manifest: &Manifest,
        store: &mut TileStore,
    ) -> Result<(), ApspError> {
        assert_eq!(store.n(), manifest.n, "restore target dimension mismatch");
        let state_path = self.dir.join(&manifest.state_file);
        let snapshot = TileStore::open(&state_path, manifest.n).map_err(|e| {
            if matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::NotFound
            ) {
                ApspError::Corruption {
                    detail: format!("snapshot {}: {e}", state_path.display()),
                }
            } else {
                e.into()
            }
        })?;
        let actual = snapshot.panel_checksums(manifest.panel_rows)?;
        if actual != manifest.checksums {
            let first_bad = actual
                .iter()
                .zip(&manifest.checksums)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(ApspError::Corruption {
                detail: format!(
                    "snapshot {} fails its checksums starting at row panel {first_bad} \
                     (rows {}..): the matrix on disk is not the one the manifest committed",
                    state_path.display(),
                    first_bad * manifest.panel_rows
                ),
            });
        }
        for i in 0..manifest.n {
            let row = snapshot.read_row(i)?;
            store.write_row(i, &row)?;
        }
        Ok(())
    }

    /// Delete the checkpoint. The manifest goes first, so a crash
    /// mid-clear degrades to "no checkpoint" rather than a manifest
    /// pointing at a deleted snapshot.
    pub fn clear(&self) -> io::Result<()> {
        remove_if_present(&self.manifest_path())?;
        remove_if_present(&self.dir.join(Self::slot_name(0)))?;
        remove_if_present(&self.dir.join(Self::slot_name(1)))?;
        Ok(())
    }
}

fn remove_if_present(path: &Path) -> io::Result<()> {
    match std::fs::remove_file(path) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

/// Serialize `m` and rename it into place (temp sibling + `sync_all` +
/// rename — same discipline as [`TileStore::persist`]).
fn write_manifest_atomic(path: &Path, m: &Manifest) -> io::Result<()> {
    let body = serialize_manifest(m);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!(".manifest.tmp.{}", std::process::id()));
    let result = (|| -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Line-oriented text encoding; the final `end <hex>` line carries the
/// FNV-1a of every preceding byte so truncation and bit-rot are caught
/// before any field is trusted.
fn serialize_manifest(m: &Manifest) -> String {
    let mut s = String::new();
    s.push_str(&format!("apsp-checkpoint {}\n", m.version));
    s.push_str(&format!("fingerprint {:016x}\n", m.fingerprint));
    s.push_str(&format!("n {}\n", m.n));
    s.push_str(&format!("state {}\n", m.state_file));
    s.push_str(&format!("panel_rows {}\n", m.panel_rows));
    s.push_str("checksums");
    for c in &m.checksums {
        s.push_str(&format!(" {c:016x}"));
    }
    s.push('\n');
    match m.progress {
        Progress::FloydWarshall { block, next_round } => {
            s.push_str(&format!("progress fw {block} {next_round}\n"));
        }
        Progress::Johnson {
            batch_size,
            next_row,
        } => {
            s.push_str(&format!("progress johnson {batch_size} {next_row}\n"));
        }
        Progress::Boundary {
            components,
            partition_seed,
            next_component,
        } => {
            s.push_str(&format!(
                "progress boundary {components} {partition_seed} {next_component}\n"
            ));
        }
    }
    let sum = fnv1a(s.as_bytes(), FNV_OFFSET_BASIS);
    s.push_str(&format!("end {sum:016x}\n"));
    s
}

/// Inverse of [`serialize_manifest`]. Every failure mode returns a
/// human-readable detail string; the caller wraps it in
/// [`ApspError::Corruption`].
fn parse_manifest(bytes: &[u8]) -> Result<Manifest, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "manifest is not UTF-8".to_string())?;
    // Locate the trailing `end <hex>` line and verify the self-checksum
    // over everything before it.
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let (body_end, end_line) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => (0, trimmed),
    };
    let declared = end_line
        .strip_prefix("end ")
        .ok_or("manifest is truncated (no `end` checksum line)")?;
    let declared =
        u64::from_str_radix(declared.trim(), 16).map_err(|_| "unparseable `end` checksum")?;
    let actual = fnv1a(&text.as_bytes()[..body_end], FNV_OFFSET_BASIS);
    if actual != declared {
        return Err(format!(
            "self-checksum mismatch (recorded {declared:016x}, content hashes to {actual:016x}) — truncated or bit-rotted"
        ));
    }

    let mut lines = text[..body_end].lines();
    let header = lines.next().ok_or("empty manifest")?;
    let version: u32 = header
        .strip_prefix("apsp-checkpoint ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or("missing `apsp-checkpoint <version>` header")?;
    if version != MANIFEST_VERSION {
        return Err(format!(
            "manifest version {version} is not supported (this build writes {MANIFEST_VERSION})"
        ));
    }

    let mut fingerprint = None;
    let mut n = None;
    let mut state_file = None;
    let mut panel_rows = None;
    let mut checksums = None;
    let mut progress = None;
    for line in lines {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "fingerprint" => {
                fingerprint =
                    Some(u64::from_str_radix(rest.trim(), 16).map_err(|_| "bad fingerprint")?)
            }
            "n" => n = Some(rest.trim().parse::<usize>().map_err(|_| "bad n")?),
            "state" => {
                let name = rest.trim();
                if name != "state-a.bin" && name != "state-b.bin" {
                    return Err(format!("unknown snapshot slot {name:?}"));
                }
                state_file = Some(name.to_string());
            }
            "panel_rows" => {
                let p = rest.trim().parse::<usize>().map_err(|_| "bad panel_rows")?;
                if p == 0 {
                    return Err("panel_rows must be positive".into());
                }
                panel_rows = Some(p);
            }
            "checksums" => {
                let mut v = Vec::new();
                for tok in rest.split_whitespace() {
                    v.push(u64::from_str_radix(tok, 16).map_err(|_| "bad checksum entry")?);
                }
                checksums = Some(v);
            }
            "progress" => progress = Some(parse_progress(rest)?),
            other => return Err(format!("unknown manifest field {other:?}")),
        }
    }
    let n = n.ok_or("missing n")?;
    let panel_rows = panel_rows.ok_or("missing panel_rows")?;
    let checksums = checksums.ok_or("missing checksums")?;
    if checksums.len() != n.div_ceil(panel_rows) {
        return Err(format!(
            "checksum count {} does not cover {n} rows in panels of {panel_rows}",
            checksums.len()
        ));
    }
    Ok(Manifest {
        version,
        fingerprint: fingerprint.ok_or("missing fingerprint")?,
        n,
        state_file: state_file.ok_or("missing state")?,
        panel_rows,
        checksums,
        progress: progress.ok_or("missing progress")?,
    })
}

fn parse_progress(rest: &str) -> Result<Progress, String> {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let want = |count: usize| -> Result<(), String> {
        if toks.len() != count + 1 {
            Err(format!("progress {:?} needs {count} fields", toks.first()))
        } else {
            Ok(())
        }
    };
    let num = |i: usize| -> Result<usize, String> {
        toks[i]
            .parse::<usize>()
            .map_err(|_| format!("bad progress field {:?}", toks[i]))
    };
    match toks.first() {
        Some(&"fw") => {
            want(2)?;
            Ok(Progress::FloydWarshall {
                block: num(1)?,
                next_round: num(2)?,
            })
        }
        Some(&"johnson") => {
            want(2)?;
            Ok(Progress::Johnson {
                batch_size: num(1)?,
                next_row: num(2)?,
            })
        }
        Some(&"boundary") => {
            want(3)?;
            Ok(Progress::Boundary {
                components: num(1)?,
                partition_seed: toks[2]
                    .parse::<u64>()
                    .map_err(|_| "bad partition seed".to_string())?,
                next_component: num(3)?,
            })
        }
        other => Err(format!("unknown progress tag {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_store::StorageBackend;
    use apsp_graph::generators::{gnp, WeightRange};

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("apsp_checkpoint_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seeded_store(n: usize, salt: u32) -> TileStore {
        let mut s = TileStore::new(n, &StorageBackend::Memory).unwrap();
        let row: Vec<u32> = (0..n as u32).map(|j| j.wrapping_mul(7) ^ salt).collect();
        s.write_row(1 % n.max(1), &row).unwrap();
        s
    }

    #[test]
    fn manifest_roundtrips() {
        for progress in [
            Progress::FloydWarshall {
                block: 32,
                next_round: 3,
            },
            Progress::Johnson {
                batch_size: 17,
                next_row: 120,
            },
            Progress::Boundary {
                components: 6,
                partition_seed: 0x9A17,
                next_component: 2,
            },
        ] {
            let m = Manifest {
                version: MANIFEST_VERSION,
                fingerprint: 0xDEAD_BEEF_0123_4567,
                n: 130,
                state_file: "state-b.bin".into(),
                panel_rows: 64,
                checksums: vec![1, 2, 3],
                progress,
            };
            let text = serialize_manifest(&m);
            assert_eq!(parse_manifest(text.as_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn commit_load_restore_roundtrip() {
        let g = gnp(40, 0.1, WeightRange::default(), 5);
        let dir = tmp("roundtrip");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        assert!(ckpt.load().unwrap().is_none(), "fresh dir has no manifest");

        let store = seeded_store(40, 0xA);
        let progress = Progress::Johnson {
            batch_size: 8,
            next_row: 16,
        };
        ckpt.commit(&store, &progress).unwrap();

        let ckpt2 = Checkpoint::new(&dir, &g).unwrap();
        let m = ckpt2.load().unwrap().expect("manifest committed");
        assert_eq!(m.progress, progress);
        let mut restored = TileStore::new(40, &StorageBackend::Memory).unwrap();
        ckpt2.restore_into(&m, &mut restored).unwrap();
        assert_eq!(
            restored.to_dist_matrix().unwrap(),
            store.to_dist_matrix().unwrap()
        );
        ckpt2.clear().unwrap();
        assert!(ckpt2.load().unwrap().is_none());
    }

    #[test]
    fn commits_alternate_slots_preserving_the_previous_snapshot() {
        let g = gnp(20, 0.2, WeightRange::default(), 6);
        let dir = tmp("slots");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let s1 = seeded_store(20, 1);
        ckpt.commit(
            &s1,
            &Progress::Johnson {
                batch_size: 4,
                next_row: 4,
            },
        )
        .unwrap();
        let m1 = ckpt.load().unwrap().unwrap();
        let s2 = seeded_store(20, 2);
        ckpt.commit(
            &s2,
            &Progress::Johnson {
                batch_size: 4,
                next_row: 8,
            },
        )
        .unwrap();
        let m2 = ckpt.load().unwrap().unwrap();
        assert_ne!(m1.state_file, m2.state_file, "slots must alternate");
        // The second commit never touched the first snapshot's slot.
        let mut restored = TileStore::new(20, &StorageBackend::Memory).unwrap();
        ckpt.restore_into(&m2, &mut restored).unwrap();
        assert_eq!(
            restored.to_dist_matrix().unwrap(),
            s2.to_dist_matrix().unwrap()
        );
    }

    #[test]
    fn truncated_manifest_is_corruption() {
        let g = gnp(30, 0.1, WeightRange::default(), 7);
        let dir = tmp("truncated");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ckpt.commit(
            &seeded_store(30, 3),
            &Progress::FloydWarshall {
                block: 8,
                next_round: 1,
            },
        )
        .unwrap();
        let path = dir.join("manifest");
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 5, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = ckpt.load().unwrap_err();
            assert_eq!(
                err.kind(),
                crate::ApspErrorKind::Corruption,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_in_manifest_is_corruption() {
        let g = gnp(30, 0.1, WeightRange::default(), 8);
        let dir = tmp("bitflip_manifest");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ckpt.commit(
            &seeded_store(30, 4),
            &Progress::Johnson {
                batch_size: 5,
                next_row: 10,
            },
        )
        .unwrap();
        let path = dir.join("manifest");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = ckpt.load().unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Corruption, "{err}");
    }

    #[test]
    fn snapshot_bit_flip_is_corruption_on_restore() {
        let g = gnp(30, 0.1, WeightRange::default(), 9);
        let dir = tmp("bitflip_state");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ckpt.commit(
            &seeded_store(30, 5),
            &Progress::Johnson {
                batch_size: 5,
                next_row: 10,
            },
        )
        .unwrap();
        let m = ckpt.load().unwrap().unwrap();
        // Flip one byte deep inside the snapshot the manifest points at.
        let state = dir.join(&m.state_file);
        let mut bytes = std::fs::read(&state).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&state, &bytes).unwrap();
        let mut store = TileStore::new(30, &StorageBackend::Memory).unwrap();
        let err = ckpt.restore_into(&m, &mut store).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Corruption, "{err}");
    }

    #[test]
    fn truncated_snapshot_is_corruption_on_restore() {
        let g = gnp(30, 0.1, WeightRange::default(), 10);
        let dir = tmp("truncated_state");
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ckpt.commit(
            &seeded_store(30, 6),
            &Progress::FloydWarshall {
                block: 8,
                next_round: 2,
            },
        )
        .unwrap();
        let m = ckpt.load().unwrap().unwrap();
        let state = dir.join(&m.state_file);
        let bytes = std::fs::read(&state).unwrap();
        std::fs::write(&state, &bytes[..bytes.len() - 8]).unwrap();
        let mut store = TileStore::new(30, &StorageBackend::Memory).unwrap();
        let err = ckpt.restore_into(&m, &mut store).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Corruption, "{err}");
    }

    #[test]
    fn fingerprint_mismatch_is_corruption() {
        let g1 = gnp(30, 0.1, WeightRange::default(), 11);
        let g2 = gnp(30, 0.1, WeightRange::default(), 12);
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        let dir = tmp("fingerprint");
        let ckpt1 = Checkpoint::new(&dir, &g1).unwrap();
        ckpt1
            .commit(
                &seeded_store(30, 7),
                &Progress::Johnson {
                    batch_size: 5,
                    next_row: 10,
                },
            )
            .unwrap();
        // Same directory, different graph: resume must refuse.
        let ckpt2 = Checkpoint::new(&dir, &g2).unwrap();
        let err = ckpt2.load().unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Corruption, "{err}");
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn fingerprint_is_weight_sensitive() {
        let g1 = gnp(25, 0.15, WeightRange::new(1, 10), 13);
        let g2 = gnp(25, 0.15, WeightRange::new(1, 11), 13);
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g1));
    }
}
