//! Runtime supervision for the out-of-core drivers: deadlines,
//! cooperative cancellation, stall detection, and the shared retry
//! policy.
//!
//! The selector picks an algorithm up front from density and cost
//! models, but a long-running service must survive the selector being
//! wrong at runtime. This module supplies the envelope the drivers run
//! inside:
//!
//! * a **run budget** — a wall-clock deadline plus a per-barrier
//!   progress budget, both measured on the gpu-sim timeline clock so
//!   every check is deterministic and reproducible from a seed;
//! * a **[`CancelToken`]** checked at every natural barrier (FW pivot
//!   round, Johnson batch, boundary component flush) and inside the
//!   [`crate::tile_store::TileStore`] read/write loops;
//! * a **watchdog** that declares a [`crate::ApspError::Stalled`] run
//!   when no barrier commits within the progress budget — the signal
//!   the fallback chain in [`crate::api::apsp`] uses to re-enter the
//!   selector with the failed algorithm masked;
//! * a **[`RetryPolicy`]** shared by all three drivers, replacing their
//!   copy-pasted retry-then-halve loops: bounded attempts, exponential
//!   backoff with seeded jitter (recorded, never slept — the simulator
//!   owns time), and transient-vs-fatal classification over
//!   [`ApspErrorKind`].
//!
//! Everything here is deterministic by construction: time comes from
//! the simulated device, jitter from a seeded generator, and the
//! cancellation test hook counts checks rather than racing threads.

use crate::error::{ApspError, ApspErrorKind};
use crate::options::Algorithm;
use crate::telemetry::Telemetry;
use apsp_gpu_sim::OutOfDeviceMemory;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Marker payload for cancellations observed inside store I/O loops.
///
/// The store's read/write paths speak `std::io::Error`, so a trip of the
/// [`CancelToken`] mid-loop travels as an `io::Error` wrapping this
/// marker; `From<io::Error> for ApspError` unwraps it back into a typed
/// [`ApspError::Cancelled`] instead of misclassifying it as storage
/// failure.
#[derive(Debug)]
pub struct CancelledMark;

impl std::fmt::Display for CancelledMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cancelled during a tile store operation")
    }
}

impl std::error::Error for CancelledMark {}

/// Sentinel for "no countdown armed" in [`CancelToken`].
const NO_COUNTDOWN: u64 = u64::MAX;

/// Cooperative cancellation handle.
///
/// Clone it, hand one clone to the run (via
/// [`SupervisionOptions::cancel`]) and keep the other; calling
/// [`CancelToken::cancel`] makes the run return
/// [`ApspError::Cancelled`] at its next barrier or store operation.
///
/// For deterministic tests, [`CancelToken::cancel_after_checks`] arms a
/// countdown instead: the `n`-th supervision check observes the
/// cancellation, with no threads or wall clocks involved.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    /// 1 when cancelled.
    cancelled: AtomicU64,
    /// Remaining checks before the token trips itself; [`NO_COUNTDOWN`]
    /// disables the countdown.
    countdown: AtomicU64,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner {
            cancelled: AtomicU64::new(0),
            countdown: AtomicU64::new(NO_COUNTDOWN),
        }
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that trips itself on its `n`-th supervision check
    /// (1-based; `n = 0` is cancelled immediately). Deterministic by
    /// construction — checks are counted, not timed.
    pub fn cancel_after_checks(n: u64) -> CancelToken {
        let tok = CancelToken::new();
        if n == 0 {
            tok.cancel();
        } else {
            tok.inner.countdown.store(n, Ordering::SeqCst);
        }
        tok
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(1, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested (does not count as a
    /// check for [`CancelToken::cancel_after_checks`]).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst) == 1
    }

    /// Count `n` supervision checks (row-granular, matching the store's
    /// crash-op accounting); returns whether the run should stop.
    fn tick(&self, n: u64) -> bool {
        let left = self.inner.countdown.load(Ordering::SeqCst);
        if left != NO_COUNTDOWN && n > 0 {
            if left <= n {
                self.cancel();
                self.inner.countdown.store(NO_COUNTDOWN, Ordering::SeqCst);
            } else {
                self.inner.countdown.store(left - n, Ordering::SeqCst);
            }
        }
        self.is_cancelled()
    }
}

/// Bounded-retry policy shared by the three out-of-core drivers.
///
/// Transient failures (today: [`ApspErrorKind::OutOfDeviceMemory`], per
/// [`ApspErrorKind::is_transient`]) are retried — first at the same
/// geometry (a one-shot fault such as fragmentation or a competing
/// context may clear), then at a halved geometry — until the driver's
/// floor or `max_retries` is reached. Each retry is assigned an
/// exponential backoff with seeded jitter; the backoff is **recorded in
/// the event log, never slept**, because the simulator owns time and
/// determinism is a contract (same seed ⇒ same event sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total transient failures absorbed before giving up.
    pub max_retries: u32,
    /// Same-geometry attempts before each shrink.
    pub same_geometry_retries: u32,
    /// Backoff for the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Growth factor per subsequent retry.
    pub backoff_multiplier: f64,
    /// Seed for the jitter added to each backoff.
    pub jitter_seed: u64,
    /// Panel-scoped silent-corruption recoveries absorbed per run (rung
    /// 1 of the SDC ladder: reset just the damaged panel and replay).
    pub sdc_panel_retries: u32,
    /// Round-scoped silent-corruption recoveries absorbed per run (rung
    /// 2: restore the last checkpoint snapshot, or reseed from the
    /// graph, and replay the round).
    pub sdc_round_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // High enough that geometry floors, not the count, end the
            // retry ladder in practice (a 2^32-sided tile halves to 1 in
            // 32 steps, each preceded by one same-geometry attempt).
            max_retries: 96,
            same_geometry_retries: 1,
            backoff_base_ms: 10,
            backoff_multiplier: 2.0,
            jitter_seed: 0x0DD5_EED5,
            sdc_panel_retries: 2,
            sdc_round_retries: 1,
        }
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a driver should do with its geometry after a transient failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryStep {
    /// Re-run at the same geometry (one-shot faults may clear).
    SameGeometry,
    /// Halve the working-set geometry (tile side, batch, components).
    Shrink,
}

/// Per-run retry state: one lives in each driver loop.
#[derive(Debug)]
pub struct RetryState {
    policy: RetryPolicy,
    algorithm: &'static str,
    retries: u32,
    same_left: u32,
    jitter: u64,
}

impl RetryState {
    /// Fresh state for one driver run.
    pub fn new(policy: &RetryPolicy, algorithm: &'static str) -> RetryState {
        RetryState {
            policy: *policy,
            algorithm,
            retries: 0,
            same_left: policy.same_geometry_retries,
            jitter: policy.jitter_seed,
        }
    }

    /// Transient failures absorbed so far (the drivers' `retries` stat).
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Classify `err` and consume one retry slot.
    ///
    /// Fatal kinds — and transient ones beyond
    /// [`RetryPolicy::max_retries`] — propagate unchanged. Transient
    /// failures return the step to take plus the underlying allocation
    /// failure (handed back so the driver's geometry-floor message can
    /// cite it), and record a [`SupervisionEvent::Retry`] with the
    /// jittered backoff.
    pub fn next_step(
        &mut self,
        err: ApspError,
        sup: &Supervisor,
    ) -> Result<(RetryStep, OutOfDeviceMemory), ApspError> {
        if !err.kind().is_transient() || self.retries >= self.policy.max_retries {
            return Err(err);
        }
        // The only transient kind is OutOfDeviceMemory (pinned by the
        // exhaustive classification test in `error`).
        let ApspError::OutOfDeviceMemory(oom) = err else {
            unreachable!("is_transient() admits only OutOfDeviceMemory")
        };
        self.retries += 1;
        let step = if self.same_left > 0 {
            self.same_left -= 1;
            RetryStep::SameGeometry
        } else {
            self.same_left = self.policy.same_geometry_retries;
            RetryStep::Shrink
        };
        let base = self.policy.backoff_base_ms as f64
            * self
                .policy
                .backoff_multiplier
                .powi(self.retries.saturating_sub(1) as i32);
        let jitter = splitmix64(&mut self.jitter) % self.policy.backoff_base_ms.max(1);
        sup.record_event(SupervisionEvent::Retry {
            algorithm: self.algorithm,
            attempt: self.retries,
            backoff_ms: base as u64 + jitter,
            shrink: step == RetryStep::Shrink,
        });
        Ok((step, oom))
    }
}

/// Supervision knobs threaded through [`crate::ApspOptions`].
#[derive(Debug, Clone, Default)]
pub struct SupervisionOptions {
    /// Wall-clock budget for the whole run, in simulated milliseconds;
    /// `None` runs unbounded. Exceeding it returns
    /// [`ApspError::DeadlineExceeded`] at the next barrier, leaving any
    /// configured checkpoint resumable.
    pub deadline_ms: Option<u64>,
    /// Watchdog budget: the longest gap allowed between barrier
    /// commits, in simulated milliseconds; `None` disables the
    /// watchdog. A miss returns [`ApspError::Stalled`].
    pub progress_budget_ms: Option<u64>,
    /// Cooperative cancellation handle; keep a clone and call
    /// [`CancelToken::cancel`] to stop the run at its next barrier or
    /// store operation.
    pub cancel: Option<CancelToken>,
    /// Retry policy for transient failures in the drivers.
    pub retry: RetryPolicy,
    /// On an unrecoverable per-algorithm failure (device too small,
    /// allocation floor, stall), re-enter the selector with the failed
    /// algorithm masked and try the next-best one.
    pub fallback: bool,
}

/// One entry in the supervision event log — the deterministic record of
/// what the retry/watchdog/fallback machinery did.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisionEvent {
    /// A transient failure was absorbed by the retry policy.
    Retry {
        /// Driver name (matches [`ApspError::DeviceTooSmall`] tags).
        algorithm: &'static str,
        /// 1-based retry ordinal within the run.
        attempt: u32,
        /// Assigned exponential backoff with seeded jitter. Recorded,
        /// never slept — determinism is the contract.
        backoff_ms: u64,
        /// Whether the driver was told to halve its geometry.
        shrink: bool,
    },
    /// The watchdog declared a stall.
    Stall {
        /// The barrier at which the miss was observed.
        at: String,
        /// Simulated seconds since the last barrier commit.
        idle_seconds: f64,
    },
    /// The fallback chain switched algorithms.
    Fallback {
        /// The algorithm that failed.
        from: Algorithm,
        /// The replacement the masked selector picked.
        to: Algorithm,
        /// Why `from` was abandoned.
        error_kind: ApspErrorKind,
    },
}

/// A record of one fallback transition, surfaced in
/// [`crate::ApspResult::fallback_events`].
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackEvent {
    /// The algorithm that failed.
    pub from: Algorithm,
    /// The replacement the masked selector picked.
    pub to: Algorithm,
    /// Why `from` was abandoned.
    pub error_kind: ApspErrorKind,
    /// The failed algorithm's error message.
    pub detail: String,
    /// Simulated time of the switch.
    pub sim_seconds: f64,
}

/// The supervision envelope: a cheap, cloneable handle shared by the
/// front-end, the drivers, and the tile store.
///
/// All clocks are **simulated seconds** from the gpu-sim timeline, so a
/// run's deadline/stall behaviour is a pure function of the workload
/// and the options — no host wall clock is consulted anywhere.
#[derive(Debug, Clone)]
pub struct Supervisor {
    inner: Arc<SupervisorInner>,
}

#[derive(Debug)]
struct SupervisorInner {
    /// Absolute simulated deadline (start + budget).
    deadline_s: Option<f64>,
    /// Progress (stall) budget.
    budget_s: Option<f64>,
    cancel: Option<CancelToken>,
    retry: RetryPolicy,
    /// Metrics handle the drivers and the tile store reach through the
    /// supervisor, so their signatures stay unchanged. Disabled unless
    /// the front-end armed it via [`Supervisor::with_telemetry`].
    telemetry: Telemetry,
    state: Mutex<SupervisorState>,
}

#[derive(Debug)]
struct SupervisorState {
    /// Effective time of the last barrier commit (or run start).
    last_progress_s: f64,
    /// Simulated disk-stall time charged by [`Supervisor::charge_io_stall`];
    /// added to the device clock when budgets are evaluated, because the
    /// device timeline does not see host-side disk time.
    io_stall_s: f64,
    events: Vec<SupervisionEvent>,
}

impl Supervisor {
    /// Arm a supervisor at simulated time `start_s` (the device clock at
    /// run start), with telemetry disabled.
    pub fn new(opts: &SupervisionOptions, start_s: f64) -> Supervisor {
        Supervisor::with_telemetry(opts, start_s, Telemetry::disabled())
    }

    /// [`Supervisor::new`] with a metrics handle attached; the drivers
    /// and the tile store reach it through [`Supervisor::telemetry`].
    pub fn with_telemetry(
        opts: &SupervisionOptions,
        start_s: f64,
        telemetry: Telemetry,
    ) -> Supervisor {
        Supervisor {
            inner: Arc::new(SupervisorInner {
                deadline_s: opts.deadline_ms.map(|ms| start_s + ms as f64 / 1e3),
                budget_s: opts.progress_budget_ms.map(|ms| ms as f64 / 1e3),
                cancel: opts.cancel.clone(),
                retry: opts.retry,
                telemetry,
                state: Mutex::new(SupervisorState {
                    last_progress_s: start_s,
                    io_stall_s: 0.0,
                    events: Vec::new(),
                }),
            }),
        }
    }

    /// The metrics handle this run records into (disabled unless the
    /// front-end enabled telemetry).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// A supervisor with no budgets and no token: every check passes.
    /// The plain (un-supervised) driver entry points run under one of
    /// these, so there is a single code path.
    pub fn unarmed() -> Supervisor {
        Supervisor::new(&SupervisionOptions::default(), 0.0)
    }

    /// The retry policy the drivers run under.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.inner.retry
    }

    /// Check the budgets at a barrier and mark the barrier as progress.
    ///
    /// `now_s` is the device clock; the supervisor adds any charged
    /// disk-stall time before comparing. Order of precedence:
    /// cancellation, deadline, stall.
    pub fn check_barrier(&self, now_s: f64, what: &str) -> Result<(), ApspError> {
        if let Some(tok) = &self.inner.cancel {
            if tok.tick(1) {
                return Err(ApspError::Cancelled {
                    detail: format!("observed at {what}"),
                });
            }
        }
        let mut st = self.inner.state.lock();
        let eff = now_s + st.io_stall_s;
        if let Some(dl) = self.inner.deadline_s {
            if eff >= dl {
                return Err(ApspError::DeadlineExceeded {
                    detail: format!(
                        "simulated clock at {eff:.6}s passed the deadline of {dl:.6}s at {what}"
                    ),
                });
            }
        }
        if let Some(budget) = self.inner.budget_s {
            let idle = eff - st.last_progress_s;
            if idle > budget {
                st.events.push(SupervisionEvent::Stall {
                    at: what.to_string(),
                    idle_seconds: idle,
                });
                return Err(ApspError::Stalled {
                    detail: format!(
                        "no barrier committed for {idle:.6}s (budget {budget:.6}s) at {what}"
                    ),
                });
            }
        }
        st.last_progress_s = eff;
        Ok(())
    }

    /// Cancellation check for the tile store's read/write loops; counts
    /// as `ops` row-granular token checks (a block access of `r` rows is
    /// `r` checks, matching the store's crash-op accounting). A trip
    /// surfaces as an `io::Error` wrapping [`CancelledMark`] so it flows
    /// through the store's existing error plumbing and lands as
    /// [`ApspError::Cancelled`].
    pub fn io_tick(&self, ops: u64) -> std::io::Result<()> {
        if let Some(tok) = &self.inner.cancel {
            if tok.tick(ops) {
                return Err(std::io::Error::other(CancelledMark));
            }
        }
        Ok(())
    }

    /// Charge simulated host-side disk stall time (from a
    /// [`crate::tile_store::DiskFault::HangMicros`] fault). The charge
    /// counts against both the deadline and the progress budget at the
    /// next barrier check.
    pub fn charge_io_stall(&self, seconds: f64) {
        self.inner.state.lock().io_stall_s += seconds;
    }

    /// Total simulated disk-stall time charged so far.
    pub fn io_stall_seconds(&self) -> f64 {
        self.inner.state.lock().io_stall_s
    }

    /// Restart the progress window at `now_s` — called when a retry or
    /// fallback begins a fresh attempt, so the stale window of the
    /// failed attempt cannot instantly re-trip the watchdog.
    pub fn reset_progress(&self, now_s: f64) {
        let mut st = self.inner.state.lock();
        let eff = now_s + st.io_stall_s;
        st.last_progress_s = eff;
    }

    /// Append to the event log.
    pub fn record_event(&self, event: SupervisionEvent) {
        self.inner.state.lock().events.push(event);
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<SupervisionEvent> {
        self.inner.state.lock().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_supervisor_always_passes() {
        let sup = Supervisor::unarmed();
        for i in 0..1000 {
            sup.check_barrier(i as f64 * 1e6, "round").unwrap();
            sup.io_tick(1).unwrap();
        }
    }

    #[test]
    fn deadline_trips_at_the_barrier_after_expiry() {
        let opts = SupervisionOptions {
            deadline_ms: Some(1500),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 10.0);
        sup.check_barrier(10.5, "round 0").unwrap();
        sup.check_barrier(11.4, "round 1").unwrap();
        let err = sup.check_barrier(11.6, "round 2").unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::DeadlineExceeded);
        assert!(err.to_string().contains("round 2"));
    }

    #[test]
    fn watchdog_trips_when_a_barrier_misses_its_budget() {
        let opts = SupervisionOptions {
            progress_budget_ms: Some(1000),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 0.0);
        sup.check_barrier(0.9, "b0").unwrap();
        sup.check_barrier(1.7, "b1").unwrap();
        let err = sup.check_barrier(2.8, "b2").unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::Stalled);
        let events = sup.events();
        assert!(
            matches!(&events[..], [SupervisionEvent::Stall { at, .. }] if at == "b2"),
            "stall must be logged: {events:?}"
        );
    }

    #[test]
    fn io_stall_charges_count_against_both_budgets() {
        let opts = SupervisionOptions {
            deadline_ms: Some(10_000),
            progress_budget_ms: Some(5_000),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 0.0);
        sup.check_barrier(1.0, "b0").unwrap();
        // The device clock barely moves, but a hung disk burns 6s.
        sup.charge_io_stall(6.0);
        let err = sup.check_barrier(1.1, "b1").unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::Stalled);
    }

    #[test]
    fn cancel_token_trips_immediately_and_by_countdown() {
        let tok = CancelToken::new();
        let run_side = tok.clone();
        assert!(!run_side.is_cancelled());
        tok.cancel();
        assert!(run_side.is_cancelled());

        let tok = CancelToken::cancel_after_checks(3);
        let opts = SupervisionOptions {
            cancel: Some(tok.clone()),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 0.0);
        sup.check_barrier(0.0, "b0").unwrap();
        sup.io_tick(1).unwrap();
        let err = sup.check_barrier(0.0, "b2").unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::Cancelled);
        assert!(tok.is_cancelled());
    }

    #[test]
    fn cancelled_io_tick_round_trips_through_apsp_error() {
        let opts = SupervisionOptions {
            cancel: Some(CancelToken::cancel_after_checks(1)),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 0.0);
        let io = sup.io_tick(1).unwrap_err();
        let e = ApspError::from(io);
        assert_eq!(e.kind(), ApspErrorKind::Cancelled);
    }

    #[test]
    fn retry_state_matches_the_drivers_ladder() {
        let oom = || OutOfDeviceMemory {
            requested: 64,
            available: 0,
            capacity: 64,
        };
        let sup = Supervisor::unarmed();
        let mut rs = RetryState::new(&RetryPolicy::default(), "test");
        let (s1, _) = rs
            .next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap();
        assert_eq!(s1, RetryStep::SameGeometry);
        let (s2, _) = rs
            .next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap();
        assert_eq!(s2, RetryStep::Shrink);
        let (s3, _) = rs
            .next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap();
        assert_eq!(s3, RetryStep::SameGeometry, "ladder repeats after a shrink");
        assert_eq!(rs.retries(), 3);

        // Fatal kinds propagate unchanged, consuming nothing.
        let fatal = rs
            .next_step(ApspError::InvalidInput("x".into()), &sup)
            .unwrap_err();
        assert_eq!(fatal.kind(), ApspErrorKind::InvalidInput);
        assert_eq!(rs.retries(), 3);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let oom = || OutOfDeviceMemory {
            requested: 64,
            available: 0,
            capacity: 64,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            ..Default::default()
        };
        let sup = Supervisor::unarmed();
        let mut rs = RetryState::new(&policy, "test");
        rs.next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap();
        rs.next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap();
        let exhausted = rs
            .next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
            .unwrap_err();
        assert_eq!(exhausted.kind(), ApspErrorKind::OutOfDeviceMemory);
    }

    #[test]
    fn retry_events_are_a_pure_function_of_the_seed() {
        let oom = || OutOfDeviceMemory {
            requested: 64,
            available: 0,
            capacity: 64,
        };
        let run = || {
            let sup = Supervisor::unarmed();
            let mut rs = RetryState::new(&RetryPolicy::default(), "test");
            for _ in 0..5 {
                rs.next_step(ApspError::OutOfDeviceMemory(oom()), &sup)
                    .unwrap();
            }
            sup.events()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Backoffs grow (exponential base dominates the jitter).
        let backs: Vec<u64> = a
            .iter()
            .map(|e| match e {
                SupervisionEvent::Retry { backoff_ms, .. } => *backoff_ms,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert!(backs.windows(2).all(|w| w[0] < w[1]), "{backs:?}");
    }
}
