//! Configuration for the out-of-core implementations and the front-end.

use crate::selector::SelectorConfig;
use crate::supervisor::SupervisionOptions;
use crate::tile_store::StorageBackend;
pub use apsp_cpu::ExecBackend;
use apsp_graph::Dist;

/// The three implementations of the paper (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Out-of-core blocked Floyd-Warshall (Algorithm 1).
    FloydWarshall,
    /// Out-of-core batched Johnson's (Algorithm 2).
    Johnson,
    /// Out-of-core boundary algorithm (Algorithm 3).
    Boundary,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::FloydWarshall => "blocked Floyd-Warshall",
            Algorithm::Johnson => "Johnson's",
            Algorithm::Boundary => "boundary",
        };
        f.write_str(name)
    }
}

/// How aggressively the silent-data-corruption (SDC) guards check live
/// tile data. See `core::sdc` for the invariants behind each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SdcGuardMode {
    /// No guarding (the pre-SDC behaviour): a flipped bit flows into
    /// the final matrix undetected.
    #[default]
    Off,
    /// The tile store keeps a per-row FNV checksum registry, verified on
    /// every read and re-verified in full at each barrier and at run
    /// end. Catches at-rest corruption of host-resident tiles
    /// deterministically, at a cost bounded by the barrier gate in CI
    /// (≤ 5% on the bench smoke run).
    Checksum,
    /// [`SdcGuardMode::Checksum`] plus semantic (ABFT) invariants at
    /// every barrier: per-row distance sums must not increase across a
    /// relaxation round, and sampled triangle inequalities
    /// `d[i][j] ≤ d[i][k] ⊕ d[k][j]` (with `k` drawn only from
    /// completed pivot rows) must hold. Also catches corruption that
    /// happened *in flight* on the device, which no host-side checksum
    /// can see.
    Full,
}

impl SdcGuardMode {
    /// Whether any guarding is active.
    pub fn is_on(self) -> bool {
        self != SdcGuardMode::Off
    }

    /// Whether the semantic (monotone + triangle) checks run.
    pub fn semantic(self) -> bool {
        self == SdcGuardMode::Full
    }
}

impl std::fmt::Display for SdcGuardMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SdcGuardMode::Off => "off",
            SdcGuardMode::Checksum => "checksum",
            SdcGuardMode::Full => "full",
        })
    }
}

impl std::str::FromStr for SdcGuardMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SdcGuardMode::Off),
            "checksum" => Ok(SdcGuardMode::Checksum),
            "full" => Ok(SdcGuardMode::Full),
            other => Err(format!(
                "unknown SDC guard mode `{other}` (expected off|checksum|full)"
            )),
        }
    }
}

/// When to use dynamic parallelism in the Johnson path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicParallelism {
    /// Never launch child kernels.
    Off,
    /// Always use the child-kernel path.
    On,
    /// The paper's policy: enable only when the batch size is too small
    /// to saturate the device.
    Auto,
}

/// Options for the Johnson implementation.
#[derive(Debug, Clone, Copy)]
pub struct JohnsonOptions {
    /// Near-Far bucket width; `None` derives it from the mean edge weight.
    pub delta: Option<Dist>,
    /// Dynamic-parallelism policy.
    pub dynamic_parallelism: DynamicParallelism,
    /// The constant `c` of the paper's batch formula
    /// `bat = (L − S)/(c·m)`: work-queue words per edge per SSSP instance.
    pub queue_words_per_edge: f64,
    /// Out-degree above which a vertex is "heavy" for child kernels.
    pub heavy_degree_threshold: usize,
    /// Double-buffer the result panels so D2H overlaps the next batch.
    pub overlap_transfers: bool,
    /// Host execution backend for the MSSP batches.
    pub exec: ExecBackend,
    /// Silent-corruption guard level for the batch barriers.
    pub sdc_guard: SdcGuardMode,
}

impl Default for JohnsonOptions {
    fn default() -> Self {
        JohnsonOptions {
            delta: None,
            dynamic_parallelism: DynamicParallelism::Auto,
            queue_words_per_edge: 1.0,
            heavy_degree_threshold: 256,
            overlap_transfers: true,
            exec: ExecBackend::default(),
            sdc_guard: SdcGuardMode::default(),
        }
    }
}

/// Options for the boundary implementation.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryOptions {
    /// Number of components; `None` uses the paper's `√n / 4`.
    pub num_components: Option<usize>,
    /// Accumulate output row panels in a device buffer and transfer
    /// `N_row` panels at once (the paper's batching optimization,
    /// 1.99–5.71× in its Fig 8).
    pub batch_transfers: bool,
    /// Double-buffer the staging so transfers overlap dist₄ compute
    /// (12.7–29.1% in Fig 8).
    pub overlap_transfers: bool,
    /// Partitioner seed (determinism).
    pub partition_seed: u64,
    /// Host execution backend for the FW blocks and chained multiplies.
    pub exec: ExecBackend,
    /// Silent-corruption guard level for the component-flush barriers.
    pub sdc_guard: SdcGuardMode,
}

impl Default for BoundaryOptions {
    fn default() -> Self {
        BoundaryOptions {
            num_components: None,
            batch_transfers: true,
            overlap_transfers: true,
            partition_seed: 0x9A17,
            exec: ExecBackend::default(),
            sdc_guard: SdcGuardMode::default(),
        }
    }
}

/// Options for the out-of-core Floyd-Warshall implementation.
#[derive(Debug, Clone, Copy)]
pub struct FwOptions {
    /// Tile side override; `None` sizes tiles to device memory.
    pub block_size: Option<usize>,
    /// Double-buffer stage-3 tiles so the D2H of one tile overlaps the
    /// compute of the next.
    pub overlap_transfers: bool,
    /// Host execution backend for the tile kernels.
    pub exec: ExecBackend,
    /// Silent-corruption guard level for the pivot-round barriers.
    pub sdc_guard: SdcGuardMode,
}

impl Default for FwOptions {
    fn default() -> Self {
        FwOptions {
            block_size: None,
            overlap_transfers: true,
            exec: ExecBackend::default(),
            sdc_guard: SdcGuardMode::default(),
        }
    }
}

/// Crash-safe checkpointing for [`crate::api::apsp`].
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding the run manifest and matrix snapshots (created
    /// if missing). Must not be a `Disk` backend's spill directory.
    pub dir: std::path::PathBuf,
    /// `true`: continue from a checkpoint in `dir` if one exists
    /// (validated against the graph before any work). `false`: clear any
    /// existing checkpoint and start fresh — either way the run commits
    /// its progress as it goes.
    pub resume: bool,
}

/// Front-end options for [`crate::api::apsp`].
#[derive(Debug, Clone)]
pub struct ApspOptions {
    /// Force a specific implementation; `None` runs the selector.
    pub algorithm: Option<Algorithm>,
    /// Where the result matrix lives.
    pub storage: StorageBackend,
    /// Johnson-specific knobs.
    pub johnson: JohnsonOptions,
    /// Boundary-specific knobs.
    pub boundary: BoundaryOptions,
    /// Floyd-Warshall-specific knobs.
    pub fw: FwOptions,
    /// Selector configuration (density thresholds, sampling).
    pub selector: SelectorConfig,
    /// Checkpoint/resume; `None` runs without durability.
    pub checkpoint: Option<CheckpointOptions>,
    /// Runtime supervision: deadline, progress watchdog, cancellation,
    /// retry policy, and the algorithm fallback chain.
    pub supervision: SupervisionOptions,
    /// Host execution backend, applied to every algorithm and the tile
    /// store (overrides the per-algorithm `exec` fields when set through
    /// [`crate::api::apsp`]).
    pub exec: ExecBackend,
    /// Record run telemetry (phase spans, calibration records, byte and
    /// launch counters) and attach a [`crate::telemetry::RunReport`] to
    /// the result. Off by default; enabling it never changes the
    /// computed distances or the simulated clock.
    pub telemetry: bool,
    /// Directory of the persisted per-device-profile calibration store
    /// (created if missing). When set, the selector consults the
    /// store's learned coefficient corrections before the seed
    /// constants, and each successful run folds its realized seconds
    /// back in — so repeated runs on one profile converge. Learning is
    /// applied at run *end*: within a single run the selection and the
    /// computed matrix are identical with calibration on or off. A
    /// corrupt store is ignored for the run (seed constants apply) and
    /// overwritten by the next commit. `None` disables persistence.
    pub calibration_dir: Option<std::path::PathBuf>,
    /// Silent-corruption guard level, applied to every algorithm and
    /// the tile store (overrides the per-algorithm `sdc_guard` fields
    /// when set through [`crate::api::apsp`]). Off by default; with
    /// guards on, a clean run computes bit-identical distances — the
    /// guards only ever *read* live data.
    pub sdc_guard: SdcGuardMode,
}

impl Default for ApspOptions {
    fn default() -> Self {
        ApspOptions {
            algorithm: None,
            storage: StorageBackend::Memory,
            johnson: JohnsonOptions::default(),
            boundary: BoundaryOptions::default(),
            fw: FwOptions::default(),
            selector: SelectorConfig::default(),
            checkpoint: None,
            supervision: SupervisionOptions::default(),
            exec: ExecBackend::default(),
            telemetry: false,
            calibration_dir: None,
            sdc_guard: SdcGuardMode::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Johnson.to_string(), "Johnson's");
        assert_eq!(Algorithm::Boundary.to_string(), "boundary");
        assert!(Algorithm::FloydWarshall.to_string().contains("Floyd"));
    }

    #[test]
    fn defaults_follow_paper() {
        let o = ApspOptions::default();
        assert!(o.algorithm.is_none());
        assert!(o.boundary.batch_transfers);
        assert!(o.boundary.overlap_transfers);
        assert_eq!(o.johnson.dynamic_parallelism, DynamicParallelism::Auto);
        assert_eq!(o.sdc_guard, SdcGuardMode::Off);
    }

    #[test]
    fn sdc_guard_mode_round_trips_through_strings() {
        for mode in [
            SdcGuardMode::Off,
            SdcGuardMode::Checksum,
            SdcGuardMode::Full,
        ] {
            assert_eq!(mode.to_string().parse::<SdcGuardMode>().unwrap(), mode);
        }
        assert!("paranoid".parse::<SdcGuardMode>().is_err());
        assert!(!SdcGuardMode::Off.is_on());
        assert!(SdcGuardMode::Checksum.is_on());
        assert!(!SdcGuardMode::Checksum.semantic());
        assert!(SdcGuardMode::Full.semantic());
    }
}
