//! APSP-as-a-service: a deterministic job scheduler over a simulated
//! device fleet.
//!
//! [`crate::api::apsp`] owns one device for one run. This module turns
//! that single-run substrate into a multi-tenant serving layer — the
//! regime where most traffic is small queries against a few hot graphs:
//!
//! * **Bounded admission queue** — submissions beyond
//!   [`ServiceConfig::queue_capacity`] are rejected with a typed
//!   [`ServiceError::QueueFull`] carrying a retry-after hint, never
//!   silently dropped or unboundedly buffered.
//! * **Admission control** — once the service has observed at least one
//!   completion it predicts each deadline-carrying job's queue wait from
//!   the learned per-row rate; a job predicted to expire before a device
//!   frees up is turned away immediately as [`ServiceError::Busy`]
//!   rather than admitted to die in the queue.
//! * **Per-job supervision budgets** — each job's deadline (minus the
//!   queue wait it already paid) and retry budget arm a
//!   [`Supervisor`], so budgets are enforced at every driver barrier.
//! * **Strict fault isolation** — every job executes on a *fresh*
//!   [`GpuDevice`] drawn from its fleet slot's profile. An injected
//!   fault, a `SilentCorruption`, or a blown deadline fails that job
//!   typed; the queue, the fleet, and sibling jobs' bits are untouched
//!   by construction.
//! * **Verified result cache** — keyed by the FNV graph fingerprint plus
//!   an options fingerprint; every hit re-verifies the entry's panel
//!   checksums before serving. A corrupt entry is evicted and recomputed,
//!   never served. Hits are served even when the compute queue is
//!   saturated (they never touch the queue).
//! * **Partial queries** — [`JobSpec::Sources`] routes through the
//!   Johnson batch driver ([`crate::ooc_johnson::ooc_johnson_sources`]),
//!   paying `O(k·n)` instead of `n²`.
//! * **Warm resubmission** — with a [`ServiceConfig::checkpoint_root`],
//!   full-matrix jobs checkpoint per batch under a key-derived tag;
//!   a job killed by deadline or cancellation keeps its checkpoint, so
//!   resubmitting the same request resumes instead of starting over.
//!
//! Scheduling is deterministic: jobs run in submission order, each on
//! the fleet device with the least accumulated simulated time (ties to
//! the lowest index). No wall clocks, no threads — same seed, same
//! trace, same bits.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use crate::api::apsp;
use crate::checkpoint::graph_fingerprint;
use crate::error::{ApspError, ApspErrorKind};
use crate::ooc_johnson::ooc_johnson_sources;
use crate::options::{Algorithm, ApspOptions, CheckpointOptions};
use crate::supervisor::{splitmix64, Supervisor};
use crate::tile_store::{fnv1a, FNV_OFFSET_BASIS, SDC_PANEL_ROWS};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::{CsrGraph, Dist, VertexId};

/// Opaque job handle returned by [`ApspService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// The full `n × n` distance matrix through [`crate::api::apsp`]
    /// (selector, fallback chain, checkpointing — the whole front-end).
    Full,
    /// Distance rows for exactly these sources, in request order,
    /// through the Johnson batch driver. `O(k·n)` data movement.
    Sources(Vec<VertexId>),
}

impl JobSpec {
    /// Output rows this spec produces on a graph with `n` vertices.
    pub fn rows(&self, n: usize) -> usize {
        match self {
            JobSpec::Full => n,
            JobSpec::Sources(s) => s.len(),
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            JobSpec::Full => "full",
            JobSpec::Sources(_) => "sources",
        }
    }
}

/// Deterministic fault plan applied to a job's fresh device before it
/// runs — the service-level analogue of the simulator's `inject_*`
/// hooks, used by the conformance chaos harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobFault {
    /// The job's `kth` device allocation fails.
    AllocFailure { kth: u64 },
    /// The job's `kth` kernel launch hangs for `extra_seconds`.
    KernelStall { kth: u64, extra_seconds: f64 },
    /// Bit `bit` of the job's `kth` H2D upload flips in flight.
    DeviceBitFlip { kth: u64, bit: u64 },
}

/// One unit of work for [`ApspService::submit`].
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The input graph (shared — hot graphs are submitted repeatedly).
    pub graph: Arc<CsrGraph>,
    /// Full matrix or k-source partial query.
    pub spec: JobSpec,
    /// Per-run options. `supervision.deadline_ms` here bounds *compute*;
    /// [`JobRequest::deadline_ms`] bounds queue wait + compute.
    pub opts: ApspOptions,
    /// End-to-end budget in simulated milliseconds, counted from
    /// submission: queue wait spends it, and whatever remains arms the
    /// run's supervisor. `None` waits and runs unbounded.
    pub deadline_ms: Option<u64>,
    /// Seeded fault plan for the job's device (tests/chaos only).
    pub fault: Option<JobFault>,
}

impl JobRequest {
    /// A full-matrix request with default options and no budget.
    pub fn full(graph: Arc<CsrGraph>) -> JobRequest {
        JobRequest {
            graph,
            spec: JobSpec::Full,
            opts: ApspOptions::default(),
            deadline_ms: None,
            fault: None,
        }
    }

    /// A k-source partial request with default options and no budget.
    pub fn sources(graph: Arc<CsrGraph>, sources: Vec<VertexId>) -> JobRequest {
        JobRequest {
            graph,
            spec: JobSpec::Sources(sources),
            opts: ApspOptions::default(),
            deadline_ms: None,
            fault: None,
        }
    }
}

/// Typed service-layer failures — the degradation ladder's vocabulary.
/// Compute failures keep their [`ApspError`] typing; these cover what
/// can go wrong *around* the compute.
#[derive(Debug)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity. Resubmit after the
    /// hinted backoff.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
        /// Predicted simulated milliseconds until a slot frees up.
        retry_after_ms: u64,
    },
    /// Admission control predicts the job's deadline would expire in the
    /// queue; it was turned away instead of admitted to die.
    Busy {
        /// Predicted simulated milliseconds of queue wait.
        retry_after_ms: u64,
    },
    /// The job was cancelled while still queued (never admitted to a
    /// device).
    JobCancelled {
        /// Where the cancellation landed.
        detail: String,
    },
    /// No job with this id was ever accepted.
    UnknownJob {
        /// The offending handle.
        id: JobId,
    },
    /// The job ran and failed; the compute error keeps its own typing.
    Compute(ApspError),
}

/// Coarse classification of a [`ServiceError`], mirroring
/// [`ApspErrorKind`] so harnesses and the CLI match on kinds, not
/// `Debug` strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceErrorKind {
    QueueFull,
    Busy,
    JobCancelled,
    UnknownJob,
    Compute(ApspErrorKind),
}

impl ServiceErrorKind {
    /// Stable machine-readable name (the `--error-json` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceErrorKind::QueueFull => "QueueFull",
            ServiceErrorKind::Busy => "Busy",
            ServiceErrorKind::JobCancelled => "JobCancelled",
            ServiceErrorKind::UnknownJob => "UnknownJob",
            ServiceErrorKind::Compute(k) => k.as_str(),
        }
    }

    /// The `apsp-run` process exit code for this kind (see the README
    /// exit-code table): service rejections get distinct codes so
    /// harnesses can branch on `$?` alone.
    pub fn exit_code(self) -> i32 {
        match self {
            ServiceErrorKind::Busy => 20,
            ServiceErrorKind::QueueFull => 21,
            ServiceErrorKind::JobCancelled => 22,
            ServiceErrorKind::UnknownJob => 2,
            ServiceErrorKind::Compute(_) => 1,
        }
    }
}

impl ServiceError {
    /// The error's coarse classification.
    pub fn kind(&self) -> ServiceErrorKind {
        match self {
            ServiceError::QueueFull { .. } => ServiceErrorKind::QueueFull,
            ServiceError::Busy { .. } => ServiceErrorKind::Busy,
            ServiceError::JobCancelled { .. } => ServiceErrorKind::JobCancelled,
            ServiceError::UnknownJob { .. } => ServiceErrorKind::UnknownJob,
            ServiceError::Compute(e) => ServiceErrorKind::Compute(e.kind()),
        }
    }

    /// The retry-after hint, when this rejection carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::QueueFull { retry_after_ms, .. }
            | ServiceError::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull {
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "admission queue full ({capacity} jobs); retry after ~{retry_after_ms} ms"
            ),
            ServiceError::Busy { retry_after_ms } => write!(
                f,
                "service busy: predicted queue wait exceeds the job deadline; \
                 retry after ~{retry_after_ms} ms"
            ),
            ServiceError::JobCancelled { detail } => write!(f, "job cancelled: {detail}"),
            ServiceError::UnknownJob { id } => write!(f, "unknown {id}"),
            ServiceError::Compute(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Compute(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ApspError> for ServiceError {
    fn from(e: ApspError) -> Self {
        ServiceError::Compute(e)
    }
}

/// Cache key: what makes two jobs' bits interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a over the graph's structure and weights
    /// ([`graph_fingerprint`]).
    pub graph_fp: u64,
    /// FNV-1a over the result-shaping options ([`options_fingerprint`]).
    pub opts_fp: u64,
}

/// FNV-1a over everything that can change the *bits* of a result:
/// the forced algorithm (selection changes nothing on a healthy device,
/// but a forced algorithm must not alias the selector's pick), the SDC
/// guard mode (guards change recovery behaviour under faults), and the
/// requested sources (order-sensitive — row `i` is `sources[i]`).
///
/// Deliberately *excluded*: the execution backend and the storage
/// backend. Backend parity (scalar vs parallel, RAM vs disk) is a
/// repo-wide bit-identity contract enforced by the conformance suite,
/// so results computed under either are interchangeable — excluding
/// them is what makes the cache useful across heterogeneous replicas.
pub fn options_fingerprint(spec: &JobSpec, opts: &ApspOptions) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    let alg = match opts.algorithm {
        None => 0u8,
        Some(Algorithm::FloydWarshall) => 1,
        Some(Algorithm::Johnson) => 2,
        Some(Algorithm::Boundary) => 3,
    };
    h = fnv1a(&[alg], h);
    let guard = match opts.sdc_guard {
        crate::options::SdcGuardMode::Off => 0u8,
        crate::options::SdcGuardMode::Checksum => 1,
        crate::options::SdcGuardMode::Full => 2,
    };
    h = fnv1a(&[guard], h);
    match spec {
        JobSpec::Full => h = fnv1a(&[0xFFu8], h),
        JobSpec::Sources(srcs) => {
            h = fnv1a(&(srcs.len() as u64).to_le_bytes(), h);
            for &s in srcs {
                h = fnv1a(&s.to_le_bytes(), h);
            }
        }
    }
    h
}

/// The key for a request against its graph.
pub fn cache_key(req: &JobRequest) -> CacheKey {
    CacheKey {
        graph_fp: graph_fingerprint(&req.graph),
        opts_fp: options_fingerprint(&req.spec, &req.opts),
    }
}

/// A completed job's rows, checksummed for verification-on-hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRows {
    /// Row length (the graph's vertex count).
    pub n: usize,
    /// `None` for a full matrix (rows = `n`); the request-order source
    /// list for a partial query.
    pub sources: Option<Vec<VertexId>>,
    /// Row-major distances, `rows() × n`.
    pub data: Vec<Dist>,
    /// FNV-1a per [`SDC_PANEL_ROWS`]-row panel, computed at insert time
    /// and re-verified on every cache hit.
    checksums: Vec<u64>,
}

impl ResultRows {
    /// Checksummed rows ready for caching/serving.
    pub fn new(n: usize, sources: Option<Vec<VertexId>>, data: Vec<Dist>) -> ResultRows {
        let checksums = Self::compute_checksums(n, &data);
        ResultRows {
            n,
            sources,
            data,
            checksums,
        }
    }

    /// Number of rows held.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.n).unwrap_or(0)
    }

    /// Row `i` (request order for partial results).
    pub fn row(&self, i: usize) -> &[Dist] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    fn compute_checksums(n: usize, data: &[Dist]) -> Vec<u64> {
        if n == 0 || data.is_empty() {
            return Vec::new();
        }
        let rows = data.len() / n;
        let num_panels = rows.div_ceil(SDC_PANEL_ROWS);
        let mut sums = Vec::with_capacity(num_panels);
        for p in 0..num_panels {
            let start = p * SDC_PANEL_ROWS * n;
            let end = ((p + 1) * SDC_PANEL_ROWS * n).min(data.len());
            let mut h = FNV_OFFSET_BASIS;
            for v in &data[start..end] {
                h = fnv1a(&v.to_le_bytes(), h);
            }
            sums.push(h);
        }
        sums
    }

    /// Re-verify every panel checksum — the integrity gate a cache hit
    /// must pass before its bits are served.
    pub fn verify(&self) -> bool {
        self.checksums == Self::compute_checksums(self.n, &self.data)
    }
}

enum CacheLookup {
    Hit(Arc<ResultRows>),
    CorruptEvicted,
    Miss,
}

/// Deterministic LRU cache of verified results.
struct ResultCache {
    capacity: usize,
    /// Front = most recently used. Linear scan — the capacity is small
    /// and determinism beats hash-order surprises.
    entries: Vec<(CacheKey, Arc<ResultRows>)>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            entries: Vec::new(),
        }
    }

    fn lookup(&mut self, key: CacheKey) -> CacheLookup {
        let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) else {
            return CacheLookup::Miss;
        };
        let (k, rows) = self.entries.remove(pos);
        if !rows.verify() {
            // Corrupt at rest: evict, never serve. The caller recomputes.
            return CacheLookup::CorruptEvicted;
        }
        self.entries.insert(0, (k, Arc::clone(&rows)));
        CacheLookup::Hit(rows)
    }

    /// Insert (moving to most-recent); returns how many entries the
    /// capacity bound evicted.
    fn insert(&mut self, key: CacheKey, rows: Arc<ResultRows>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, rows));
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            self.entries.pop();
            evicted += 1;
        }
        evicted
    }

    /// Test hook: flip one bit of the cached data for `key` so the next
    /// hit's verification must catch it. Returns whether an entry was
    /// corrupted.
    fn corrupt_entry(&mut self, key: CacheKey) -> bool {
        for (k, rows) in &mut self.entries {
            if *k == key {
                let cloned = Arc::make_mut(rows);
                if let Some(v) = cloned.data.first_mut() {
                    *v ^= 1 << 7;
                    return true;
                }
            }
        }
        false
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The simulated fleet: one entry per device slot. Every job runs on
    /// a *fresh* device built from its slot's profile (fault isolation);
    /// the slot accumulates the simulated seconds.
    pub devices: Vec<DeviceProfile>,
    /// Bound on queued (admitted, not yet run) jobs.
    pub queue_capacity: usize,
    /// Bound on cached results (0 disables the cache).
    pub cache_capacity: usize,
    /// When set, full-matrix jobs checkpoint per batch under
    /// `<root>/<key>/`; deadline- or cancel-killed jobs keep theirs for
    /// warm resubmission. `None` disables service-managed durability.
    pub checkpoint_root: Option<PathBuf>,
    /// Predictive admission control (the `Busy` rung). Off, only the
    /// queue bound sheds load.
    pub admission_control: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: vec![DeviceProfile::v100()],
            queue_capacity: 32,
            cache_capacity: 16,
            checkpoint_root: None,
            admission_control: true,
        }
    }
}

/// Monotonic counters, exposed raw and in the service JSONL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Submissions seen (accepted or not).
    pub submitted: u64,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs completed with verified rows (cache hits included).
    pub completed: u64,
    /// Jobs that ran and failed typed.
    pub failed: u64,
    /// Jobs whose deadline expired while still queued.
    pub expired: u64,
    /// Queued jobs cancelled before admission to a device.
    pub cancelled: u64,
    /// Submissions rejected by predictive admission control.
    pub rejected_busy: u64,
    /// Submissions rejected by the queue bound.
    pub rejected_queue_full: u64,
    /// Cache lookups served from a verified entry.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Entries evicted by the capacity bound.
    pub cache_evictions: u64,
    /// Entries evicted because their checksums no longer verified.
    pub cache_corrupt_evictions: u64,
}

/// How a finished job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// Verified rows are available.
    Completed(CompletedJob),
    /// The run failed; the compute error keeps its typing.
    Failed(FailedJob),
    /// Cancelled while still queued.
    Cancelled {
        /// Where the cancellation landed.
        detail: String,
    },
}

impl JobState {
    /// Short stable tag for logs and JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Completed(_) => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled { .. } => "cancelled",
        }
    }
}

/// A completed job's result and accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The verified rows (shared with the cache).
    pub rows: Arc<ResultRows>,
    /// Which implementation ran (`None` for cache hits and partial
    /// queries, which always use the Johnson batch driver).
    pub algorithm: Option<Algorithm>,
    /// Served from the cache without touching a device.
    pub from_cache: bool,
    /// Fleet slot that ran the job (`None` for cache hits).
    pub device: Option<usize>,
    /// Simulated seconds the job's run took (0 for cache hits).
    pub sim_seconds: f64,
    /// Simulated seconds spent queued before the run started.
    pub queue_wait_s: f64,
}

/// A failed job's typed error and accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedJob {
    /// Coarse error classification.
    pub kind: ApspErrorKind,
    /// Human-readable failure detail.
    pub detail: String,
    /// Fleet slot that ran the job (`None` when it expired in the
    /// queue).
    pub device: Option<usize>,
    /// Whether a checkpoint survives for warm resubmission.
    pub checkpoint_kept: bool,
    /// Simulated seconds spent queued before the run (or expiry).
    pub queue_wait_s: f64,
}

/// What [`ApspService::cancel`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now cancelled — typed, immediate,
    /// zero residue (it never touched a device or disk).
    Dequeued,
    /// The job had already reached a terminal state; nothing to do.
    AlreadyTerminal,
}

struct Job {
    req: JobRequest,
    key: CacheKey,
    state: JobState,
    submitted_s: f64,
}

struct FleetSlot {
    profile: DeviceProfile,
    clock_s: f64,
}

/// The scheduler. See the module docs for the contract.
pub struct ApspService {
    cfg: ServiceConfig,
    fleet: Vec<FleetSlot>,
    queue: VecDeque<JobId>,
    jobs: BTreeMap<u64, Job>,
    cache: ResultCache,
    counters: ServiceCounters,
    next_id: u64,
    /// Learned simulated seconds per output row, EMA over completions.
    /// `None` until the first completion — admission control stays
    /// permissive until the service has evidence.
    secs_per_row: Option<f64>,
}

impl ApspService {
    /// A service over `cfg`'s fleet. Panics if the fleet is empty.
    pub fn new(cfg: ServiceConfig) -> ApspService {
        assert!(!cfg.devices.is_empty(), "service needs at least one device");
        let fleet = cfg
            .devices
            .iter()
            .map(|p| FleetSlot {
                profile: p.clone(),
                clock_s: 0.0,
            })
            .collect();
        let cache = ResultCache::new(cfg.cache_capacity);
        ApspService {
            cfg,
            fleet,
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            cache,
            counters: ServiceCounters::default(),
            next_id: 1,
            secs_per_row: None,
        }
    }

    /// Current simulated service time: the earliest moment any fleet
    /// slot could accept work.
    pub fn now_s(&self) -> f64 {
        self.fleet
            .iter()
            .map(|s| s.clock_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// A job's current state.
    pub fn state(&self, id: JobId) -> Option<&JobState> {
        self.jobs.get(&id.0).map(|j| &j.state)
    }

    /// Ids of every job the service accepted, in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().map(|&id| JobId(id)).collect()
    }

    /// Predicted simulated seconds of queue wait for a newly admitted
    /// job, from the learned per-row rate and the current backlog.
    /// `None` until the first completion taught the service a rate.
    fn predicted_wait_s(&self) -> Option<f64> {
        let rate = self.secs_per_row?;
        let backlog_rows: usize = self
            .queue
            .iter()
            .filter_map(|id| self.jobs.get(&id.0))
            .map(|j| j.req.spec.rows(j.req.graph.num_vertices()).max(1))
            .sum();
        Some(backlog_rows as f64 * rate / self.fleet.len() as f64)
    }

    /// Submit a job. Degradation ladder, in order:
    ///
    /// 1. a verified cache hit completes immediately — even when the
    ///    queue is saturated (hits never consume a queue slot);
    /// 2. a corrupt cache entry is evicted and the job proceeds to
    ///    recompute (never served);
    /// 3. the queue bound rejects with [`ServiceError::QueueFull`] plus
    ///    a retry-after hint;
    /// 4. predictive admission control rejects deadline-carrying jobs
    ///    that would expire in the queue with [`ServiceError::Busy`];
    /// 5. otherwise the job is queued FIFO.
    pub fn submit(&mut self, req: JobRequest) -> Result<JobId, ServiceError> {
        self.counters.submitted += 1;
        let key = cache_key(&req);
        let now = self.now_s();
        if self.cfg.cache_capacity > 0 {
            match self.cache.lookup(key) {
                CacheLookup::Hit(rows) => {
                    self.counters.cache_hits += 1;
                    self.counters.completed += 1;
                    let id = self.alloc_id();
                    self.jobs.insert(
                        id.0,
                        Job {
                            req,
                            key,
                            state: JobState::Completed(CompletedJob {
                                rows,
                                algorithm: None,
                                from_cache: true,
                                device: None,
                                sim_seconds: 0.0,
                                queue_wait_s: 0.0,
                            }),
                            submitted_s: now,
                        },
                    );
                    return Ok(id);
                }
                CacheLookup::CorruptEvicted => {
                    self.counters.cache_corrupt_evictions += 1;
                    self.counters.cache_misses += 1;
                }
                CacheLookup::Miss => {
                    self.counters.cache_misses += 1;
                }
            }
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            let hint_s = self.predicted_wait_s().unwrap_or(1.0).max(1e-3);
            self.counters.rejected_queue_full += 1;
            return Err(ServiceError::QueueFull {
                capacity: self.cfg.queue_capacity,
                retry_after_ms: (hint_s * 1e3).ceil() as u64,
            });
        }
        if self.cfg.admission_control {
            if let (Some(deadline_ms), Some(wait_s)) = (req.deadline_ms, self.predicted_wait_s()) {
                if wait_s * 1e3 >= deadline_ms as f64 {
                    self.counters.rejected_busy += 1;
                    return Err(ServiceError::Busy {
                        retry_after_ms: (wait_s * 1e3).ceil() as u64,
                    });
                }
            }
        }
        self.counters.admitted += 1;
        let id = self.alloc_id();
        self.jobs.insert(
            id.0,
            Job {
                req,
                key,
                state: JobState::Queued,
                submitted_s: now,
            },
        );
        self.queue.push_back(id);
        Ok(id)
    }

    /// Cancel a job. A still-queued job is dequeued immediately with a
    /// typed [`JobState::Cancelled`] — it never touched a device, a
    /// checkpoint directory, or a spill file, so there is no residue to
    /// clean. A terminal job is left as-is.
    pub fn cancel(&mut self, id: JobId) -> Result<CancelOutcome, ServiceError> {
        let job = self
            .jobs
            .get_mut(&id.0)
            .ok_or(ServiceError::UnknownJob { id })?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled {
                    detail: format!("{id} cancelled while queued (never admitted to a device)"),
                };
                self.queue.retain(|&q| q != id);
                self.counters.cancelled += 1;
                Ok(CancelOutcome::Dequeued)
            }
            _ => Ok(CancelOutcome::AlreadyTerminal),
        }
    }

    /// Run the next queued job to completion on the least-loaded fleet
    /// slot. Returns the job id, or `None` if the queue is empty.
    pub fn pump_one(&mut self) -> Option<JobId> {
        let id = self.queue.pop_front()?;
        let slot = self.least_loaded_slot();
        let start_s = self.fleet[slot].clock_s;
        let job = self.jobs.get_mut(&id.0).expect("queued job exists");
        let wait_s = (start_s - job.submitted_s).max(0.0);
        let wait_ms = wait_s * 1e3;

        // Budget left after the queue wait. A job whose budget is
        // already spent fails typed without ever touching the device.
        let remaining_ms = match job.req.deadline_ms {
            Some(d) if wait_ms >= d as f64 => {
                job.state = JobState::Failed(FailedJob {
                    kind: ApspErrorKind::DeadlineExceeded,
                    detail: format!(
                        "{id} deadline of {d} ms expired in the admission queue \
                         (waited {wait_ms:.3} ms)"
                    ),
                    device: None,
                    checkpoint_kept: false,
                    queue_wait_s: wait_s,
                });
                self.counters.expired += 1;
                return Some(id);
            }
            Some(d) => Some(d - wait_ms as u64),
            None => None,
        };

        let mut opts = job.req.opts.clone();
        // The job-level budget arms the run supervisor with whatever the
        // queue left over (tightening any caller-set compute deadline).
        if let Some(rem) = remaining_ms {
            opts.supervision.deadline_ms = Some(match opts.supervision.deadline_ms {
                Some(d) => d.min(rem),
                None => rem,
            });
        }
        // Service-managed durability: checkpoint under a key-derived tag
        // so an identical resubmission resumes a killed run.
        let mut ckpt_dir = None;
        if let (Some(root), JobSpec::Full) = (&self.cfg.checkpoint_root, &job.req.spec) {
            let dir = root.join(format!(
                "job-{:016x}-{:016x}",
                job.key.graph_fp, job.key.opts_fp
            ));
            opts.checkpoint = Some(CheckpointOptions {
                dir: dir.clone(),
                resume: true,
            });
            ckpt_dir = Some(dir);
        }

        let mut dev = GpuDevice::new(self.fleet[slot].profile.clone());
        if let Some(fault) = job.req.fault {
            match fault {
                JobFault::AllocFailure { kth } => dev.inject_alloc_failure(kth),
                JobFault::KernelStall { kth, extra_seconds } => {
                    dev.inject_kernel_stall(kth, extra_seconds)
                }
                JobFault::DeviceBitFlip { kth, bit } => dev.inject_bit_flip(kth, bit),
            }
        }

        let graph = Arc::clone(&job.req.graph);
        let spec = job.req.spec.clone();
        let key = job.key;
        let outcome = run_job(&mut dev, &graph, &spec, &opts);
        let sim_seconds = dev.elapsed().seconds();
        self.fleet[slot].clock_s += sim_seconds;

        // A successful run cleared its checkpoint files; sweep the empty
        // directory too so a cancelled or completed job leaves zero
        // residue. `remove_dir` refuses non-empty dirs, so a checkpoint
        // kept after a failure is never touched.
        if let Some(d) = &ckpt_dir {
            let _ = std::fs::remove_dir(d);
        }

        let job = self.jobs.get_mut(&id.0).expect("job still exists");
        match outcome {
            Ok((rows, algorithm)) => {
                let rows = Arc::new(rows);
                let produced = rows.rows().max(1);
                if self.cfg.cache_capacity > 0 {
                    self.counters.cache_evictions += self.cache.insert(key, Arc::clone(&rows));
                }
                job.state = JobState::Completed(CompletedJob {
                    rows,
                    algorithm,
                    from_cache: false,
                    device: Some(slot),
                    sim_seconds,
                    queue_wait_s: wait_s,
                });
                self.counters.completed += 1;
                // Fold the realized rate into the admission predictor.
                let rate = sim_seconds / produced as f64;
                self.secs_per_row = Some(match self.secs_per_row {
                    Some(prev) => 0.5 * prev + 0.5 * rate,
                    None => rate,
                });
            }
            Err(e) => {
                let checkpoint_kept = ckpt_dir
                    .as_deref()
                    .is_some_and(|d| std::fs::read_dir(d).is_ok_and(|mut it| it.next().is_some()));
                job.state = JobState::Failed(FailedJob {
                    kind: e.kind(),
                    detail: e.to_string(),
                    device: Some(slot),
                    checkpoint_kept,
                    queue_wait_s: wait_s,
                });
                self.counters.failed += 1;
            }
        }
        Some(id)
    }

    /// Drain the queue, running every admitted job in submission order.
    pub fn run_until_idle(&mut self) {
        while self.pump_one().is_some() {}
    }

    /// Test hook: corrupt the cached entry that `req` would hit, so the
    /// next lookup's verification must evict it. Returns whether an
    /// entry was corrupted.
    pub fn corrupt_cache_entry_for_test(&mut self, req: &JobRequest) -> bool {
        self.cache.corrupt_entry(cache_key(req))
    }

    /// Deterministic service JSONL: one `service` summary record plus
    /// one `job` record per accepted job, validating against
    /// `schemas/telemetry.schema.json`.
    pub fn to_jsonl(&self) -> String {
        let c = self.counters;
        let max_clock = self.fleet.iter().map(|s| s.clock_s).fold(0.0, f64::max);
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"record\":\"service\",\"devices\":{},\"queue_capacity\":{},\
             \"cache_capacity\":{},\"submitted\":{},\"admitted\":{},\"completed\":{},\
             \"failed\":{},\"expired\":{},\"cancelled\":{},\"rejected_busy\":{},\
             \"rejected_queue_full\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"cache_evictions\":{},\"cache_corrupt_evictions\":{},\"sim_seconds\":{:.6}}}\n",
            self.fleet.len(),
            self.cfg.queue_capacity,
            self.cfg.cache_capacity,
            c.submitted,
            c.admitted,
            c.completed,
            c.failed,
            c.expired,
            c.cancelled,
            c.rejected_busy,
            c.rejected_queue_full,
            c.cache_hits,
            c.cache_misses,
            c.cache_evictions,
            c.cache_corrupt_evictions,
            max_clock,
        ));
        for (&id, job) in &self.jobs {
            let n = job.req.graph.num_vertices();
            let (error, from_cache, device, sim_seconds, wait_s) = match &job.state {
                JobState::Queued => ("null".to_string(), false, None, None, 0.0),
                JobState::Completed(c) => (
                    "null".to_string(),
                    c.from_cache,
                    c.device,
                    Some(c.sim_seconds),
                    c.queue_wait_s,
                ),
                JobState::Failed(f) => (
                    format!("\"{}\"", f.kind.as_str()),
                    false,
                    f.device,
                    None,
                    f.queue_wait_s,
                ),
                JobState::Cancelled { .. } => {
                    ("\"JobCancelled\"".to_string(), false, None, None, 0.0)
                }
            };
            out.push_str(&format!(
                "{{\"record\":\"job\",\"id\":{},\"kind\":\"{}\",\"n\":{},\"rows\":{},\
                 \"state\":\"{}\",\"error\":{},\"from_cache\":{},\"device\":{},\
                 \"sim_seconds\":{},\"queue_wait_s\":{:.6}}}\n",
                id,
                job.req.spec.tag(),
                n,
                job.req.spec.rows(n),
                job.state.tag(),
                error,
                from_cache,
                device.map_or("null".to_string(), |d| d.to_string()),
                sim_seconds.map_or("null".to_string(), |s| format!("{s:.6}")),
                wait_s,
            ));
        }
        out
    }

    fn alloc_id(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    fn least_loaded_slot(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.fleet.iter().enumerate() {
            if s.clock_s < self.fleet[best].clock_s {
                best = i;
            }
        }
        best
    }
}

/// Execute one job on its fresh device. Full jobs go through the
/// [`apsp`] front-end (selector, fallback, checkpointing); partial jobs
/// through the Johnson source-batch driver under a supervisor armed
/// from the job's options.
fn run_job(
    dev: &mut GpuDevice,
    graph: &CsrGraph,
    spec: &JobSpec,
    opts: &ApspOptions,
) -> Result<(ResultRows, Option<Algorithm>), ApspError> {
    match spec {
        JobSpec::Full => {
            let result = apsp(graph, dev, opts)?;
            let n = graph.num_vertices();
            let mut data = Vec::with_capacity(n * n);
            for i in 0..n {
                data.extend_from_slice(&result.store.read_row(i)?);
            }
            Ok((ResultRows::new(n, None, data), Some(result.algorithm)))
        }
        JobSpec::Sources(srcs) => {
            let mut jopts = opts.johnson;
            jopts.exec = opts.exec;
            jopts.sdc_guard = opts.sdc_guard;
            let sup = Supervisor::new(&opts.supervision, dev.elapsed().seconds());
            let (data, _stats) = ooc_johnson_sources(dev, graph, srcs, &jopts, &sup)?;
            Ok((
                ResultRows::new(graph.num_vertices(), Some(srcs.clone()), data),
                None,
            ))
        }
    }
}

/// Seeded job-trace generation, shared by `apsp-run serve` and the
/// conformance chaos harness: a fixed seed yields a fixed sequence of
/// requests over a small pool of hot graphs, with a deterministic
/// sprinkling of partial queries, tight deadlines, fault plans, and
/// queued-cancel victims.
pub mod trace {
    use super::*;
    use apsp_graph::generators::{gnp, WeightRange};

    /// Knobs for [`seeded_jobs`].
    #[derive(Debug, Clone, Copy)]
    pub struct TraceConfig {
        /// Master seed; everything derives from it.
        pub seed: u64,
        /// Number of jobs to draw.
        pub jobs: usize,
        /// Hot-graph pool size (kept small so the cache sees repeats).
        pub graphs: usize,
        /// Fraction (0..=100) of jobs that are partial queries.
        pub sources_pct: u64,
        /// Fraction (0..=100) of jobs carrying a tight deadline.
        pub tight_deadline_pct: u64,
        /// Fraction (0..=100) of jobs carrying an injected device fault.
        pub fault_pct: u64,
        /// Fraction (0..=100) of jobs flagged for queued cancellation.
        pub cancel_pct: u64,
    }

    impl Default for TraceConfig {
        fn default() -> Self {
            TraceConfig {
                seed: 0x5EED,
                jobs: 12,
                graphs: 3,
                sources_pct: 40,
                tight_deadline_pct: 15,
                fault_pct: 25,
                cancel_pct: 10,
            }
        }
    }

    /// One trace entry: the request plus whether the driver should
    /// cancel it while it is still queued.
    #[derive(Debug, Clone)]
    pub struct TraceJob {
        /// The request to submit.
        pub request: JobRequest,
        /// The harness cancels this job before pumping the queue.
        pub cancel_while_queued: bool,
    }

    /// The seeded hot-graph pool: small G(n,p) graphs with distinct
    /// seeds, sized so full jobs take several batches on a small device.
    pub fn graph_pool(cfg: &TraceConfig) -> Vec<Arc<CsrGraph>> {
        let mut state = cfg.seed ^ 0x9E37_79B9_7F4A_7C15;
        (0..cfg.graphs.max(1))
            .map(|_| {
                let n = 60 + (splitmix64(&mut state) % 60) as usize;
                let gseed = splitmix64(&mut state);
                Arc::new(gnp(n, 0.06, WeightRange::default(), gseed))
            })
            .collect()
    }

    /// Draw the job sequence. Deterministic: same config, same jobs.
    pub fn seeded_jobs(cfg: &TraceConfig) -> Vec<TraceJob> {
        let pool = graph_pool(cfg);
        let mut state = cfg.seed;
        let mut jobs = Vec::with_capacity(cfg.jobs);
        for _ in 0..cfg.jobs {
            let graph = Arc::clone(&pool[(splitmix64(&mut state) % pool.len() as u64) as usize]);
            let n = graph.num_vertices();
            let spec = if splitmix64(&mut state) % 100 < cfg.sources_pct {
                let k = 1 + (splitmix64(&mut state) % 8) as usize;
                let sources = (0..k)
                    .map(|_| (splitmix64(&mut state) % n as u64) as VertexId)
                    .collect();
                JobSpec::Sources(sources)
            } else {
                JobSpec::Full
            };
            let mut opts = ApspOptions {
                // Chaos jobs run fully guarded: an injected flip must be
                // recovered bit-identical or surfaced typed, never
                // silently wrong.
                sdc_guard: crate::options::SdcGuardMode::Full,
                ..ApspOptions::default()
            };
            opts.johnson.sdc_guard = opts.sdc_guard;
            opts.boundary.sdc_guard = opts.sdc_guard;
            opts.fw.sdc_guard = opts.sdc_guard;
            let deadline_ms = if splitmix64(&mut state) % 100 < cfg.tight_deadline_pct {
                // Tight but not degenerate: some expire, some squeak by.
                Some(1 + splitmix64(&mut state) % 50)
            } else {
                Some(60_000) // watchdog bound: no job may hang forever
            };
            let fault = if splitmix64(&mut state) % 100 < cfg.fault_pct {
                Some(match splitmix64(&mut state) % 3 {
                    0 => JobFault::AllocFailure {
                        kth: 2 + splitmix64(&mut state) % 4,
                    },
                    1 => JobFault::KernelStall {
                        kth: 1 + splitmix64(&mut state) % 4,
                        extra_seconds: 0.05,
                    },
                    _ => JobFault::DeviceBitFlip {
                        kth: 1 + splitmix64(&mut state) % 6,
                        bit: splitmix64(&mut state) % 30,
                    },
                })
            } else {
                None
            };
            let cancel_while_queued = splitmix64(&mut state) % 100 < cfg.cancel_pct;
            jobs.push(TraceJob {
                request: JobRequest {
                    graph,
                    spec,
                    opts,
                    deadline_ms,
                    fault,
                },
                cancel_while_queued,
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SdcGuardMode;
    use crate::tile_store::StorageBackend;
    use apsp_cpu::{bgl_plus_apsp, dijkstra_sssp, ExecBackend};
    use apsp_graph::generators::{gnp, WeightRange};

    fn small_graph(seed: u64) -> Arc<CsrGraph> {
        Arc::new(gnp(80, 0.06, WeightRange::default(), seed))
    }

    fn small_service() -> ApspService {
        ApspService::new(ServiceConfig {
            devices: vec![DeviceProfile::v100().with_memory_bytes(512 << 10)],
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn full_job_matches_oracle_and_caches() {
        let g = small_graph(1);
        let reference = bgl_plus_apsp(&g);
        let mut svc = small_service();
        let id = svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
        svc.run_until_idle();
        let JobState::Completed(done) = svc.state(id).unwrap() else {
            panic!("job did not complete: {:?}", svc.state(id));
        };
        assert!(!done.from_cache);
        let n = g.num_vertices();
        for i in 0..n {
            assert_eq!(done.rows.row(i), reference.row(i), "row {i}");
        }
        let first_bits = done.rows.data.clone();

        // Second submission of the identical request: served from cache,
        // byte-identical, no device time.
        let id2 = svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
        let JobState::Completed(hit) = svc.state(id2).unwrap() else {
            panic!("cache hit should complete at submit");
        };
        assert!(hit.from_cache);
        assert_eq!(hit.rows.data, first_bits);
        assert_eq!(svc.counters().cache_hits, 1);
        assert_eq!(svc.counters().cache_misses, 1);
    }

    #[test]
    fn sources_job_matches_dijkstra_rows() {
        let g = small_graph(2);
        let sources: Vec<VertexId> = vec![5, 0, 79, 33];
        let mut svc = small_service();
        let id = svc
            .submit(JobRequest::sources(Arc::clone(&g), sources.clone()))
            .unwrap();
        svc.run_until_idle();
        let JobState::Completed(done) = svc.state(id).unwrap() else {
            panic!("partial job failed: {:?}", svc.state(id));
        };
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(done.rows.row(i), &dijkstra_sssp(&g, s)[..], "source {s}");
        }
    }

    #[test]
    fn corrupt_cache_entry_is_evicted_and_recomputed() {
        let g = small_graph(3);
        let mut svc = small_service();
        let req = JobRequest::full(Arc::clone(&g));
        let id = svc.submit(req.clone()).unwrap();
        svc.run_until_idle();
        let JobState::Completed(done) = svc.state(id).unwrap() else {
            panic!("seed job failed");
        };
        let clean_bits = done.rows.data.clone();
        assert!(svc.corrupt_cache_entry_for_test(&req));
        // The poisoned entry must be evicted, not served.
        let id2 = svc.submit(req.clone()).unwrap();
        assert!(matches!(svc.state(id2), Some(JobState::Queued)));
        svc.run_until_idle();
        let JobState::Completed(recomputed) = svc.state(id2).unwrap() else {
            panic!("recompute failed");
        };
        assert!(!recomputed.from_cache);
        assert_eq!(recomputed.rows.data, clean_bits, "recompute must be exact");
        assert_eq!(svc.counters().cache_corrupt_evictions, 1);
        // And the freshly inserted entry serves verified hits again.
        let id3 = svc.submit(req).unwrap();
        let JobState::Completed(hit) = svc.state(id3).unwrap() else {
            panic!("post-recovery hit failed");
        };
        assert!(hit.from_cache);
        assert_eq!(hit.rows.data, clean_bits);
    }

    #[test]
    fn queue_bound_rejects_typed_with_hint_but_serves_cache_hits() {
        let g = small_graph(4);
        let mut svc = ApspService::new(ServiceConfig {
            devices: vec![DeviceProfile::v100().with_memory_bytes(512 << 10)],
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        // Warm the cache with one completed job.
        let warm = JobRequest::full(Arc::clone(&g));
        svc.submit(warm.clone()).unwrap();
        svc.run_until_idle();
        // Saturate the queue with distinct work.
        for seed in 10..12 {
            svc.submit(JobRequest::full(small_graph(seed))).unwrap();
        }
        let err = svc.submit(JobRequest::full(small_graph(99))).unwrap_err();
        assert_eq!(err.kind(), ServiceErrorKind::QueueFull);
        assert!(err.retry_after_ms().unwrap() >= 1);
        // Degradation contract: the cache hit is served even though the
        // compute queue is saturated.
        let hit_id = svc.submit(warm).unwrap();
        let JobState::Completed(hit) = svc.state(hit_id).unwrap() else {
            panic!("saturated queue must not block cache hits");
        };
        assert!(hit.from_cache);
        assert_eq!(svc.counters().rejected_queue_full, 1);
    }

    #[test]
    fn admission_control_rejects_doomed_deadlines_busy() {
        let g = small_graph(5);
        let mut svc = ApspService::new(ServiceConfig {
            devices: vec![DeviceProfile::v100().with_memory_bytes(512 << 10)],
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        // Teach the predictor a rate.
        svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
        svc.run_until_idle();
        assert!(svc.secs_per_row.is_some());
        // Build a deep backlog of full jobs.
        for seed in 20..28 {
            svc.submit(JobRequest::full(small_graph(seed))).unwrap();
        }
        // A job that must finish within a microsecond-scale budget is
        // doomed behind that backlog: typed Busy, with a hint.
        let mut doomed = JobRequest::full(small_graph(97));
        doomed.deadline_ms = Some(1);
        let err = svc.submit(doomed).unwrap_err();
        assert_eq!(err.kind(), ServiceErrorKind::Busy);
        assert!(err.retry_after_ms().unwrap() >= 1);
        assert_eq!(svc.counters().rejected_busy, 1);
    }

    #[test]
    fn queued_cancel_is_immediate_typed_and_residue_free() {
        let root = std::env::temp_dir().join("apsp_service_cancel_residue");
        let _ = std::fs::remove_dir_all(&root);
        let g = small_graph(6);
        let sibling_ref = bgl_plus_apsp(&g);
        let mut svc = ApspService::new(ServiceConfig {
            devices: vec![DeviceProfile::v100().with_memory_bytes(512 << 10)],
            checkpoint_root: Some(root.clone()),
            ..ServiceConfig::default()
        });
        let sibling = svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
        let victim = svc.submit(JobRequest::full(small_graph(77))).unwrap();
        assert_eq!(svc.cancel(victim).unwrap(), CancelOutcome::Dequeued);
        let JobState::Cancelled { detail } = svc.state(victim).unwrap() else {
            panic!("victim not cancelled: {:?}", svc.state(victim));
        };
        assert!(detail.contains("queued"));
        svc.run_until_idle();
        // Victim never ran: no checkpoint/spill residue anywhere under
        // the service root except the sibling's (cleared on success).
        let residue: Vec<_> = std::fs::read_dir(&root)
            .map(|d| d.flatten().map(|e| e.path()).collect())
            .unwrap_or_default();
        assert!(
            residue.is_empty(),
            "cancelled-queued job left residue: {residue:?}"
        );
        // Sibling bits unperturbed.
        let JobState::Completed(done) = svc.state(sibling).unwrap() else {
            panic!("sibling failed: {:?}", svc.state(sibling));
        };
        for i in 0..g.num_vertices() {
            assert_eq!(done.rows.row(i), sibling_ref.row(i));
        }
        assert_eq!(svc.counters().cancelled, 1);
        // Cancelling a terminal job is a typed no-op; unknown ids are
        // typed errors.
        assert_eq!(svc.cancel(victim).unwrap(), CancelOutcome::AlreadyTerminal);
        assert_eq!(
            svc.cancel(JobId(999)).unwrap_err().kind(),
            ServiceErrorKind::UnknownJob
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn faulty_job_fails_typed_without_poisoning_siblings() {
        let g = small_graph(7);
        let reference = bgl_plus_apsp(&g);
        let mut svc = small_service();
        // A job whose device refuses every allocation from the 1st on —
        // even the graph hold fails, so no algorithm can start.
        let mut poisoned = JobRequest::full(small_graph(55));
        poisoned.fault = Some(JobFault::AllocFailure { kth: 1 });
        poisoned.opts.supervision.retry.max_retries = 0;
        let bad = svc.submit(poisoned).unwrap();
        let good = svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
        svc.run_until_idle();
        let JobState::Failed(f) = svc.state(bad).unwrap() else {
            panic!("faulted job should fail, got {:?}", svc.state(bad));
        };
        assert!(
            matches!(
                f.kind,
                ApspErrorKind::OutOfDeviceMemory | ApspErrorKind::DeviceTooSmall
            ),
            "{:?}",
            f.kind
        );
        // The sibling on the same fleet slot is bit-exact: the fault
        // died with the bad job's device.
        let JobState::Completed(done) = svc.state(good).unwrap() else {
            panic!("sibling failed: {:?}", svc.state(good));
        };
        for i in 0..g.num_vertices() {
            assert_eq!(done.rows.row(i), reference.row(i));
        }
    }

    #[test]
    fn expired_deadline_fails_typed_and_checkpoint_survives_for_warm_resubmit() {
        let root = std::env::temp_dir().join("apsp_service_warm_resubmit");
        let _ = std::fs::remove_dir_all(&root);
        let g = small_graph(8);
        // A device slowed 1000× brings the run into the milliseconds
        // regime the deadline knob can actually carve up (the full run
        // takes ~0.5 s of simulated time, across many batch commits).
        let mut slow = DeviceProfile::v100().with_memory_bytes(32 << 10);
        slow.compute_ops_per_sec /= 1e3;
        slow.mem_bandwidth /= 1e3;
        slow.h2d_bytes_per_sec /= 1e3;
        slow.d2h_bytes_per_sec /= 1e3;
        slow.kernel_launch_overhead *= 1e3;
        slow.dynamic_launch_overhead *= 1e3;
        slow.transfer_latency *= 1e3;
        let mut svc = ApspService::new(ServiceConfig {
            devices: vec![slow],
            checkpoint_root: Some(root.clone()),
            cache_capacity: 0, // force the resubmit to actually run
            ..ServiceConfig::default()
        });
        // Force Johnson so progress commits per batch, with a budget too
        // small to finish but big enough to commit some batches.
        let mut req = JobRequest::full(Arc::clone(&g));
        req.opts.algorithm = Some(Algorithm::Johnson);
        // 5 batches of ~370 ms each: the budget expires around batch 4,
        // after several per-batch commits are durable.
        req.deadline_ms = Some(1200);
        let id = svc.submit(req.clone()).unwrap();
        svc.run_until_idle();
        let JobState::Failed(f) = svc.state(id).unwrap() else {
            panic!("deadline job should fail, got {:?}", svc.state(id));
        };
        assert_eq!(f.kind, ApspErrorKind::DeadlineExceeded);
        assert!(
            f.checkpoint_kept,
            "checkpoint must be kept for resubmission"
        );
        // Warm resubmission without the budget resumes and completes
        // bit-exact.
        req.deadline_ms = None;
        let id2 = svc.submit(req).unwrap();
        svc.run_until_idle();
        let JobState::Completed(done) = svc.state(id2).unwrap() else {
            panic!("resubmission failed: {:?}", svc.state(id2));
        };
        let reference = bgl_plus_apsp(&g);
        for i in 0..g.num_vertices() {
            assert_eq!(done.rows.row(i), reference.row(i));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fleet_spreads_jobs_deterministically() {
        let mut svc = ApspService::new(ServiceConfig {
            devices: vec![
                DeviceProfile::v100().with_memory_bytes(512 << 10),
                DeviceProfile::v100().with_memory_bytes(512 << 10),
            ],
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let mut slots = Vec::new();
        for seed in 0..4 {
            let id = svc.submit(JobRequest::full(small_graph(seed))).unwrap();
            svc.run_until_idle();
            let JobState::Completed(done) = svc.state(id).unwrap() else {
                panic!("job failed");
            };
            slots.push(done.device.unwrap());
        }
        // Least-loaded dispatch alternates across an initially idle pair.
        assert_eq!(slots[0], 0);
        assert_eq!(slots[1], 1);
        assert!(svc.now_s() > 0.0);
    }

    #[test]
    fn jsonl_is_deterministic_and_schema_valid() {
        let schema_src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/telemetry.schema.json"
        ))
        .expect("schema file");
        let schema = crate::telemetry::parse_json(&schema_src).unwrap();
        let render = || {
            let mut svc = small_service();
            let g = small_graph(9);
            svc.submit(JobRequest::full(Arc::clone(&g))).unwrap();
            svc.submit(JobRequest::sources(Arc::clone(&g), vec![1, 2]))
                .unwrap();
            let victim = svc.submit(JobRequest::full(small_graph(98))).unwrap();
            svc.cancel(victim).unwrap();
            let mut doomed = JobRequest::full(small_graph(96));
            doomed.fault = Some(JobFault::AllocFailure { kth: 1 });
            doomed.opts.supervision.retry.max_retries = 1;
            svc.submit(doomed).unwrap();
            svc.run_until_idle();
            svc.to_jsonl()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "service JSONL must be deterministic");
        crate::telemetry::validate_jsonl(&a, &schema).unwrap();
        assert!(a.contains("\"record\":\"service\""));
        assert!(a.contains("\"state\":\"cancelled\""));
    }

    // ---- satellite 3: cache-key correctness ----------------------------

    #[test]
    fn graph_fingerprint_is_stable_across_backends_and_exec_modes() {
        let g = gnp(90, 0.05, WeightRange::default(), 11);
        let fp = graph_fingerprint(&g);
        // The fingerprint hashes the graph alone — recomputing it while
        // results live in different stores or exec modes cannot move it.
        let dir = std::env::temp_dir().join("apsp_service_fp_disk");
        let _ = std::fs::remove_dir_all(&dir);
        for backend in [StorageBackend::Memory, StorageBackend::Disk(dir.clone())] {
            let mut store = crate::tile_store::TileStore::new(90, &backend).unwrap();
            store.write_row(0, &[0; 90]).unwrap();
            assert_eq!(graph_fingerprint(&g), fp, "backend {backend:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
        for exec in [
            ExecBackend::Scalar,
            ExecBackend::Parallel { threads: Some(2) },
        ] {
            let opts = ApspOptions {
                exec,
                ..ApspOptions::default()
            };
            // exec is excluded from the options fingerprint too: results
            // are bit-identical across backends (conformance contract).
            assert_eq!(
                options_fingerprint(&JobSpec::Full, &opts),
                options_fingerprint(&JobSpec::Full, &ApspOptions::default()),
                "exec {exec:?} must not shift the cache key"
            );
        }
        // An identically-generated graph fingerprints identically; a
        // reweighted one does not.
        assert_eq!(
            graph_fingerprint(&gnp(90, 0.05, WeightRange::default(), 11)),
            fp
        );
        assert_ne!(
            graph_fingerprint(&gnp(90, 0.05, WeightRange::default(), 12)),
            fp
        );
    }

    #[test]
    fn options_fingerprint_is_sensitive_where_bits_can_differ() {
        let base = ApspOptions::default();
        let full = options_fingerprint(&JobSpec::Full, &base);

        let mut guarded = base.clone();
        guarded.sdc_guard = SdcGuardMode::Full;
        assert_ne!(
            options_fingerprint(&JobSpec::Full, &guarded),
            full,
            "SdcGuardMode must not collide"
        );

        let mut forced = base.clone();
        forced.algorithm = Some(Algorithm::Boundary);
        assert_ne!(
            options_fingerprint(&JobSpec::Full, &forced),
            full,
            "forced algorithm must not collide"
        );

        let s12 = options_fingerprint(&JobSpec::Sources(vec![1, 2]), &base);
        let s21 = options_fingerprint(&JobSpec::Sources(vec![2, 1]), &base);
        let s1 = options_fingerprint(&JobSpec::Sources(vec![1]), &base);
        assert_ne!(s12, full, "sources vs full must not collide");
        assert_ne!(s12, s21, "source order is part of the result");
        assert_ne!(s12, s1, "source count is part of the result");
        // Storage backend is excluded: bit-identity across stores is the
        // conformance contract.
        let mut disk = base.clone();
        disk.storage = StorageBackend::Disk(std::env::temp_dir().join("x"));
        assert_eq!(options_fingerprint(&JobSpec::Full, &disk), full);
    }

    #[test]
    fn result_rows_verification_catches_any_flip() {
        let rows = ResultRows::new(3, None, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(rows.verify());
        for i in 0..9 {
            let mut bad = rows.clone();
            bad.data[i] ^= 1 << 3;
            assert!(!bad.verify(), "flip at {i} undetected");
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = trace::TraceConfig {
            jobs: 40,
            ..trace::TraceConfig::default()
        };
        let a = trace::seeded_jobs(&cfg);
        let b = trace::seeded_jobs(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request.spec, y.request.spec);
            assert_eq!(x.request.deadline_ms, y.request.deadline_ms);
            assert_eq!(x.request.fault, y.request.fault);
            assert_eq!(x.cancel_while_queued, y.cancel_while_queued);
            assert_eq!(
                graph_fingerprint(&x.request.graph),
                graph_fingerprint(&y.request.graph)
            );
        }
        // The trace exercises the interesting paths.
        assert!(a
            .iter()
            .any(|j| matches!(j.request.spec, JobSpec::Sources(_))));
        assert!(a.iter().any(|j| j.request.fault.is_some()));
    }
}
