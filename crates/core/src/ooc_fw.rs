//! Algorithm 1: out-of-core blocked Floyd-Warshall.
//!
//! The `n × n` matrix lives in the host [`TileStore`]; the device holds at
//! most a handful of `b × b` tiles. Each of the `n_d` rounds runs the
//! three blocked-FW stages, streaming every tile through the device and
//! back — `O(n_d · n²)` total data movement against `O(n³)` compute,
//! which is why the paper reserves this implementation for dense inputs.

use crate::checkpoint::{Checkpoint, Progress};
use crate::error::ApspError;
use crate::options::FwOptions;
use crate::sdc::SdcGuard;
use crate::supervisor::{RetryState, RetryStep, Supervisor};
use crate::tile_store::{TileStore, SDC_PANEL_ROWS};
use apsp_gpu_sim::{GpuDevice, Pinning, StreamId};
use apsp_graph::{CsrGraph, Dist, VertexId, INF};
use apsp_kernels::fw_block::fw_device_exec;
use apsp_kernels::minplus::{
    minplus_kernel_exec, minplus_left_inplace_exec, minplus_right_inplace_exec,
};
use apsp_kernels::DeviceMatrix;

/// Outcome statistics of one out-of-core Floyd-Warshall run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FwRunStats {
    /// Tile side used (by the final, successful attempt).
    pub block: usize,
    /// Number of tiles along each dimension.
    pub n_d: usize,
    /// Simulated seconds for the whole run.
    pub sim_seconds: f64,
    /// Restarts forced by mid-run device allocation failures (0 on a
    /// clean run). Each restart resumes from the partially relaxed
    /// store, possibly with a smaller block.
    pub retries: u32,
    /// Checkpoint commits performed (0 without checkpointing).
    pub checkpoint_commits: u32,
    /// Silent-corruption detections absorbed by the panel-scoped
    /// recovery rung (damaged panel reset to adjacency, rounds
    /// replayed).
    pub sdc_panel_recoveries: u32,
    /// Silent-corruption detections absorbed by the round-scoped rung
    /// (checkpoint snapshot restored, or the store reseeded from the
    /// graph).
    pub sdc_round_recoveries: u32,
}

/// Seed `store` with the adjacency of `g` (zero diagonal, weights, `INF`).
pub fn init_store_from_graph(g: &CsrGraph, store: &mut TileStore) -> Result<(), ApspError> {
    let n = g.num_vertices();
    assert_eq!(store.n(), n);
    let mut row = vec![INF; n];
    for v in 0..n as VertexId {
        row.fill(INF);
        row[v as usize] = 0;
        for (u, w) in g.edges_from(v) {
            if u != v && w < row[u as usize] {
                row[u as usize] = w;
            }
        }
        store.write_row(v as usize, &row)?;
    }
    Ok(())
}

/// Largest tile side such that `buffers` tiles of `b × b` distances fit in
/// the device's free memory.
pub fn max_block_side(dev: &GpuDevice, buffers: usize) -> usize {
    let w = std::mem::size_of::<Dist>() as u64;
    let per_buffer = dev.free_memory() / buffers as u64 / w;
    (per_buffer as f64).sqrt().floor() as usize
}

/// Run out-of-core blocked Floyd-Warshall over `store` (which must hold
/// the adjacency initialization; see [`init_store_from_graph`]).
///
/// With automatic blocking (`opts.block_size == None`) a mid-run device
/// allocation failure degrades gracefully instead of aborting: the run
/// restarts on the partially relaxed store — once at the same block (a
/// transient fault clears), then at successively halved blocks (the
/// device shrank). Restarting is exact, not approximate: every entry in
/// the store is the weight of some real path, so it stays an upper bound
/// on the true distance, and re-running all rounds of blocked FW from
/// any such state converges to the same metric closure (min-plus
/// relaxations are monotone and order-insensitive). A caller-forced
/// block size propagates the failure instead.
pub fn ooc_floyd_warshall(
    dev: &mut GpuDevice,
    store: &mut TileStore,
    opts: &FwOptions,
) -> Result<FwRunStats, ApspError> {
    fw_driver(dev, store, opts, None, None, &Supervisor::unarmed(), None)
}

/// [`ooc_floyd_warshall`] under a [`Supervisor`]: the deadline, progress
/// watchdog, and cancellation token are checked at every pivot-round
/// barrier, and retries follow the supervisor's policy.
pub fn ooc_floyd_warshall_supervised(
    dev: &mut GpuDevice,
    store: &mut TileStore,
    opts: &FwOptions,
    sup: &Supervisor,
) -> Result<FwRunStats, ApspError> {
    fw_driver(dev, store, opts, None, None, sup, None)
}

/// [`ooc_floyd_warshall_supervised`] with the graph in hand, which is
/// what arms the silent-corruption recovery ladder: a guard detection
/// localized to one panel resets just that panel's rows to their
/// adjacency initialization and replays (exact, by min-plus
/// monotonicity — see [`ooc_floyd_warshall`]'s restart argument), and
/// an unlocalized detection reseeds the whole store from `g`. Seeds the
/// store from `g` itself — the caller must *not* pre-initialize it.
/// Without the graph (the plain entry points), a detection propagates
/// as a typed [`ApspError::SilentCorruption`] once the checkpoint-less
/// ladder is exhausted.
pub fn ooc_floyd_warshall_guarded(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &FwOptions,
    sup: &Supervisor,
) -> Result<FwRunStats, ApspError> {
    assert_eq!(store.n(), g.num_vertices());
    init_store_from_graph(g, store)?;
    fw_driver(dev, store, opts, None, None, sup, Some(g))
}

/// [`ooc_floyd_warshall`] with crash-safe durability: progress commits to
/// `ckpt` after every pivot round, and a checkpoint already present in
/// `ckpt`'s directory (validated against `g` and the store checksums) is
/// resumed instead of starting over. The checkpoint is cleared on
/// successful completion. Seeds the store from `g` itself on a fresh
/// start — the caller must *not* pre-initialize it.
///
/// Rounds are only resumable at the blocking they committed under: a
/// forced `opts.block_size` that disagrees with the manifest is an
/// [`ApspError::InvalidInput`]; in auto mode an infeasible manifest
/// block re-fits and replays all rounds on the restored snapshot (exact,
/// by the same monotonicity argument as the OOM restarts).
pub fn ooc_floyd_warshall_checkpointed(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &FwOptions,
    ckpt: &Checkpoint,
) -> Result<FwRunStats, ApspError> {
    ooc_floyd_warshall_checkpointed_supervised(dev, g, store, opts, ckpt, &Supervisor::unarmed())
}

/// [`ooc_floyd_warshall_checkpointed`] under a [`Supervisor`]. A run
/// interrupted by a deadline, stall, or cancellation leaves its last
/// committed round in `ckpt`, so a later call resumes instead of
/// starting over.
pub fn ooc_floyd_warshall_checkpointed_supervised(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &FwOptions,
    ckpt: &Checkpoint,
    sup: &Supervisor,
) -> Result<FwRunStats, ApspError> {
    let n = g.num_vertices();
    assert_eq!(store.n(), n);
    let resume = match ckpt.load()? {
        Some(m) => {
            let Progress::FloydWarshall { block, next_round } = m.progress else {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint in {} belongs to the `{}` algorithm, not Floyd-Warshall — \
                     delete it to start over",
                    ckpt.dir().display(),
                    m.progress.algorithm_tag()
                )));
            };
            if let Some(forced) = opts.block_size {
                let forced = forced.min(n).max(1);
                if forced != block {
                    return Err(ApspError::InvalidInput(format!(
                        "checkpoint committed rounds at block {block} but block {forced} was \
                         forced — resume with the same block, or delete the checkpoint"
                    )));
                }
            }
            ckpt.restore_into(&m, store)?;
            Some((block, next_round))
        }
        None => {
            init_store_from_graph(g, store)?;
            None
        }
    };
    let stats = fw_driver(dev, store, opts, resume, Some(ckpt), sup, Some(g))?;
    ckpt.clear()?;
    Ok(stats)
}

/// Seed for the guard's deterministic triangle sampling — a constant,
/// so reruns of the same case check the same pairs.
use crate::sdc::SDC_SAMPLE_SEED;

/// The retry-then-halve driver shared by the plain and checkpointed
/// entry points. `resume` carries `(block, start_round)` from a restored
/// manifest; restarts (OOM or re-fit) always replay from round 0.
/// `graph` arms the panel-reset and reseed rungs of the
/// silent-corruption recovery ladder (checkpoint restore works without
/// it).
#[allow(clippy::too_many_arguments)]
fn fw_driver(
    dev: &mut GpuDevice,
    store: &mut TileStore,
    opts: &FwOptions,
    resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    sup: &Supervisor,
    graph: Option<&CsrGraph>,
) -> Result<FwRunStats, ApspError> {
    let n = store.n();
    if n == 0 {
        return Ok(FwRunStats {
            block: 0,
            n_d: 0,
            sim_seconds: 0.0,
            retries: 0,
            checkpoint_commits: 0,
            sdc_panel_recoveries: 0,
            sdc_round_recoveries: 0,
        });
    }
    if opts.sdc_guard.is_on() && store.sdc_guard() != opts.sdc_guard {
        store.set_sdc_guard(opts.sdc_guard)?;
    }
    let mut guard = SdcGuard::new(opts.sdc_guard, SDC_SAMPLE_SEED);
    let mut panel_budget = sup.retry_policy().sdc_panel_retries;
    let mut round_budget = sup.retry_policy().sdc_round_retries;
    let mut panel_recoveries = 0u32;
    let mut round_recoveries = 0u32;
    // Resident working set: pivot tile + A(i,k) + A(k,j) + one or two
    // output tiles (two when overlap is on).
    let buffers = if opts.overlap_transfers { 5 } else { 4 };
    let (mut block, mut start_round) = match resume {
        Some((b, r)) => (b, r),
        None => (
            match opts.block_size {
                Some(b) => b.min(n).max(1),
                None => max_block_side(dev, buffers).min(n).max(1),
            },
            0,
        ),
    };
    let mut commits = 0u32;
    let mut retry = RetryState::new(sup.retry_policy(), "out-of-core Floyd-Warshall");
    loop {
        if block == 0 || (block as u64) * (block as u64) * 4 * buffers as u64 > dev.free_memory() {
            // Auto mode re-fits to whatever memory is left (it may have
            // shrunk since the last attempt was sized).
            if opts.block_size.is_none() {
                let refit = max_block_side(dev, buffers).min(block);
                if refit >= 1 && refit < block {
                    block = refit;
                    // Committed rounds describe a different blocking:
                    // replay them all on the (restored) store.
                    start_round = 0;
                    continue;
                }
            }
            return Err(ApspError::DeviceTooSmall {
                algorithm: "out-of-core Floyd-Warshall",
                detail: format!(
                    "cannot hold {buffers} tiles of any size in {} bytes",
                    dev.profile().memory_bytes
                ),
            });
        }
        match fw_rounds(
            dev,
            store,
            opts,
            block,
            start_round,
            ckpt,
            &mut commits,
            sup,
            &mut guard,
        ) {
            Ok(mut stats) => {
                stats.retries = retry.retries();
                stats.checkpoint_commits = commits;
                stats.sdc_panel_recoveries = panel_recoveries;
                stats.sdc_round_recoveries = round_recoveries;
                return Ok(stats);
            }
            // A caller-forced block size is a contract: never shrink it —
            // the allocation failure propagates.
            Err(e @ ApspError::OutOfDeviceMemory(_)) if opts.block_size.is_some() => return Err(e),
            Err(ApspError::SilentCorruption {
                panel,
                round,
                detail,
            }) => {
                // The SDC recovery ladder. Rung 1 — detection localized
                // to one panel (the corrupt rows were provably never
                // read): reset just those rows to adjacency and replay
                // all rounds. Exact, because the reset state is still
                // entrywise an upper bound on the true distances, and
                // min-plus relaxation converges to the same closure
                // from any such state. Rung 2 — unlocalized detection
                // (possible propagation): restore the last checkpoint
                // snapshot (committed only after its own barrier's
                // guard passed, so it predates the corruption), or
                // reseed the whole store from the graph. Exhausted
                // budgets propagate the typed error to the caller's
                // fallback chain.
                let tel = sup.telemetry().clone();
                tel.count_sdc(1, 0, 0);
                if panel != usize::MAX && panel_budget > 0 {
                    if let Some(g) = graph {
                        panel_budget -= 1;
                        panel_recoveries += 1;
                        let ph = tel.phase_start(dev);
                        reset_panel_from_graph(g, store, panel)?;
                        tel.phase_end(dev, ph, "sdc.recover_panel");
                        tel.count_sdc(0, 1, 0);
                        guard.reset_baseline();
                        start_round = 0;
                        continue;
                    }
                }
                if round_budget > 0 {
                    let ph = tel.phase_start(dev);
                    let mut recovered = false;
                    if let Some(ck) = ckpt {
                        if let Some(m) = ck.load()? {
                            if let Progress::FloydWarshall {
                                block: cb,
                                next_round,
                            } = m.progress
                            {
                                ck.restore_into(&m, store)?;
                                block = cb;
                                start_round = next_round;
                                recovered = true;
                            }
                        }
                    }
                    if !recovered {
                        if let Some(g) = graph {
                            init_store_from_graph(g, store)?;
                            start_round = 0;
                            recovered = true;
                        }
                    }
                    if recovered {
                        round_budget -= 1;
                        round_recoveries += 1;
                        tel.phase_end(dev, ph, "sdc.recover_round");
                        tel.count_sdc(0, 0, 1);
                        guard.reset_baseline();
                        continue;
                    }
                }
                return Err(ApspError::SilentCorruption {
                    panel,
                    round,
                    detail,
                });
            }
            Err(e) => {
                // Fatal kinds propagate out of `next_step` unchanged;
                // transient ones retry the same geometry once (a one-shot
                // fault may clear), then halve. Restarts replay all
                // rounds — exact, by min-plus monotonicity.
                let (step, oom) = retry.next_step(e, sup)?;
                start_round = 0;
                if step == RetryStep::Shrink {
                    if block <= 1 {
                        return Err(ApspError::DeviceTooSmall {
                            algorithm: "out-of-core Floyd-Warshall",
                            detail: format!(
                                "allocation kept failing at the minimum 1×1 block: {oom}"
                            ),
                        });
                    }
                    block /= 2;
                }
            }
        }
    }
}

/// The three-stage blocked-FW rounds `start_round..n_d` at a fixed
/// block, committing to `ckpt` (when present) at each round barrier.
#[allow(clippy::too_many_arguments)]
fn fw_rounds(
    dev: &mut GpuDevice,
    store: &mut TileStore,
    opts: &FwOptions,
    block: usize,
    start_round: usize,
    ckpt: Option<&Checkpoint>,
    commits: &mut u32,
    sup: &Supervisor,
    guard: &mut SdcGuard,
) -> Result<FwRunStats, ApspError> {
    let n = store.n();
    let n_d = n.div_ceil(block);
    let extent = |t: usize| -> std::ops::Range<usize> { t * block..((t + 1) * block).min(n) };

    let start = dev.elapsed().seconds();
    let s0 = dev.default_stream();
    let s1 = if opts.overlap_transfers {
        dev.create_stream()
    } else {
        s0
    };

    let tel = sup.telemetry().clone();
    for kb in start_round..n_d {
        store.set_sdc_round(kb);
        let kr = extent(kb);
        // ---- Stage 1: diagonal tile.
        let ph = tel.phase_start(dev);
        let mut diag = upload_tile(dev, s0, store, kr.clone(), kr.clone())?;
        fw_device_exec(dev, s0, &mut diag, opts.exec);
        download_tile(dev, s0, store, &diag, kr.clone(), kr.clone())?;
        tel.phase_end(dev, ph, "fw.diagonal");

        // ---- Stage 2: pivot row and pivot column.
        let ph = tel.phase_start(dev);
        for ib in 0..n_d {
            if ib == kb {
                continue;
            }
            let ir = extent(ib);
            // A(k, i) = min(A(k, i), A(k, k) ⊗ A(k, i)).
            let mut row_tile = upload_tile(dev, s0, store, kr.clone(), ir.clone())?;
            minplus_left_inplace_exec(dev, s0, &mut row_tile, &diag, opts.exec);
            download_tile(dev, s0, store, &row_tile, kr.clone(), ir.clone())?;
            // A(i, k) = min(A(i, k), A(i, k) ⊗ A(k, k)).
            let mut col_tile = upload_tile(dev, s0, store, ir.clone(), kr.clone())?;
            minplus_right_inplace_exec(dev, s0, &mut col_tile, &diag, opts.exec);
            download_tile(dev, s0, store, &col_tile, ir.clone(), kr.clone())?;
        }
        drop(diag);
        tel.phase_end(dev, ph, "fw.pivot");

        // ---- Stage 3: remainder tiles, double-buffered across streams.
        // The overlap stream must not start before stage 2 finished.
        let ph = tel.phase_start(dev);
        if opts.overlap_transfers {
            let stage2_done = dev.record_event(s0);
            dev.wait_event(s1, stage2_done);
        }
        for ib in 0..n_d {
            if ib == kb {
                continue;
            }
            let ir = extent(ib);
            let a_tile = upload_tile(dev, s0, store, ir.clone(), kr.clone())?;
            // Tiles on the overlap stream read a_tile: order them after
            // its upload.
            if opts.overlap_transfers {
                let a_ready = dev.record_event(s0);
                dev.wait_event(s1, a_ready);
            }
            for jb in 0..n_d {
                if jb == kb {
                    continue;
                }
                let jr = extent(jb);
                // Alternate streams so the previous tile's D2H overlaps
                // this tile's upload + compute.
                let stream = if opts.overlap_transfers && jb % 2 == 1 {
                    s1
                } else {
                    s0
                };
                let b_tile = upload_tile(dev, stream, store, kr.clone(), jr.clone())?;
                let mut c_tile = upload_tile(dev, stream, store, ir.clone(), jr.clone())?;
                minplus_kernel_exec(dev, stream, &mut c_tile, &a_tile, &b_tile, opts.exec);
                download_tile(dev, stream, store, &c_tile, ir.clone(), jr.clone())?;
            }
        }
        tel.phase_end(dev, ph, "fw.remainder");
        // Round barrier: the next round's pivot depends on everything.
        let now = dev.synchronize().seconds();
        // Supervision check at the natural barrier: a cancellation,
        // blown deadline, or missed progress budget surfaces here, with
        // everything committed so far still resumable.
        sup.check_barrier(now, &format!("Floyd-Warshall round {kb} barrier"))?;
        // Invariant guard at the same barrier, *before* the commit — a
        // corrupt store must never become a checkpoint snapshot. After
        // round kb the triangle inequality holds for every pivot `k`
        // in the completed blocks `0..(kb+1)·block`.
        guard.check_round(store, kb, ((kb + 1) * block).min(n))?;
        // Natural commit point: every tile reflects rounds 0..=kb. The
        // final round is not committed — completion clears the
        // checkpoint, and a crash after the last barrier replays one
        // round (exact, by monotonicity).
        if let Some(ck) = ckpt {
            if kb + 1 < n_d {
                ck.commit(
                    store,
                    &Progress::FloydWarshall {
                        block,
                        next_round: kb + 1,
                    },
                )?;
                *commits += 1;
            }
        }
    }
    let sim_seconds = dev.synchronize().seconds() - start;
    Ok(FwRunStats {
        block,
        n_d,
        sim_seconds,
        retries: 0,
        checkpoint_commits: 0,
        sdc_panel_recoveries: 0,
        sdc_round_recoveries: 0,
    })
}

/// Rung-1 recovery: rewrite the damaged panel's rows with their
/// adjacency initialization (the same state
/// [`init_store_from_graph`] seeds). Every entry of the reset rows is
/// again an upper bound on the true distance, so replaying all rounds
/// converges to the exact metric closure.
fn reset_panel_from_graph(
    g: &CsrGraph,
    store: &mut TileStore,
    panel: usize,
) -> Result<(), ApspError> {
    let n = g.num_vertices();
    let lo = (panel * SDC_PANEL_ROWS).min(n);
    let hi = ((panel + 1) * SDC_PANEL_ROWS).min(n);
    let mut row = vec![INF; n];
    for v in lo..hi {
        row.fill(INF);
        row[v] = 0;
        for (u, w) in g.edges_from(v as VertexId) {
            if u as usize != v && w < row[u as usize] {
                row[u as usize] = w;
            }
        }
        store.write_row(v, &row)?;
    }
    Ok(())
}

fn upload_tile(
    dev: &mut GpuDevice,
    stream: StreamId,
    store: &TileStore,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Result<DeviceMatrix, ApspError> {
    let host = store.read_block(rows.clone(), cols.clone())?;
    let mut tile = DeviceMatrix::alloc_inf(dev, rows.len(), cols.len())?;
    tile.upload_rows(dev, stream, 0, &host, Pinning::Pinned);
    Ok(tile)
}

fn download_tile(
    dev: &mut GpuDevice,
    stream: StreamId,
    store: &mut TileStore,
    tile: &DeviceMatrix,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Result<(), ApspError> {
    let mut host = vec![0 as Dist; rows.len() * cols.len()];
    tile.download_rows(dev, stream, 0..rows.len(), &mut host, Pinning::Pinned);
    store.write_block(rows, cols, &host)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_store::StorageBackend;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, WeightRange};

    fn small_device() -> GpuDevice {
        // Forces real out-of-core behaviour on ~100-vertex graphs: 64 KiB
        // fits five ~57² u32 tiles, so n ≈ 100 needs n_d ≥ 2.
        GpuDevice::new(DeviceProfile::v100().with_memory_bytes(64 << 10))
    }

    fn run_fw(g: &CsrGraph, dev: &mut GpuDevice, opts: &FwOptions) -> apsp_cpu::DistMatrix {
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        init_store_from_graph(g, &mut store).unwrap();
        ooc_floyd_warshall(dev, &mut store, opts).unwrap();
        store.to_dist_matrix().unwrap()
    }

    #[test]
    fn matches_reference_with_forced_blocking() {
        let g = gnp(97, 0.07, WeightRange::default(), 41);
        let mut dev = small_device();
        let result = run_fw(&g, &mut dev, &FwOptions::default());
        assert_eq!(result, bgl_plus_apsp(&g));
    }

    #[test]
    fn explicit_block_sizes_agree() {
        let g = gnp(64, 0.1, WeightRange::default(), 7);
        let reference = bgl_plus_apsp(&g);
        for block in [16, 23, 64] {
            let mut dev = GpuDevice::new(DeviceProfile::v100());
            let opts = FwOptions {
                block_size: Some(block),
                ..Default::default()
            };
            assert_eq!(run_fw(&g, &mut dev, &opts), reference, "block {block}");
        }
    }

    #[test]
    fn overlap_off_same_result_more_sim_time() {
        let g = gnp(80, 0.08, WeightRange::default(), 3);
        let mut d_on = small_device();
        let mut d_off = small_device();
        let on = run_fw(
            &g,
            &mut d_on,
            &FwOptions {
                overlap_transfers: true,
                block_size: Some(40),
                ..FwOptions::default()
            },
        );
        let off = run_fw(
            &g,
            &mut d_off,
            &FwOptions {
                overlap_transfers: false,
                block_size: Some(40),
                ..FwOptions::default()
            },
        );
        assert_eq!(on, off);
        assert!(
            d_on.elapsed().seconds() <= d_off.elapsed().seconds(),
            "overlap should never be slower"
        );
    }

    #[test]
    fn stats_report_blocking() {
        let g = gnp(100, 0.05, WeightRange::default(), 9);
        let mut dev = small_device();
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert!(
            stats.n_d >= 2,
            "device sized to force blocking, n_d = {}",
            stats.n_d
        );
        assert_eq!(stats.n_d, 100usize.div_ceil(stats.block));
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn device_too_small_errors_cleanly() {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 16));
        // Consume almost all memory so not even 1×1 tiles fit.
        let _hog: apsp_gpu_sim::DeviceBuffer<u8> = dev.alloc((1 << 16) - 8).unwrap();
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        let g = gnp(64, 0.1, WeightRange::default(), 2);
        init_store_from_graph(&g, &mut store).unwrap();
        let err = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn disk_backed_store_works() {
        let g = gnp(60, 0.1, WeightRange::default(), 5);
        let dir = std::env::temp_dir().join("apsp_ooc_fw_test");
        let mut store = TileStore::new(60, &StorageBackend::Disk(dir)).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        let mut dev = small_device();
        ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn transient_alloc_fault_recovers_exactly() {
        let g = gnp(90, 0.07, WeightRange::default(), 21);
        let mut dev = small_device();
        let mut store = TileStore::new(90, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        // Fail the 3rd device allocation (mid stage 2 of round 0): the run
        // restarts on the partially relaxed store and still converges.
        dev.inject_alloc_failure(3);
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert_eq!(stats.retries, 1);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn repeated_alloc_faults_halve_block_and_stay_exact() {
        let g = gnp(90, 0.07, WeightRange::default(), 22);
        let mut dev = small_device();
        let buffers = 5; // FwOptions::default() has overlap on
        let initial_block = max_block_side(&dev, buffers).min(90);
        let mut store = TileStore::new(90, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        // Two overlapping faults: the first kills attempt 1 at its 3rd
        // allocation, the second (countdown 10, so 7 left after attempt 1)
        // kills the same-block retry too, forcing a halved block.
        dev.inject_alloc_failure(3);
        dev.inject_alloc_failure(10);
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.block, initial_block / 2);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn forced_block_size_propagates_alloc_fault() {
        let g = gnp(64, 0.1, WeightRange::default(), 23);
        let mut dev = small_device();
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        dev.inject_alloc_failure(2);
        let opts = FwOptions {
            block_size: Some(32),
            ..Default::default()
        };
        let err = ooc_floyd_warshall(&mut dev, &mut store, &opts).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::OutOfDeviceMemory);
    }

    #[test]
    fn empty_graph() {
        let mut dev = small_device();
        let mut store = TileStore::new(0, &StorageBackend::Memory).unwrap();
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        assert_eq!(stats.n_d, 0);
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("apsp_ooc_fw_ckpt").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    use crate::options::SdcGuardMode;
    use crate::supervisor::{RetryPolicy, SupervisionOptions};

    #[test]
    fn guarded_clean_run_is_bit_identical_to_unguarded() {
        let g = gnp(90, 0.07, WeightRange::default(), 31);
        let reference = run_fw(&g, &mut small_device(), &FwOptions::default());
        for mode in [SdcGuardMode::Checksum, SdcGuardMode::Full] {
            let mut dev = small_device();
            let mut store = TileStore::new(90, &StorageBackend::Memory).unwrap();
            let opts = FwOptions {
                sdc_guard: mode,
                ..Default::default()
            };
            let stats =
                ooc_floyd_warshall_guarded(&mut dev, &g, &mut store, &opts, &Supervisor::unarmed())
                    .unwrap();
            assert_eq!(stats.sdc_panel_recoveries + stats.sdc_round_recoveries, 0);
            assert_eq!(store.to_dist_matrix().unwrap(), reference, "{mode}");
        }
    }

    #[test]
    fn injected_store_flips_are_recovered_bit_identical() {
        let g = gnp(90, 0.07, WeightRange::default(), 33);
        let reference = bgl_plus_apsp(&g);
        // Flip sites spread across the run: early init, stage 2/3 tile
        // writes, and late rounds. Each must be detected and recovered
        // to the exact clean result.
        for (after_ops, bit) in [(50u64, 7u64), (150, 13), (260, 31), (420, 3)] {
            let mut dev = small_device();
            let mut store = TileStore::new(90, &StorageBackend::Memory).unwrap();
            store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
            store.arm_bit_flip(after_ops, bit);
            let opts = FwOptions {
                sdc_guard: SdcGuardMode::Checksum,
                ..Default::default()
            };
            let stats =
                ooc_floyd_warshall_guarded(&mut dev, &g, &mut store, &opts, &Supervisor::unarmed())
                    .unwrap_or_else(|e| panic!("flip at op {after_ops} not recovered: {e}"));
            assert!(
                stats.sdc_panel_recoveries + stats.sdc_round_recoveries >= 1,
                "flip at op {after_ops} fired before the run ended but no recovery ran"
            );
            assert_eq!(
                store.to_dist_matrix().unwrap(),
                reference,
                "flip at op {after_ops} recovered to a different matrix"
            );
        }
    }

    #[test]
    fn exhausted_recovery_budget_surfaces_typed() {
        let g = gnp(64, 0.1, WeightRange::default(), 34);
        let mut dev = small_device();
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        store.arm_bit_flip(200, 9);
        let sup = Supervisor::new(
            &SupervisionOptions {
                retry: RetryPolicy {
                    sdc_panel_retries: 0,
                    sdc_round_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            0.0,
        );
        let opts = FwOptions {
            sdc_guard: SdcGuardMode::Checksum,
            ..Default::default()
        };
        let err = ooc_floyd_warshall_guarded(&mut dev, &g, &mut store, &opts, &sup).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::SilentCorruption, "{err}");
    }

    #[test]
    fn plain_entry_without_graph_propagates_sdc_typed() {
        // Without the graph or a checkpoint the driver has nothing to
        // recover from: the detection must surface typed, not panic or
        // silently pass.
        let g = gnp(64, 0.1, WeightRange::default(), 35);
        let mut dev = small_device();
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        store.arm_bit_flip(200, 5);
        let opts = FwOptions {
            sdc_guard: SdcGuardMode::Checksum,
            ..Default::default()
        };
        let err = ooc_floyd_warshall(&mut dev, &mut store, &opts).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::SilentCorruption, "{err}");
    }

    #[test]
    fn checkpointed_flip_recovers_via_snapshot_restore() {
        let g = gnp(97, 0.07, WeightRange::default(), 36);
        let reference = bgl_plus_apsp(&g);
        let mut dev = small_device();
        let mut store = TileStore::new(97, &StorageBackend::Memory).unwrap();
        store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        // Fire after round 0's commit (~op 291 of 485), on a row that
        // gets re-read, so the detection is unlocalized and the round
        // rung restores the snapshot.
        store.arm_bit_flip(380, 17);
        let ckpt = Checkpoint::new(ckpt_dir("sdc_restore"), &g).unwrap();
        let opts = FwOptions {
            sdc_guard: SdcGuardMode::Checksum,
            ..Default::default()
        };
        ooc_floyd_warshall_checkpointed_supervised(
            &mut dev,
            &g,
            &mut store,
            &opts,
            &ckpt,
            &Supervisor::unarmed(),
        )
        .unwrap();
        assert_eq!(store.to_dist_matrix().unwrap(), reference);
    }

    #[test]
    fn checkpointed_clean_run_commits_per_round_and_clears() {
        let g = gnp(97, 0.07, WeightRange::default(), 41);
        let mut dev = small_device();
        let mut store = TileStore::new(97, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(ckpt_dir("clean"), &g).unwrap();
        let stats =
            ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &FwOptions::default(), &ckpt)
                .unwrap();
        assert_eq!(stats.checkpoint_commits as usize, stats.n_d - 1);
        assert!(ckpt.load().unwrap().is_none(), "cleared on completion");
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn interrupted_run_resumes_to_the_exact_matrix() {
        let g = gnp(97, 0.07, WeightRange::default(), 42);
        let dir = ckpt_dir("resume");
        // Interrupted attempt: the store dies mid-run.
        let mut dev = small_device();
        let mut store = TileStore::new(97, &StorageBackend::Memory).unwrap();
        store.arm_crash(400);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let err =
            ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &FwOptions::default(), &ckpt)
                .unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Storage);
        drop(store);
        // Resumed attempt on fresh everything.
        let mut dev = small_device();
        let mut store = TileStore::new(97, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &FwOptions::default(), &ckpt)
            .unwrap();
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn resume_with_conflicting_forced_block_is_rejected() {
        let g = gnp(64, 0.1, WeightRange::default(), 43);
        let dir = ckpt_dir("block_conflict");
        let opts16 = FwOptions {
            block_size: Some(16),
            ..Default::default()
        };
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        // Past round 0 (init 64 + ~704 tile ops + 64 commit ops) so the
        // first round's commit has landed, but well before the run ends.
        store.arm_crash(1000);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &opts16, &ckpt).unwrap_err();
        drop(store);
        let probe = Checkpoint::new(&dir, &g).unwrap();
        assert!(
            probe.load().unwrap().is_some(),
            "round 0 must have committed"
        );
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(64, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let opts32 = FwOptions {
            block_size: Some(32),
            ..Default::default()
        };
        let err =
            ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &opts32, &ckpt).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::InvalidInput, "{err}");
        // Resuming with the committed block still works.
        let err_free = ooc_floyd_warshall_checkpointed(&mut dev, &g, &mut store, &opts16, &ckpt);
        assert!(err_free.is_ok(), "{err_free:?}");
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }
}
