//! Run telemetry: structured per-phase metrics, selector calibration
//! records, and a deterministic JSONL run report.
//!
//! The gpu-sim timeline already knows everything worth measuring — the
//! per-engine busy time, the byte counters, the `TraceEvent` log — but
//! until this module it was dropped on the floor once a run returned.
//! [`Telemetry`] is a cheap, cloneable handle threaded (via the
//! [`crate::supervisor::Supervisor`]) through the selector, the three
//! out-of-core drivers, and the [`crate::tile_store::TileStore`]. When
//! disabled (the default) every hook is a `None` check and nothing is
//! recorded; when enabled it collects:
//!
//! * **phase spans** — simulated-time intervals with byte/launch deltas,
//!   one per algorithm phase (FW diagonal/pivot/remainder, Johnson
//!   batch, boundary dist₂/dist₃/dist₄/flush) plus one per front-end
//!   attempt;
//! * **calibration records** — every selector candidate's predicted
//!   seconds (or its filter reason) paired with the realized seconds of
//!   the attempt that selection fed, making cost-model drift a
//!   queryable artifact;
//! * **store row counters** — result-matrix rows read and written.
//!
//! [`RunReport::to_jsonl`] renders the report as JSON Lines. Every
//! container is emitted in a deterministic order (spans and calibration
//! records in insertion order, kernels sorted by name) and every float
//! is formatted at fixed precision, so two runs of the same seed produce
//! byte-identical reports — a property the conformance suite pins.
//!
//! **Determinism argument.** Telemetry must never perturb the run it
//! measures. The hooks only *read* the device — `elapsed()` (no
//! barrier) and the monotone [`DeviceCounters`] — and never call
//! `synchronize()`, which would serialize the overlap streams and change
//! the makespan. Enabling the trace only appends to a host-side `Vec`.
//! Selector probes for calibration run on scratch devices, never the
//! run's device. Hence telemetry-on and telemetry-off runs issue
//! identical device operations and produce bit-identical matrices.
//!
//! The module also carries a hand-rolled minimal JSON parser and a
//! schema validator (the workspace deliberately has no serde), used by
//! CI to validate emitted reports against
//! `schemas/telemetry.schema.json`.

use crate::supervisor::SupervisionEvent;
use apsp_gpu_sim::trace::{overlap_efficiency, TraceEvent, EMPTY_TIMELINE};
use apsp_gpu_sim::{DeviceCounters, GpuDevice, SimReport};
use parking_lot::Mutex;
use std::sync::Arc;

/// One simulated-time interval attributed to a named phase, with the
/// device work that happened inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Phase name, e.g. `"fw.diagonal"` or `"attempt.johnson"`.
    pub name: String,
    /// Device clock at phase start, seconds.
    pub start_s: f64,
    /// Device clock at phase end, seconds.
    pub end_s: f64,
    /// Bytes moved host→device inside the span.
    pub bytes_h2d: u64,
    /// Bytes moved device→host inside the span.
    pub bytes_d2h: u64,
    /// Kernel launches inside the span.
    pub kernel_launches: u64,
    /// Fleet device index the span ran on; `None` for single-device
    /// runs, where the field is omitted from the JSONL record.
    pub device: Option<usize>,
}

impl PhaseSpan {
    /// Span duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// One selector candidate's predicted cost paired with what actually
/// happened — the drift artifact the paper's cost models are judged by.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRecord {
    /// Candidate algorithm tag (`"fw"`, `"johnson"`, `"boundary"`).
    pub algorithm: &'static str,
    /// Model-predicted simulated seconds, with any calibration refit
    /// applied; `None` only when the candidate was masked or infeasible
    /// (density-filtered candidates are still costed).
    pub predicted_s: Option<f64>,
    /// The prediction under the seed constants alone (pre-refit). Equal
    /// to `predicted_s` when no calibration is in force; `None` exactly
    /// when `predicted_s` is.
    pub seed_predicted_s: Option<f64>,
    /// Why the candidate was not eligible to win (`None` for ranked
    /// survivors; filtered candidates may still carry predictions).
    pub filter_reason: Option<String>,
    /// Whether this candidate is the one the run executed.
    pub selected: bool,
    /// Realized simulated seconds of the attempt this selection fed
    /// (the successful run's `sim_seconds`, or the failed attempt's span
    /// duration). `None` only while the attempt is still in flight.
    pub realized_s: Option<f64>,
}

/// Opaque marker returned by [`Telemetry::phase_start`]; hand it back to
/// [`Telemetry::phase_end`] to close the span.
#[derive(Debug)]
pub struct PhaseStart {
    at_s: f64,
    counters: DeviceCounters,
}

#[derive(Debug, Default)]
struct TelemetryState {
    spans: Vec<PhaseSpan>,
    calibration: Vec<CalibrationRecord>,
    /// Start of the most recent calibration batch (one batch per
    /// selector entry), so realized seconds land on the right records.
    calibration_batch: usize,
    store_row_reads: u64,
    store_row_writes: u64,
    sdc_detected: u64,
    sdc_recovered_panel: u64,
    sdc_recovered_round: u64,
}

/// Cheap, cloneable metrics handle. Disabled by default; every hook on a
/// disabled handle is a single `Option` check.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<TelemetryState>>>,
}

impl Telemetry {
    /// A handle that records nothing (zero overhead beyond a `None`
    /// check per hook).
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A recording handle.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(TelemetryState::default()))),
        }
    }

    /// Whether this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a phase span at the device's current clock. Reads only
    /// `elapsed()` (no barrier) and the monotone counters, so it cannot
    /// perturb the timeline. Returns `None` when disabled.
    pub fn phase_start(&self, dev: &GpuDevice) -> Option<PhaseStart> {
        self.inner.as_ref()?;
        Some(PhaseStart {
            at_s: dev.elapsed().seconds(),
            counters: dev.counters(),
        })
    }

    /// Close a span opened by [`Telemetry::phase_start`] and record it
    /// under `name`. Returns the span's duration (for callers that need
    /// the realized time of a failed attempt), or `None` when disabled.
    pub fn phase_end(&self, dev: &GpuDevice, start: Option<PhaseStart>, name: &str) -> Option<f64> {
        self.close_span(dev, start, name, None)
    }

    /// [`Telemetry::phase_end`] for multi-device runs: tags the span with
    /// the fleet device index it ran on, so the JSONL record carries a
    /// `device` field.
    pub fn phase_end_on_device(
        &self,
        dev: &GpuDevice,
        start: Option<PhaseStart>,
        name: &str,
        device: usize,
    ) -> Option<f64> {
        self.close_span(dev, start, name, Some(device))
    }

    fn close_span(
        &self,
        dev: &GpuDevice,
        start: Option<PhaseStart>,
        name: &str,
        device: Option<usize>,
    ) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let start = start?;
        let now = dev.counters();
        let span = PhaseSpan {
            name: name.to_string(),
            start_s: start.at_s,
            end_s: dev.elapsed().seconds(),
            bytes_h2d: now.bytes_h2d - start.counters.bytes_h2d,
            bytes_d2h: now.bytes_d2h - start.counters.bytes_d2h,
            kernel_launches: now.kernel_launches - start.counters.kernel_launches,
            device,
        };
        let seconds = span.seconds();
        inner.lock().spans.push(span);
        Some(seconds)
    }

    /// Record one selector entry's calibration batch (every candidate,
    /// costed or filtered). Later [`Telemetry::set_realized`] calls
    /// target this batch until the next one is recorded.
    pub fn record_calibration(&self, records: Vec<CalibrationRecord>) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock();
            st.calibration_batch = st.calibration.len();
            st.calibration.extend(records);
        }
    }

    /// Fill the realized seconds on every costed record of the most
    /// recent calibration batch (filtered-but-costed candidates
    /// included — their predictions are judged by the same run).
    pub fn set_realized(&self, seconds: f64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock();
            let batch = st.calibration_batch;
            for rec in &mut st.calibration[batch..] {
                if rec.predicted_s.is_some() {
                    rec.realized_s = Some(seconds);
                }
            }
        }
    }

    /// Count result-store row accesses (called from the tile store's
    /// read/write paths).
    pub fn count_store_rows(&self, reads: u64, writes: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock();
            st.store_row_reads += reads;
            st.store_row_writes += writes;
        }
    }

    /// Count silent-corruption guard activity: detections and the
    /// recovery rung (panel-scoped or round-scoped) that absorbed each
    /// one. A detection that exhausts the recovery ladder still counts
    /// as detected — the run then fails typed, and the report (if any)
    /// shows a detection without a matching recovery.
    pub fn count_sdc(&self, detected: u64, recovered_panel: u64, recovered_round: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.lock();
            st.sdc_detected += detected;
            st.sdc_recovered_panel += recovered_panel;
            st.sdc_recovered_round += recovered_round;
        }
    }

    /// Assemble the final [`RunReport`]. Returns `None` when disabled.
    ///
    /// `algorithm` is the algorithm that produced the result, `backend`
    /// the host execution backend it ran under (`"scalar"`,
    /// `"parallel"`, `"simd"`), `sim_seconds` its realized driver time,
    /// `report`/`trace` the device's profiling snapshot and event log,
    /// `events` the supervision log, and `retries`/`checkpoint_commits`
    /// the driver stats.
    #[allow(clippy::too_many_arguments)]
    pub fn build_report(
        &self,
        algorithm: &str,
        backend: &str,
        sim_seconds: f64,
        report: &SimReport,
        trace: &[TraceEvent],
        events: &[SupervisionEvent],
        retries: u64,
        checkpoint_commits: u64,
    ) -> Option<RunReport> {
        let inner = self.inner.as_ref()?;
        let st = inner.lock();
        let mut kernels: Vec<(String, u64, f64)> = report
            .kernels
            .iter()
            .map(|(name, k)| (name.clone(), k.launches, k.seconds))
            .collect();
        kernels.sort_by(|a, b| a.0.cmp(&b.0));
        let fallbacks = events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::Fallback { .. }))
            .count() as u64;
        let stalls = events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::Stall { .. }))
            .count() as u64;
        Some(RunReport {
            algorithm: algorithm.to_string(),
            backend: backend.to_string(),
            sim_seconds,
            retries,
            checkpoint_commits,
            fallbacks,
            stalls,
            spans: st.spans.clone(),
            calibration: st.calibration.clone(),
            bytes_h2d: report.bytes_h2d,
            bytes_d2h: report.bytes_d2h,
            transfers_h2d: report.transfers_h2d,
            transfers_d2h: report.transfers_d2h,
            kernel_launches: kernels.iter().map(|k| k.1).sum(),
            compute_busy: report.compute_busy,
            h2d_busy: report.h2d_busy,
            d2h_busy: report.d2h_busy,
            elapsed: report.elapsed,
            compute_occupancy: if report.elapsed > 0.0 {
                report.compute_busy / report.elapsed
            } else {
                0.0
            },
            transfer_fraction: report.transfer_fraction(),
            overlap_efficiency: overlap_efficiency(trace),
            kernels,
            events: events.to_vec(),
            store_row_reads: st.store_row_reads,
            store_row_writes: st.store_row_writes,
            sdc_detected: st.sdc_detected,
            sdc_recovered_panel: st.sdc_recovered_panel,
            sdc_recovered_round: st.sdc_recovered_round,
        })
    }
}

/// The complete, deterministic record of one `apsp()` run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Display name of the algorithm that produced the result.
    pub algorithm: String,
    /// Host execution backend the run used (`"scalar"`, `"parallel"`,
    /// `"simd"`).
    pub backend: String,
    /// Realized simulated seconds of the successful attempt.
    pub sim_seconds: f64,
    /// Transient failures absorbed by the retry policy.
    pub retries: u64,
    /// Checkpoint commits performed.
    pub checkpoint_commits: u64,
    /// Fallback hops taken.
    pub fallbacks: u64,
    /// Watchdog stalls declared.
    pub stalls: u64,
    /// Phase spans in recording order.
    pub spans: Vec<PhaseSpan>,
    /// Calibration records in recording order.
    pub calibration: Vec<CalibrationRecord>,
    /// Bytes moved host→device over the whole run.
    pub bytes_h2d: u64,
    /// Bytes moved device→host over the whole run.
    pub bytes_d2h: u64,
    /// H2D transfer calls.
    pub transfers_h2d: u64,
    /// D2H transfer calls.
    pub transfers_d2h: u64,
    /// Total kernel launches.
    pub kernel_launches: u64,
    /// Busy seconds of the compute engine.
    pub compute_busy: f64,
    /// Busy seconds of the H2D copy engine.
    pub h2d_busy: f64,
    /// Busy seconds of the D2H copy engine.
    pub d2h_busy: f64,
    /// Device makespan at report time.
    pub elapsed: f64,
    /// Compute-engine busy fraction of the makespan (the run's
    /// occupancy proxy).
    pub compute_occupancy: f64,
    /// Copy-engine busy seconds over the makespan (unclamped; see
    /// [`SimReport::transfer_fraction`]).
    pub transfer_fraction: f64,
    /// Fraction of engine-busy seconds hidden by overlap, from the
    /// trace (see [`overlap_efficiency`]). Zero when tracing was off.
    pub overlap_efficiency: f64,
    /// Per-kernel `(name, launches, seconds)`, sorted by name.
    pub kernels: Vec<(String, u64, f64)>,
    /// The supervision event log.
    pub events: Vec<SupervisionEvent>,
    /// Result-store rows read.
    pub store_row_reads: u64,
    /// Result-store rows written.
    pub store_row_writes: u64,
    /// Silent-corruption detections (guard trips).
    pub sdc_detected: u64,
    /// Detections absorbed by the panel-scoped recovery rung.
    pub sdc_recovered_panel: u64,
    /// Detections absorbed by the round-scoped recovery rung.
    pub sdc_recovered_round: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-precision second formatting: enough digits that distinct
/// simulated times stay distinct, few enough that the text is stable.
fn secs(v: f64) -> String {
    format!("{v:.9}")
}

/// Fixed-precision fraction formatting.
fn frac(v: f64) -> String {
    format!("{v:.6}")
}

fn opt_secs(v: Option<f64>) -> String {
    match v {
        Some(v) => secs(v),
        None => "null".into(),
    }
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".into(),
    }
}

impl RunReport {
    /// Render the report as JSON Lines: one `run` header record, then
    /// one record per phase span, aggregate `transfers` / `engines` /
    /// `store` records, one record per kernel (sorted by name), one per
    /// calibration record, and one per supervision event. All floats
    /// are fixed-precision and all orders deterministic, so the output
    /// is byte-identical across reruns of the same seed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"record\":\"run\",\"algorithm\":\"{}\",\"backend\":\"{}\",\"sim_seconds\":{},\"retries\":{},\"checkpoint_commits\":{},\"fallbacks\":{},\"stalls\":{},\"sdc_detected\":{},\"sdc_recovered_panel\":{},\"sdc_recovered_round\":{},\"phases\":{}{}}}\n",
            json_escape(&self.algorithm),
            json_escape(&self.backend),
            secs(self.sim_seconds),
            self.retries,
            self.checkpoint_commits,
            self.fallbacks,
            self.stalls,
            self.sdc_detected,
            self.sdc_recovered_panel,
            self.sdc_recovered_round,
            self.spans.len(),
            if self.spans.is_empty() {
                // Same marker render_gantt prints for a trace with no
                // events, so the two artifacts agree on "nothing ran".
                format!(",\"note\":\"{}\"", json_escape(EMPTY_TIMELINE))
            } else {
                String::new()
            },
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"record\":\"phase\",\"name\":\"{}\",\"start_s\":{},\"end_s\":{},\"seconds\":{},\"bytes_h2d\":{},\"bytes_d2h\":{},\"kernel_launches\":{}{}}}\n",
                json_escape(&s.name),
                secs(s.start_s),
                secs(s.end_s),
                secs(s.seconds()),
                s.bytes_h2d,
                s.bytes_d2h,
                s.kernel_launches,
                match s.device {
                    Some(d) => format!(",\"device\":{d}"),
                    None => String::new(),
                },
            ));
        }
        out.push_str(&format!(
            "{{\"record\":\"transfers\",\"bytes_h2d\":{},\"bytes_d2h\":{},\"transfers_h2d\":{},\"transfers_d2h\":{},\"kernel_launches\":{}}}\n",
            self.bytes_h2d,
            self.bytes_d2h,
            self.transfers_h2d,
            self.transfers_d2h,
            self.kernel_launches,
        ));
        out.push_str(&format!(
            "{{\"record\":\"engines\",\"compute_busy\":{},\"h2d_busy\":{},\"d2h_busy\":{},\"elapsed\":{},\"compute_occupancy\":{},\"transfer_fraction\":{},\"overlap_efficiency\":{}}}\n",
            secs(self.compute_busy),
            secs(self.h2d_busy),
            secs(self.d2h_busy),
            secs(self.elapsed),
            frac(self.compute_occupancy),
            frac(self.transfer_fraction),
            frac(self.overlap_efficiency),
        ));
        out.push_str(&format!(
            "{{\"record\":\"store\",\"row_reads\":{},\"row_writes\":{}}}\n",
            self.store_row_reads, self.store_row_writes,
        ));
        for (name, launches, seconds) in &self.kernels {
            out.push_str(&format!(
                "{{\"record\":\"kernel\",\"name\":\"{}\",\"launches\":{},\"seconds\":{}}}\n",
                json_escape(name),
                launches,
                secs(*seconds),
            ));
        }
        for c in &self.calibration {
            out.push_str(&format!(
                "{{\"record\":\"calibration\",\"algorithm\":\"{}\",\"predicted_s\":{},\"seed_predicted_s\":{},\"filter_reason\":{},\"selected\":{},\"realized_s\":{}}}\n",
                c.algorithm,
                opt_secs(c.predicted_s),
                opt_secs(c.seed_predicted_s),
                opt_str(&c.filter_reason),
                c.selected,
                opt_secs(c.realized_s),
            ));
        }
        for e in &self.events {
            match e {
                SupervisionEvent::Retry {
                    algorithm,
                    attempt,
                    backoff_ms,
                    shrink,
                } => out.push_str(&format!(
                    "{{\"record\":\"event\",\"kind\":\"retry\",\"algorithm\":\"{}\",\"attempt\":{attempt},\"backoff_ms\":{backoff_ms},\"shrink\":{shrink}}}\n",
                    json_escape(algorithm),
                )),
                SupervisionEvent::Stall { at, idle_seconds } => out.push_str(&format!(
                    "{{\"record\":\"event\",\"kind\":\"stall\",\"at\":\"{}\",\"idle_seconds\":{}}}\n",
                    json_escape(at),
                    secs(*idle_seconds),
                )),
                SupervisionEvent::Fallback {
                    from,
                    to,
                    error_kind,
                } => out.push_str(&format!(
                    "{{\"record\":\"event\",\"kind\":\"fallback\",\"from\":\"{from}\",\"to\":\"{to}\",\"error_kind\":\"{error_kind:?}\"}}\n",
                )),
            }
        }
        out
    }

    /// Spans aggregated by name in first-seen order:
    /// `(name, count, total seconds)`. The compact shape
    /// `bench_kernels` embeds per case.
    pub fn aggregated_phases(&self) -> Vec<(String, u64, f64)> {
        let mut out: Vec<(String, u64, f64)> = Vec::new();
        for s in &self.spans {
            match out.iter_mut().find(|(n, _, _)| n == &s.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += s.seconds();
                }
                None => out.push((s.name.clone(), 1, s.seconds())),
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parser + schema validation (the workspace has no serde).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> Self {
        JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.error("bad number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parse one JSON document.
pub fn parse_json(src: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser::new(src);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

/// Check `value` against a schema type tag: `"string"`, `"number"`,
/// `"integer"`, `"boolean"`, or a `"|null"`-suffixed variant.
fn type_matches(value: &JsonValue, ty: &str) -> bool {
    if let Some(base) = ty.strip_suffix("|null") {
        return matches!(value, JsonValue::Null) || type_matches(value, base);
    }
    match ty {
        "string" => matches!(value, JsonValue::String(_)),
        "number" => matches!(value, JsonValue::Number(_)),
        "integer" => matches!(value, JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0),
        "boolean" => matches!(value, JsonValue::Bool(_)),
        _ => false,
    }
}

/// Validate one JSONL report against a schema of the shape checked in at
/// `schemas/telemetry.schema.json`:
///
/// ```json
/// {"records": {"run": {"required": {"field": "type", ...},
///                      "optional": {"field": "type", ...}}, ...}}
/// ```
///
/// Every line must be an object whose `record` field names a schema
/// entry; every required field must be present with a matching type, and
/// no field outside required ∪ optional may appear.
pub fn validate_jsonl(jsonl: &str, schema: &JsonValue) -> Result<(), String> {
    let records = schema
        .get("records")
        .ok_or("schema has no 'records' table")?;
    for (lineno, line) in jsonl.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let value = parse_json(line).map_err(at)?;
        let kind = value
            .get("record")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| at("missing 'record' discriminator".into()))?
            .to_string();
        let spec = records
            .get(&kind)
            .ok_or_else(|| at(format!("unknown record type '{kind}'")))?;
        let required = spec
            .get("required")
            .ok_or_else(|| at(format!("schema entry '{kind}' has no 'required' table")))?;
        let empty = JsonValue::Object(Vec::new());
        let optional = spec.get("optional").unwrap_or(&empty);
        let (JsonValue::Object(req), JsonValue::Object(opt)) = (required, optional) else {
            return Err(at(format!("schema entry '{kind}' is malformed")));
        };
        for (field, ty) in req {
            let ty = ty
                .as_str()
                .ok_or_else(|| at("schema type must be a string".into()))?;
            let v = value
                .get(field)
                .ok_or_else(|| at(format!("'{kind}' record missing required field '{field}'")))?;
            if !type_matches(v, ty) {
                return Err(at(format!(
                    "'{kind}' field '{field}' is not of type {ty}: {v:?}"
                )));
            }
        }
        let JsonValue::Object(fields) = &value else {
            return Err(at("record is not an object".into()));
        };
        for (field, v) in fields {
            if field == "record" {
                continue;
            }
            let spec_ty = req
                .iter()
                .chain(opt.iter())
                .find(|(k, _)| k == field)
                .map(|(_, t)| t);
            match spec_ty {
                None => {
                    return Err(at(format!("'{kind}' has undeclared field '{field}'")));
                }
                Some(t) => {
                    let ty = t
                        .as_str()
                        .ok_or_else(|| at("schema type must be a string".into()))?;
                    if !type_matches(v, ty) {
                        return Err(at(format!(
                            "'{kind}' field '{field}' is not of type {ty}: {v:?}"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_gpu_sim::DeviceProfile;

    #[test]
    fn disabled_handle_records_nothing_and_returns_none() {
        let tel = Telemetry::disabled();
        let dev = GpuDevice::new(DeviceProfile::v100());
        assert!(!tel.is_enabled());
        let ph = tel.phase_start(&dev);
        assert!(ph.is_none());
        assert!(tel.phase_end(&dev, ph, "x").is_none());
        tel.count_store_rows(5, 5);
        tel.count_sdc(1, 1, 1);
        tel.record_calibration(vec![]);
        tel.set_realized(1.0);
        assert!(tel
            .build_report("fw", "parallel", 0.0, &SimReport::default(), &[], &[], 0, 0)
            .is_none());
    }

    #[test]
    fn spans_capture_clock_and_counter_deltas() {
        use apsp_gpu_sim::{KernelCost, LaunchConfig, Pinning};
        let tel = Telemetry::enabled();
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let s = dev.default_stream();
        let mut buf = dev.alloc::<u32>(256).unwrap();
        let ph = tel.phase_start(&dev);
        dev.h2d(s, &[1u32; 256], &mut buf, 0, Pinning::Pinned);
        dev.launch(
            s,
            "work",
            LaunchConfig::saturating(),
            KernelCost::regular(1e9, 0.0),
        );
        let dur = tel.phase_end(&dev, ph, "p1").unwrap();
        assert!(dur > 0.0);
        let report = tel
            .build_report("fw", "parallel", dur, &dev.report(), dev.trace(), &[], 0, 0)
            .unwrap();
        assert_eq!(report.spans.len(), 1);
        let span = &report.spans[0];
        assert_eq!(span.name, "p1");
        assert_eq!(span.bytes_h2d, 1024);
        assert_eq!(span.bytes_d2h, 0);
        assert_eq!(span.kernel_launches, 1);
        assert!((span.seconds() - dur).abs() < 1e-15);
    }

    #[test]
    fn realized_seconds_land_on_the_latest_batch() {
        let tel = Telemetry::enabled();
        let rec = |alg: &'static str, filtered: bool| CalibrationRecord {
            algorithm: alg,
            predicted_s: if filtered { None } else { Some(1.0) },
            seed_predicted_s: if filtered { None } else { Some(1.0) },
            filter_reason: filtered.then(|| "filtered".to_string()),
            selected: false,
            realized_s: None,
        };
        tel.record_calibration(vec![rec("johnson", false), rec("fw", false)]);
        tel.set_realized(2.0);
        tel.record_calibration(vec![rec("fw", false), rec("boundary", true)]);
        tel.set_realized(3.0);
        let report = tel
            .build_report("fw", "parallel", 3.0, &SimReport::default(), &[], &[], 0, 0)
            .unwrap();
        let realized: Vec<Option<f64>> = report.calibration.iter().map(|c| c.realized_s).collect();
        assert_eq!(realized, vec![Some(2.0), Some(2.0), Some(3.0), None]);
    }

    #[test]
    fn jsonl_is_deterministic_and_marks_empty_timelines() {
        let tel = Telemetry::enabled();
        let report = tel
            .build_report("fw", "parallel", 0.0, &SimReport::default(), &[], &[], 0, 0)
            .unwrap();
        let a = report.to_jsonl();
        let b = report.to_jsonl();
        assert_eq!(a, b);
        assert!(
            a.lines().next().unwrap().contains(EMPTY_TIMELINE),
            "empty run must carry the shared empty-timeline marker: {a}"
        );
    }

    #[test]
    fn parser_round_trips_a_report_line() {
        let v = parse_json(
            "{\"record\":\"phase\",\"name\":\"fw.diagonal\",\"seconds\":1.25,\
             \"ok\":true,\"why\":null,\"xs\":[1,2.5,-3e-2]}",
        )
        .unwrap();
        assert_eq!(v.get("record").unwrap().as_str(), Some("phase"));
        assert_eq!(v.get("seconds").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("why"), Some(&JsonValue::Null));
        assert_eq!(
            v.get("xs"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-0.03),
            ]))
        );
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn schema_validation_accepts_good_and_rejects_bad_lines() {
        let schema = parse_json(
            "{\"records\":{\"run\":{\"required\":{\"record\":\"string\",\
             \"sim_seconds\":\"number\",\"phases\":\"integer\"},\
             \"optional\":{\"note\":\"string\"}}}}",
        )
        .unwrap();
        validate_jsonl(
            "{\"record\":\"run\",\"sim_seconds\":1.5,\"phases\":3}",
            &schema,
        )
        .unwrap();
        // Missing required field.
        assert!(validate_jsonl("{\"record\":\"run\",\"phases\":3}", &schema).is_err());
        // Wrong type.
        assert!(validate_jsonl(
            "{\"record\":\"run\",\"sim_seconds\":\"x\",\"phases\":3}",
            &schema
        )
        .is_err());
        // Undeclared field.
        assert!(validate_jsonl(
            "{\"record\":\"run\",\"sim_seconds\":1.0,\"phases\":3,\"extra\":1}",
            &schema
        )
        .is_err());
        // Unknown record type.
        assert!(validate_jsonl("{\"record\":\"nope\"}", &schema).is_err());
    }
}
