//! Algorithm 3: the out-of-core boundary algorithm.
//!
//! 1. Partition the graph into `k` components (METIS-substitute k-way),
//!    renumbering vertices so each component is contiguous with its
//!    boundary nodes first (the paper's Fig 1a).
//! 2. dist₂: blocked Floyd-Warshall on each diagonal block `A(i,i)`.
//! 3. dist₃: build the boundary graph (original cross edges + virtual
//!    edges from dist₂) and run blocked Floyd-Warshall on it.
//! 4. dist₄: for every block,
//!    `A(i,j) = C2B[i] ⊗ bound(i,j) ⊗ B2C[j]` (minimized with dist₂ on the
//!    diagonal), streaming results to the host.
//!
//! Step 4's `k²` small result blocks are the transfer bottleneck the paper
//! measures at 70–84% of runtime; the **batching** optimization
//! accumulates `N_row = S_rem / (N_max · n · W)` component row-panels in a
//! device staging buffer per transfer, and **overlap** double-buffers the
//! staging so D2H copies hide behind the next components' compute.

use crate::checkpoint::{Checkpoint, Progress};
use crate::error::ApspError;
use crate::options::BoundaryOptions;
use crate::sdc::{SdcGuard, SDC_SAMPLE_SEED};
use crate::supervisor::{RetryState, RetryStep, Supervisor};
use crate::tile_store::TileStore;
use apsp_gpu_sim::{DeviceBuffer, GpuDevice, KernelCost, LaunchConfig, Pinning, StreamId};
use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};
use apsp_kernels::fw_block::fw_device_exec;
use apsp_kernels::minplus::minplus_product_exec;
use apsp_kernels::DeviceMatrix;
use apsp_partition::{kway_partition, PartitionConfig, PartitionLayout};

/// Outcome statistics of one boundary-algorithm run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryRunStats {
    /// Components used (`k`), after any auto-shrinking to fit the device.
    pub num_components: usize,
    /// Total boundary nodes (`NB`).
    pub total_boundary: usize,
    /// Largest component (`N_max`).
    pub max_component: usize,
    /// Row-panels accumulated per transfer (`N_row`; 1 without batching).
    pub n_row: usize,
    /// Simulated seconds for the whole run (excludes host-side
    /// partitioning, which the paper also performs on the CPU).
    pub sim_seconds: f64,
    /// Restarts forced by mid-run device allocation failures (0 on a
    /// clean run). Each restart recomputes every panel from the graph,
    /// possibly with fewer components.
    pub retries: u32,
    /// Checkpoint commits performed (0 without checkpointing).
    pub checkpoint_commits: u32,
    /// Silent corruptions repaired by recomputing every panel from the
    /// graph. The boundary algorithm never reads the store, so full
    /// recomputation is its one (exact) recovery rung; there is no
    /// cheaper panel-scoped rung to count separately.
    pub sdc_round_recoveries: u32,
}

/// The paper's default component count, `√n / 4` (Section V-F).
pub fn default_num_components(n: usize) -> usize {
    apsp_partition::kway::default_num_components(n)
}

/// Kernel-efficiency divisor for the boundary path.
///
/// Its kernels — per-component Floyd-Warshall on modest blocks, the
/// boundary-graph Floyd-Warshall, and k² chained *skinny* min-plus panel
/// multiplies with strided extractions — run well below the dense-FW
/// anchor efficiency on real hardware. The value is calibrated so the
/// paper-scale boundary run reproduces the measured behaviour of its
/// Figs 2 and 8: speedups of 8.2–12.4× over BGL-Plus with unoptimized
/// transfer fractions of 70–84%.
pub const BOUNDARY_KERNEL_EFFICIENCY_DIVISOR: f64 = 8.0;

/// Run the out-of-core boundary algorithm into `store`.
///
/// A mid-run device allocation failure degrades gracefully instead of
/// aborting: the run restarts — once at the same component count (a
/// transient fault clears), then at successively halved counts (the
/// device shrank). Restarts are exact: the boundary algorithm never
/// reads the store, so a retry simply recomputes and overwrites every
/// row panel from the graph.
pub fn ooc_boundary(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
) -> Result<BoundaryRunStats, ApspError> {
    boundary_driver(dev, g, store, opts, None, None, &Supervisor::unarmed())
}

/// [`ooc_boundary`] under a [`Supervisor`]: the deadline, progress
/// watchdog, and cancellation token are checked at every component
/// flush barrier, and retries follow the supervisor's policy.
pub fn ooc_boundary_supervised(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    sup: &Supervisor,
) -> Result<BoundaryRunStats, ApspError> {
    boundary_driver(dev, g, store, opts, None, None, sup)
}

/// [`ooc_boundary`] with crash-safe durability: dist₄ progress commits
/// to `ckpt` after every streamed panel group, and a checkpoint already
/// present in `ckpt`'s directory (validated against `g` and the store
/// checksums) is resumed — dist₂/dist₃ are recomputed (deterministic
/// given the partition), then the streaming phase skips the committed
/// components. The checkpoint is cleared on successful completion.
///
/// The committed cursor only transfers to the identical partition: the
/// manifest's seed must match `opts.partition_seed` (a mismatch is
/// [`ApspError::InvalidInput`]), and if the committed component count no
/// longer fits the device the run restarts from scratch instead — still
/// exact, every panel is recomputed.
pub fn ooc_boundary_checkpointed(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    ckpt: &Checkpoint,
) -> Result<BoundaryRunStats, ApspError> {
    ooc_boundary_checkpointed_supervised(dev, g, store, opts, ckpt, &Supervisor::unarmed())
}

/// [`ooc_boundary_checkpointed`] under a [`Supervisor`]. A run
/// interrupted by a deadline, stall, or cancellation leaves its last
/// committed component flush in `ckpt`, so a later call resumes instead
/// of starting over.
pub fn ooc_boundary_checkpointed_supervised(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    ckpt: &Checkpoint,
    sup: &Supervisor,
) -> Result<BoundaryRunStats, ApspError> {
    let resume = match ckpt.load()? {
        Some(m) => {
            let Progress::Boundary {
                components,
                partition_seed,
                next_component,
            } = m.progress
            else {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint in {} belongs to the `{}` algorithm, not the boundary \
                     algorithm — delete it to start over",
                    ckpt.dir().display(),
                    m.progress.algorithm_tag()
                )));
            };
            if partition_seed != opts.partition_seed {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint committed panels under partition seed {partition_seed}, but \
                     seed {} is configured — the committed rows would describe the wrong \
                     vertex sets; resume with the same seed, or delete the checkpoint",
                    opts.partition_seed
                )));
            }
            ckpt.restore_into(&m, store)?;
            Some((components, next_component))
        }
        None => None,
    };
    let stats = boundary_driver(dev, g, store, opts, resume, Some(ckpt), sup)?;
    ckpt.clear()?;
    Ok(stats)
}

/// The retry-then-halve driver shared by the plain and checkpointed
/// entry points. `resume` carries `(components, next_component)` from a
/// restored manifest; restarts drop the cursor and recompute everything.
fn boundary_driver(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    mut resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    sup: &Supervisor,
) -> Result<BoundaryRunStats, ApspError> {
    let n = g.num_vertices();
    let mut opts_eff = *opts;
    let mut commits = 0u32;
    let mut retry = RetryState::new(sup.retry_policy(), "out-of-core boundary");
    if n > 0 && opts.sdc_guard.is_on() && store.sdc_guard() != opts.sdc_guard {
        store.set_sdc_guard(opts.sdc_guard)?;
    }
    let mut guard = SdcGuard::new(opts.sdc_guard, SDC_SAMPLE_SEED);
    let mut round_budget = sup.retry_policy().sdc_round_retries;
    let mut round_recoveries = 0u32;
    loop {
        let result = ooc_boundary_inner(
            dev,
            g,
            store,
            &opts_eff,
            resume,
            ckpt,
            &mut commits,
            sup,
            &mut guard,
        );
        // Restore the device's efficiency context on every exit path.
        dev.set_kernel_efficiency_divisor(1.0);
        match result {
            Ok(mut stats) => {
                stats.retries = retry.retries();
                stats.checkpoint_commits = commits;
                stats.sdc_round_recoveries = round_recoveries;
                return Ok(stats);
            }
            Err(ApspError::SilentCorruption {
                panel,
                round,
                detail,
            }) => {
                let tel = sup.telemetry().clone();
                tel.count_sdc(1, 0, 0);
                // The boundary algorithm never reads the store, so the
                // one recovery rung — recomputing every panel from the
                // graph — is exact wherever the corruption was detected.
                // The rewrite reaches rows component by component;
                // re-seed the registry so the stale mismatch cannot
                // re-fire at an earlier flush barrier.
                if round_budget > 0 {
                    round_budget -= 1;
                    round_recoveries += 1;
                    let ph = tel.phase_start(dev);
                    store.sdc_rebaseline(0..n)?;
                    resume = None;
                    tel.phase_end(dev, ph, "sdc.recover_round");
                    tel.count_sdc(0, 0, 1);
                    continue;
                }
                return Err(ApspError::SilentCorruption {
                    panel,
                    round,
                    detail,
                });
            }
            Err(e) => {
                let (step, oom) = retry.next_step(e, sup)?;
                // Restarts recompute every panel, so any partition is
                // valid again — drop the resume cursor.
                resume = None;
                if step == RetryStep::Shrink {
                    let cur = opts_eff
                        .num_components
                        .unwrap_or_else(|| default_num_components(n))
                        .clamp(1, n.max(1));
                    if cur <= 1 {
                        return Err(ApspError::DeviceTooSmall {
                            algorithm: "out-of-core boundary",
                            detail: format!(
                                "allocation kept failing even at a single component: {oom}"
                            ),
                        });
                    }
                    opts_eff.num_components = Some(cur / 2);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ooc_boundary_inner(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    commits: &mut u32,
    sup: &Supervisor,
    guard: &mut SdcGuard,
) -> Result<BoundaryRunStats, ApspError> {
    let n = g.num_vertices();
    assert_eq!(store.n(), n);
    if n == 0 {
        return Ok(BoundaryRunStats {
            num_components: 0,
            total_boundary: 0,
            max_component: 0,
            n_row: 0,
            sim_seconds: 0.0,
            retries: 0,
            checkpoint_commits: 0,
            sdc_round_recoveries: 0,
        });
    }

    // ---- Step 1: partition (host CPU, as in the paper).
    let pcfg = PartitionConfig {
        seed: opts.partition_seed,
        ..Default::default()
    };
    // A resume must reproduce the committed partition exactly, or the
    // already-written panels would describe the wrong vertex sets. If it
    // cannot (device shrank, partitioner merged components), fall back
    // to a fresh start — exact, every panel is recomputed.
    let mut start_component = 0usize;
    let mut resumed_layout = None;
    if let Some((rk, next)) = resume {
        let candidate = PartitionLayout::new(g, &kway_partition(g, rk.clamp(1, n), &pcfg));
        if candidate.num_components() == rk && working_set_fits(dev, &candidate) {
            start_component = next.min(rk);
            resumed_layout = Some(candidate);
        }
    }
    let mut layout = match resumed_layout {
        Some(l) => l,
        None => {
            let requested_k = opts
                .num_components
                .unwrap_or_else(|| default_num_components(n))
                .clamp(1, n);
            // Shrink k until the boundary matrix and working set fit the
            // device; fewer components ⇒ fewer boundary nodes (at higher
            // dist₂ cost), mirroring the paper's observation that
            // non-small-separator graphs only admit a small number of
            // components.
            let mut k = requested_k;
            loop {
                let partition = kway_partition(g, k, &pcfg);
                let layout = PartitionLayout::new(g, &partition);
                if working_set_fits(dev, &layout) || k <= 2 {
                    break layout;
                }
                k = (k / 2).max(2);
            }
        }
    };
    // If transfer batching is on but not even one staging row-panel fits
    // alongside the working set, try doubling k once: smaller components
    // mean smaller `N_max · n` panels (at somewhat more boundary). Going
    // further multiplies the k² per-block overheads past any transfer
    // win, so a candidate is adopted only if it actually restores
    // batching; otherwise the per-block pinned fallback is cheaper.
    // Never mid-resume: a different partition would orphan the committed
    // panels.
    if start_component == 0 && opts.batch_transfers && !staging_fits(dev, opts, &layout) {
        let k2 = (layout.num_components() * 2).min(n / 2).max(2);
        if k2 > layout.num_components() {
            let candidate = PartitionLayout::new(g, &kway_partition(g, k2, &pcfg));
            if working_set_fits(dev, &candidate) && staging_fits(dev, opts, &candidate) {
                layout = candidate;
            }
        }
    }
    let pg = layout.permute_graph(g);
    let k = layout.num_components();
    let nb_total = layout.total_boundary();
    let n_max = layout.max_component_size();
    let nb_max = (0..k).map(|i| layout.boundary_count(i)).max().unwrap_or(0);
    let w = std::mem::size_of::<Dist>() as u64;
    if !working_set_fits(dev, &layout) {
        return Err(ApspError::DeviceTooSmall {
            algorithm: "out-of-core boundary",
            detail: format!(
                "minimum working set ({} bytes: boundary graph of {nb_total} nodes, {n_max}² block) exceeds free device memory ({} bytes) even at k = {k}",
                working_set_bytes(nb_total, n_max, nb_max),
                dev.free_memory()
            ),
        });
    }

    let start = dev.elapsed().seconds();
    dev.set_kernel_efficiency_divisor(BOUNDARY_KERNEL_EFFICIENCY_DIVISOR);
    let s0 = dev.default_stream();
    let s1 = if opts.overlap_transfers {
        dev.create_stream()
    } else {
        s0
    };

    // ---- Step 2: dist₂ on each diagonal block.
    let tel = sup.telemetry().clone();
    let ph = tel.phase_start(dev);
    let mut dist2: Vec<Vec<Dist>> = Vec::with_capacity(k);
    for i in 0..k {
        let range = layout.component_range(i);
        let sz = range.len();
        let mut block = adjacency_block(&pg, range.clone());
        let mut tile = DeviceMatrix::alloc_inf(dev, sz, sz)?;
        if sz > 0 {
            tile.upload_rows(dev, s0, 0, &block, Pinning::Pinned);
            fw_device_exec(dev, s0, &mut tile, opts.exec);
            tile.download_rows(dev, s0, 0..sz, &mut block, Pinning::Pinned);
        }
        dist2.push(block);
    }
    tel.phase_end(dev, ph, "boundary.dist2");

    // ---- Step 3: the boundary graph and dist₃.
    let ph = tel.phase_start(dev);
    let bofs: Vec<usize> = {
        let mut v = Vec::with_capacity(k + 1);
        let mut acc = 0usize;
        v.push(0);
        for i in 0..k {
            acc += layout.boundary_count(i);
            v.push(acc);
        }
        v
    };
    let mut bound_host = vec![INF; nb_total * nb_total];
    for d in 0..nb_total {
        bound_host[d * nb_total + d] = 0;
    }
    // Virtual edges: dist₂ restricted to boundary × boundary of each
    // component (boundary nodes occupy each block's first rows/cols).
    for i in 0..k {
        let nb = layout.boundary_count(i);
        let sz = layout.component_size(i);
        for a in 0..nb {
            for b in 0..nb {
                let d = dist2[i][a * sz + b];
                let cell = &mut bound_host[(bofs[i] + a) * nb_total + (bofs[i] + b)];
                if d < *cell {
                    *cell = d;
                }
            }
        }
    }
    // Original cross-component edges (both endpoints are boundary nodes
    // by definition).
    let comp_of = component_index(&layout);
    for v in 0..n as VertexId {
        let ci = comp_of[v as usize];
        let local_v = v as usize - layout.component_range(ci).start;
        if local_v >= layout.boundary_count(ci) {
            continue; // interior vertex: no cross edges by definition
        }
        for (u, wgt) in pg.edges_from(v) {
            let cj = comp_of[u as usize];
            if ci == cj {
                continue;
            }
            let local_u = u as usize - layout.component_range(cj).start;
            debug_assert!(local_u < layout.boundary_count(cj));
            let cell = &mut bound_host[(bofs[ci] + local_v) * nb_total + (bofs[cj] + local_u)];
            if wgt < *cell {
                *cell = wgt;
            }
        }
    }
    let mut bound = DeviceMatrix::alloc_inf(dev, nb_total, nb_total)?;
    if nb_total > 0 {
        bound.upload_rows(dev, s0, 0, &bound_host, Pinning::Pinned);
        fw_device_exec(dev, s0, &mut bound, opts.exec);
    }
    drop(bound_host);
    tel.phase_end(dev, ph, "boundary.dist3");

    // ---- Step 4: dist₄, streamed to the host.
    // Staging capacity: after the resident boundary matrix and the peak
    // per-block working set, the rest of the device is the output buffer
    // (the paper's `S_rem`), split across two buffers when overlapping.
    let per_block_working = ((n_max * nb_max) * 3 + nb_max * nb_max + n_max * n_max) as u64 * w;
    let s_rem = dev.free_memory().saturating_sub(per_block_working);
    let panel_words = (n_max * n).max(1);
    // `N_row = S_rem / (N_max · n · W)` per buffer. If two buffers don't
    // fit, sacrifice staging overlap before sacrificing batching; with no
    // room at all, fall back to per-block transfers (still correct).
    let mut staging_buffers = if opts.overlap_transfers { 2usize } else { 1 };
    let mut n_row_budget = (s_rem / w) as usize / panel_words / staging_buffers;
    if n_row_budget == 0 && staging_buffers == 2 {
        staging_buffers = 1;
        n_row_budget = (s_rem / w) as usize / panel_words;
    }
    let batching = opts.batch_transfers && n_row_budget >= 1;
    let n_row = if batching {
        n_row_budget.clamp(1, k)
    } else {
        1
    };
    // One panel row-group per staged component; two staging buffers when
    // overlapping so the D2H of one hides behind compute into the other.
    let staging_len = n_row * n_max * n;
    let mut stagings: Vec<DeviceBuffer<Dist>> = Vec::new();
    if batching {
        for _ in 0..staging_buffers {
            stagings.push(dev.alloc(staging_len)?);
        }
    }
    let mut staged: Vec<usize> = Vec::new(); // component ids in the active staging
    let mut active = 0usize; // which staging buffer / stream
    let mut host_panel = vec![0 as Dist; n_max * n];
    let mut scatter_row = vec![0 as Dist; n];

    // Store rows (original vertex ids) whose dist₄ panels are flushed —
    // final metric-closure rows, the candidates the invariant guard
    // probes. Components restored from a checkpoint are already final.
    let sdc_on = opts.sdc_guard.is_on();
    let mut guard_rows: Vec<usize> = Vec::new();
    if sdc_on {
        for c in 0..start_component {
            for v in layout.component_range(c) {
                guard_rows.push(layout.old_of(v as VertexId) as usize);
            }
        }
    }

    for i in start_component..k {
        store.set_sdc_round(i);
        let ph = tel.phase_start(dev);
        let irange = layout.component_range(i);
        let sz_i = irange.len();
        let nb_i = layout.boundary_count(i);
        let stream = pick_stream(opts, active, s0, s1);
        // C2B[i]: all rows × boundary columns of dist₂(i) (device-side
        // extraction; charged as a copy kernel).
        let c2b_host = extract_cols(&dist2[i], sz_i, 0..nb_i);
        let c2b = upload_panel(dev, stream, sz_i, nb_i, &c2b_host)?;
        charge_extract(dev, stream, sz_i * nb_i);

        for j in 0..k {
            let jrange = layout.component_range(j);
            let sz_j = jrange.len();
            let nb_j = layout.boundary_count(j);
            // bound(i, j): resident dist₃ panel (device-side extraction).
            let bound_ij_host = bound.submatrix(bofs[i]..bofs[i] + nb_i, bofs[j]..bofs[j] + nb_j);
            let bound_ij = upload_panel_free(dev, nb_i, nb_j, &bound_ij_host)?;
            charge_extract(dev, stream, nb_i * nb_j);
            // B2C[j]: boundary rows × all columns of dist₂(j).
            let b2c_host = &dist2[j][..nb_j * sz_j];
            let b2c = upload_panel(dev, stream, nb_j, sz_j, b2c_host)?;
            charge_extract(dev, stream, nb_j * sz_j);

            // tmp₁ = C2B[i] ⊗ bound(i,j);  block = tmp₁ ⊗ B2C[j].
            let mut tmp1 = DeviceMatrix::alloc_inf(dev, sz_i, nb_j)?;
            minplus_product_exec(dev, stream, &mut tmp1, &c2b, &bound_ij, opts.exec);
            let mut block = DeviceMatrix::alloc_inf(dev, sz_i, sz_j)?;
            minplus_product_exec(dev, stream, &mut block, &tmp1, &b2c, opts.exec);
            if i == j {
                // Same-component pairs also have the all-interior paths of
                // dist₂; elementwise min (one fused kernel in the real
                // implementation).
                elementwise_min(dev, stream, &mut block, &dist2[i]);
            }

            if batching {
                // The second multiply writes straight into the staging
                // buffer region in the real kernel; mirror the data.
                let slot = staged.len();
                let base = slot * n_max * n + jrange.start;
                let staging = &mut stagings[active];
                for r in 0..sz_i {
                    staging.as_mut_slice()[base + r * n..base + r * n + sz_j]
                        .copy_from_slice(&block.as_slice()[r * sz_j..(r + 1) * sz_j]);
                }
            } else {
                // Per-block path: one D2H per block — the k² small
                // transfers the paper measures at 70–84% of runtime. The
                // true naive baseline (batching off) copies out of
                // pageable memory; when batching was requested but could
                // not be staged, at least keep the pinned buffers.
                let pinning = if opts.batch_transfers {
                    Pinning::Pinned
                } else {
                    Pinning::Pageable
                };
                let mut host_block = vec![0 as Dist; sz_i * sz_j];
                block.download_rows(dev, stream, 0..sz_i, &mut host_block, pinning);
                for r in 0..sz_i {
                    host_panel[r * n + jrange.start..r * n + jrange.start + sz_j]
                        .copy_from_slice(&host_block[r * sz_j..(r + 1) * sz_j]);
                }
            }
        }

        tel.phase_end(dev, ph, "boundary.dist4");

        let mut flushed = false;
        let ph = tel.phase_start(dev);
        if batching {
            staged.push(i);
            let last = i + 1 == k;
            if staged.len() == n_row || last {
                flush_staging(
                    dev,
                    pick_stream(opts, active, s0, s1),
                    &stagings[active],
                    &staged,
                    &layout,
                    n_max,
                    store,
                    &mut scatter_row,
                )?;
                if sdc_on {
                    for &c in &staged {
                        for v in layout.component_range(c) {
                            guard_rows.push(layout.old_of(v as VertexId) as usize);
                        }
                    }
                }
                staged.clear();
                flushed = true;
                if stagings.len() == 2 {
                    active = 1 - active;
                }
            }
        } else {
            // Unbatched: the host panel for component i is complete.
            write_panel(store, &layout, i, &host_panel, &mut scatter_row)?;
            if sdc_on {
                for v in irange.clone() {
                    guard_rows.push(layout.old_of(v as VertexId) as usize);
                }
            }
            flushed = true;
        }
        if flushed {
            tel.phase_end(dev, ph, "boundary.flush");
        }
        // Supervision check at the natural barrier: a flushed panel
        // group is a unit of progress. Reads the makespan clock
        // (`elapsed`) — a `synchronize` here would serialize the
        // overlap streams.
        if flushed {
            sup.check_barrier(
                dev.elapsed().seconds(),
                &format!("boundary component {i} flush barrier"),
            )?;
            // Invariant guard BEFORE the commit, so a committed snapshot
            // is never taken across undetected corruption.
            guard.check_completed_rows(store, i, &guard_rows)?;
        }
        // Natural commit point: every component below the cursor has its
        // dist₄ panel in the store. The final flush is not committed —
        // completion clears the checkpoint, and a crash after it replays
        // the last panel group (exact: panels are recomputed).
        if let Some(ck) = ckpt {
            if flushed && i + 1 < k {
                ck.commit(
                    store,
                    &Progress::Boundary {
                        components: k,
                        partition_seed: opts.partition_seed,
                        next_component: i + 1,
                    },
                )?;
                *commits += 1;
            }
        }
    }

    let sim_seconds = dev.synchronize().seconds() - start;
    Ok(BoundaryRunStats {
        num_components: k,
        total_boundary: nb_total,
        max_component: n_max,
        n_row,
        sim_seconds,
        retries: 0,
        checkpoint_commits: 0,
        sdc_round_recoveries: 0,
    })
}

/// Whether at least one staging row-panel (two when overlapping) fits
/// beside the working set — the precondition for transfer batching.
fn staging_fits(dev: &GpuDevice, opts: &BoundaryOptions, layout: &PartitionLayout) -> bool {
    let w = std::mem::size_of::<Dist>() as u64;
    let n = layout.num_vertices() as u64;
    let nb_max = (0..layout.num_components())
        .map(|i| layout.boundary_count(i))
        .max()
        .unwrap_or(0);
    let buffers = if opts.overlap_transfers { 2u64 } else { 1 };
    let panel = layout.max_component_size() as u64 * n * w;
    working_set_bytes(layout.total_boundary(), layout.max_component_size(), nb_max)
        + buffers * panel
        <= dev.free_memory()
}

/// Quick feasibility estimate used while shrinking `k`.
fn working_set_fits(dev: &GpuDevice, layout: &PartitionLayout) -> bool {
    let nb_max = (0..layout.num_components())
        .map(|i| layout.boundary_count(i))
        .max()
        .unwrap_or(0);
    working_set_fits_bytes(
        dev.free_memory(),
        layout.total_boundary(),
        layout.max_component_size(),
        nb_max,
    )
}

/// Whether the boundary algorithm's *minimum* resident working set — the
/// boundary distance matrix plus one block's operand panels
/// (C2B, B2C, tmp₁, bound(i,j), output block) — fits in `free_bytes`.
/// The staging buffers are extra and degrade gracefully (batching falls
/// back to per-block transfers), so they are not part of feasibility.
/// Shared with the selector's boundary cost model so the model's
/// feasibility reasoning matches the runtime's.
pub fn working_set_fits_bytes(
    free_bytes: u64,
    total_boundary: usize,
    max_component: usize,
    max_boundary_per_component: usize,
) -> bool {
    working_set_bytes(total_boundary, max_component, max_boundary_per_component) <= free_bytes
}

fn working_set_bytes(
    total_boundary: usize,
    max_component: usize,
    max_boundary_per_component: usize,
) -> u64 {
    let w = std::mem::size_of::<Dist>() as u64;
    let nb = total_boundary as u64;
    let n_max = max_component as u64;
    let nb_max = max_boundary_per_component as u64;
    let bound_bytes = nb * nb * w;
    let per_block = (3 * n_max * nb_max + nb_max * nb_max + n_max * n_max) * w;
    bound_bytes + per_block
}

/// Map each (permuted) vertex to its component index.
fn component_index(layout: &PartitionLayout) -> Vec<usize> {
    let mut comp = vec![0usize; layout.num_vertices()];
    for i in 0..layout.num_components() {
        for v in layout.component_range(i) {
            comp[v] = i;
        }
    }
    comp
}

/// Dense adjacency block of `range × range` from the permuted graph.
fn adjacency_block(pg: &CsrGraph, range: std::ops::Range<usize>) -> Vec<Dist> {
    let sz = range.len();
    let mut block = vec![INF; sz * sz];
    for r in 0..sz {
        block[r * sz + r] = 0;
    }
    for (r, v) in range.clone().enumerate() {
        for (u, wgt) in pg.edges_from(v as VertexId) {
            let u = u as usize;
            if range.contains(&u) && u != v {
                let cell = &mut block[r * sz + (u - range.start)];
                if wgt < *cell {
                    *cell = wgt;
                }
            }
        }
    }
    block
}

fn extract_cols(block: &[Dist], side: usize, cols: std::ops::Range<usize>) -> Vec<Dist> {
    let width = cols.len();
    let mut out = Vec::with_capacity(side * width);
    for r in 0..side {
        out.extend_from_slice(&block[r * side + cols.start..r * side + cols.end]);
    }
    out
}

/// Upload a host panel into a fresh device matrix, charging the H2D.
fn upload_panel(
    dev: &mut GpuDevice,
    stream: StreamId,
    rows: usize,
    cols: usize,
    host: &[Dist],
) -> Result<DeviceMatrix, ApspError> {
    let mut m = DeviceMatrix::alloc_inf(dev, rows, cols)?;
    if !host.is_empty() {
        m.upload_rows(dev, stream, 0, host, Pinning::Pinned);
    }
    Ok(m)
}

/// Device-side panel materialization (no PCIe traffic — the data is
/// already resident; the copy cost is charged via [`charge_extract`]).
fn upload_panel_free(
    dev: &GpuDevice,
    rows: usize,
    cols: usize,
    host: &[Dist],
) -> Result<DeviceMatrix, ApspError> {
    let mut m = DeviceMatrix::alloc_inf(dev, rows, cols)?;
    m.as_mut_slice().copy_from_slice(host);
    Ok(m)
}

/// Charge a device-side extraction/copy kernel moving `elems` distances.
fn charge_extract(dev: &mut GpuDevice, stream: StreamId, elems: usize) {
    dev.launch(
        stream,
        "extract",
        LaunchConfig::saturating(),
        KernelCost::regular(0.0, (elems * 8) as f64),
    );
}

/// Elementwise `block = min(block, other)`, charged as one fused kernel.
fn elementwise_min(
    dev: &mut GpuDevice,
    stream: StreamId,
    block: &mut DeviceMatrix,
    other: &[Dist],
) {
    debug_assert_eq!(block.as_slice().len(), other.len());
    for (b, &o) in block.as_mut_slice().iter_mut().zip(other.iter()) {
        if o < *b {
            *b = o;
        }
    }
    dev.launch(
        stream,
        "elementwise_min",
        LaunchConfig::saturating(),
        KernelCost::regular(other.len() as f64, (other.len() * 12) as f64),
    );
}

/// One batched D2H of every staged component panel, then scatter the rows
/// into the store in original vertex order.
#[allow(clippy::too_many_arguments)]
fn flush_staging(
    dev: &mut GpuDevice,
    stream: StreamId,
    staging: &DeviceBuffer<Dist>,
    staged: &[usize],
    layout: &PartitionLayout,
    n_max: usize,
    store: &mut TileStore,
    scatter_row: &mut [Dist],
) -> Result<(), ApspError> {
    let n = layout.num_vertices();
    let used = staged.len() * n_max * n;
    let mut host = vec![0 as Dist; used];
    dev.d2h(stream, staging, 0..used, &mut host, Pinning::Pinned);
    for (slot, &comp) in staged.iter().enumerate() {
        let panel = &host[slot * n_max * n..slot * n_max * n + n_max * n];
        write_panel(store, layout, comp, panel, scatter_row)?;
    }
    Ok(())
}

/// Scatter component `comp`'s row panel (permuted order, width `n`) into
/// the store under original vertex ids.
fn write_panel(
    store: &mut TileStore,
    layout: &PartitionLayout,
    comp: usize,
    panel: &[Dist],
    scatter_row: &mut [Dist],
) -> Result<(), ApspError> {
    let n = layout.num_vertices();
    let range = layout.component_range(comp);
    for (r, new_row) in range.enumerate() {
        let old_row = layout.old_of(new_row as VertexId) as usize;
        for new_col in 0..n {
            scatter_row[layout.old_of(new_col as VertexId) as usize] = panel[r * n + new_col];
        }
        // The algorithm never writes a distance worse than dist_add of
        // its inputs; diagonal zero is preserved by dist₂'s diagonal.
        debug_assert_eq!(scatter_row[old_row], 0);
        store.write_row(old_row, scatter_row)?;
    }
    Ok(())
}

fn pick_stream(opts: &BoundaryOptions, active: usize, s0: StreamId, s1: StreamId) -> StreamId {
    if opts.overlap_transfers && active == 1 {
        s1
    } else {
        s0
    }
}

// Unused-import guard: dist_add is used in debug assertions narrative
// only; keep a reference so the import stays meaningful if assertions
// change.
#[allow(dead_code)]
fn _type_check() -> Dist {
    dist_add(0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_store::StorageBackend;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, grid_2d, random_geometric, GridOptions, WeightRange};

    fn run_boundary(
        g: &CsrGraph,
        dev: &mut GpuDevice,
        opts: &BoundaryOptions,
    ) -> (apsp_cpu::DistMatrix, BoundaryRunStats) {
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let stats = ooc_boundary(dev, g, &mut store, opts).unwrap();
        (store.to_dist_matrix().unwrap(), stats)
    }

    #[test]
    fn matches_reference_on_grid() {
        let g = grid_2d(9, 9, GridOptions::default(), WeightRange::default(), 3);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = BoundaryOptions {
            num_components: Some(4),
            ..Default::default()
        };
        let (result, stats) = run_boundary(&g, &mut dev, &opts);
        assert_eq!(result, bgl_plus_apsp(&g));
        assert_eq!(stats.num_components, 4);
        assert!(stats.total_boundary > 0);
    }

    #[test]
    fn matches_reference_on_geometric() {
        let g = random_geometric(220, 0.09, WeightRange::default(), 11);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let (result, _) = run_boundary(&g, &mut dev, &BoundaryOptions::default());
        assert_eq!(result, bgl_plus_apsp(&g));
    }

    #[test]
    fn matches_reference_on_disconnected_graph() {
        // Disconnected inputs exercise INF propagation through all steps.
        let mut b = apsp_graph::GraphBuilder::new(40);
        let grid = grid_2d(4, 5, GridOptions::default(), WeightRange::default(), 5);
        for e in grid.edges() {
            b.add_edge(e.src, e.dst, e.weight);
            b.add_edge(e.src + 20, e.dst + 20, e.weight);
        }
        let g = b.build();
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = BoundaryOptions {
            num_components: Some(3),
            ..Default::default()
        };
        let (result, _) = run_boundary(&g, &mut dev, &opts);
        assert_eq!(result, bgl_plus_apsp(&g));
    }

    #[test]
    fn all_optimization_combinations_agree() {
        let g = grid_2d(8, 8, GridOptions::default(), WeightRange::default(), 7);
        let reference = bgl_plus_apsp(&g);
        for batch in [false, true] {
            for overlap in [false, true] {
                let mut dev = GpuDevice::new(DeviceProfile::v100());
                let opts = BoundaryOptions {
                    num_components: Some(5),
                    batch_transfers: batch,
                    overlap_transfers: overlap,
                    ..Default::default()
                };
                let (result, _) = run_boundary(&g, &mut dev, &opts);
                assert_eq!(result, reference, "batch={batch} overlap={overlap}");
            }
        }
    }

    #[test]
    fn batching_reduces_transfer_count_and_time() {
        let g = random_geometric(300, 0.07, WeightRange::default(), 13);
        let run = |batch: bool| {
            let mut dev = GpuDevice::new(DeviceProfile::v100());
            let opts = BoundaryOptions {
                num_components: Some(10),
                batch_transfers: batch,
                overlap_transfers: false,
                ..Default::default()
            };
            let mut store = TileStore::new(300, &StorageBackend::Memory).unwrap();
            ooc_boundary(&mut dev, &g, &mut store, &opts).unwrap();
            let r = dev.report();
            (r.transfers_d2h, dev.elapsed().seconds())
        };
        let (naive_transfers, naive_time) = run(false);
        let (batched_transfers, batched_time) = run(true);
        assert!(
            batched_transfers < naive_transfers / 5,
            "{batched_transfers} vs {naive_transfers}"
        );
        assert!(batched_time < naive_time, "{batched_time} vs {naive_time}");
    }

    #[test]
    fn stats_expose_partition_shape() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 17);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = BoundaryOptions {
            num_components: Some(6),
            ..Default::default()
        };
        let (_, stats) = run_boundary(&g, &mut dev, &opts);
        assert_eq!(stats.num_components, 6);
        assert!(stats.max_component >= 100 / 6);
        assert!(stats.n_row >= 1);
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn tiny_device_shrinks_k_or_errors() {
        let g = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 19);
        // Device that can hold some blocks but is tight.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(300 << 10));
        let mut store = TileStore::new(144, &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(12),
            ..Default::default()
        };
        match ooc_boundary(&mut dev, &g, &mut store, &opts) {
            Ok(stats) => {
                assert_eq!(
                    store.to_dist_matrix().unwrap(),
                    bgl_plus_apsp(&g),
                    "shrunk k = {}",
                    stats.num_components
                );
            }
            // Either structured refusal is acceptable on a device this
            // tight: the upfront feasibility check, or a mid-run
            // allocation failure surfaced cleanly.
            Err(ApspError::DeviceTooSmall { .. }) | Err(ApspError::OutOfDeviceMemory(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn transient_alloc_fault_recovers_exactly() {
        let g = grid_2d(9, 9, GridOptions::default(), WeightRange::default(), 29);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(81, &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(4),
            ..Default::default()
        };
        // Fail an allocation somewhere in dist₂/dist₃: the run restarts
        // and still converges.
        dev.inject_alloc_failure(3);
        let stats = ooc_boundary(&mut dev, &g, &mut store, &opts).unwrap();
        assert_eq!(stats.retries, 1);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn repeated_alloc_faults_halve_components_and_stay_exact() {
        let g = grid_2d(9, 9, GridOptions::default(), WeightRange::default(), 31);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(81, &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(8),
            ..Default::default()
        };
        // Kill attempt 1 and the same-k retry, forcing halved components.
        dev.inject_alloc_failure(3);
        dev.inject_alloc_failure(6);
        let stats = ooc_boundary(&mut dev, &g, &mut store, &opts).unwrap();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.num_components, 4);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join("apsp_ooc_boundary_ckpt")
            .join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpointed_clean_run_commits_and_clears() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 33);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(6),
            batch_transfers: false, // per-component commits
            ..Default::default()
        };
        let ckpt = Checkpoint::new(ckpt_dir("clean"), &g).unwrap();
        let stats = ooc_boundary_checkpointed(&mut dev, &g, &mut store, &opts, &ckpt).unwrap();
        assert_eq!(stats.checkpoint_commits as usize, stats.num_components - 1);
        assert!(ckpt.load().unwrap().is_none(), "cleared on completion");
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn interrupted_run_resumes_skipping_committed_components() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 35);
        let dir = ckpt_dir("resume");
        let opts = BoundaryOptions {
            num_components: Some(6),
            batch_transfers: false,
            ..Default::default()
        };
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        // Panels write ~17 rows per component, commits tick n = 100: die
        // after a couple of components committed.
        store.arm_crash(300);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let err = ooc_boundary_checkpointed(&mut dev, &g, &mut store, &opts, &ckpt).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Storage);
        drop(store);
        let probe = Checkpoint::new(&dir, &g).unwrap();
        let m = probe.load().unwrap().expect("some component committed");
        let crate::checkpoint::Progress::Boundary { next_component, .. } = m.progress else {
            panic!("wrong progress variant {:?}", m.progress);
        };
        assert!(next_component >= 1);

        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ooc_boundary_checkpointed(&mut dev, &g, &mut store, &opts, &ckpt).unwrap();
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
        assert!(ckpt.load().unwrap().is_none());
    }

    #[test]
    fn resume_with_conflicting_partition_seed_is_rejected() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 37);
        let dir = ckpt_dir("seed_conflict");
        let opts = BoundaryOptions {
            num_components: Some(6),
            batch_transfers: false,
            ..Default::default()
        };
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        store.arm_crash(300);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        ooc_boundary_checkpointed(&mut dev, &g, &mut store, &opts, &ckpt).unwrap_err();
        drop(store);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let other_seed = BoundaryOptions {
            partition_seed: opts.partition_seed + 1,
            ..opts
        };
        let err =
            ooc_boundary_checkpointed(&mut dev, &g, &mut store, &other_seed, &ckpt).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::InvalidInput, "{err}");
    }

    #[test]
    fn injected_flips_recover_bit_identical() {
        use crate::options::SdcGuardMode;
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 41);
        let reference = bgl_plus_apsp(&g);
        // One write op per store row (100 total); cover early, middle,
        // and late flush groups, and both transfer modes.
        for batch in [false, true] {
            for (after_ops, bit) in [(10u64, 11u64), (55, 3), (95, 25)] {
                let mut dev = GpuDevice::new(DeviceProfile::v100());
                let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
                store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
                store.arm_bit_flip(after_ops, bit);
                let opts = BoundaryOptions {
                    num_components: Some(6),
                    batch_transfers: batch,
                    sdc_guard: SdcGuardMode::Checksum,
                    ..Default::default()
                };
                let stats = ooc_boundary(&mut dev, &g, &mut store, &opts).unwrap();
                assert_eq!(
                    stats.sdc_round_recoveries, 1,
                    "flip after {after_ops} ops (batch={batch}) went unnoticed"
                );
                assert_eq!(
                    store.to_dist_matrix().unwrap(),
                    reference,
                    "flip after {after_ops} ops (batch={batch})"
                );
            }
        }
    }

    #[test]
    fn exhausted_recovery_budget_surfaces_typed() {
        use crate::options::SdcGuardMode;
        use crate::supervisor::{RetryPolicy, SupervisionOptions};
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 41);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        store.arm_bit_flip(40, 9);
        let sup = Supervisor::new(
            &SupervisionOptions {
                retry: RetryPolicy {
                    sdc_round_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            0.0,
        );
        let opts = BoundaryOptions {
            num_components: Some(6),
            sdc_guard: SdcGuardMode::Checksum,
            ..Default::default()
        };
        let err = ooc_boundary_supervised(&mut dev, &g, &mut store, &opts, &sup).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::SilentCorruption, "{err}");
    }

    #[test]
    fn single_component_degenerates_to_fw() {
        let g = gnp(50, 0.1, WeightRange::default(), 23);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = BoundaryOptions {
            num_components: Some(1),
            ..Default::default()
        };
        let (result, stats) = run_boundary(&g, &mut dev, &opts);
        assert_eq!(result, bgl_plus_apsp(&g));
        assert_eq!(stats.num_components, 1);
        assert_eq!(stats.total_boundary, 0);
    }
}
