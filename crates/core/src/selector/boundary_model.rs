//! Cost model for the out-of-core boundary algorithm.
//!
//! Two regimes, keyed by the boundary count `NB` after partitioning with
//! `k` components against the planar ideal `√(k·n)`:
//!
//! * **small separator** (`NB` within 2× of the ideal):
//!   `T = T₀ · (n/n₀)^{3/2}` with `T₀` calibrated on a grid graph;
//! * **large separator**: `T = N_op · c_unit(bucket(NB))` with
//!   `N_op = n³/k² + (kB)³ + n·k·B² + n²·B` (B = NB/k) and per-bucket
//!   unit costs trained on banded graphs of increasing irregularity.
//!
//! Transfers: one batched flush per `N_row` row-panels ⇒ `W·n²/TH` plus
//! per-flush latencies.

use crate::calibration::{CoeffKey, EstimateParts};
use crate::ooc_boundary::{default_num_components, ooc_boundary};
use crate::options::BoundaryOptions;
use crate::selector::CostModels;
use crate::tile_store::{StorageBackend, TileStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{banded, grid_2d, GridOptions, WeightRange};
use apsp_graph::CsrGraph;
use apsp_partition::{kway_partition, PartitionConfig};

/// Number of `c_unit` buckets: bucket `r` covers
/// `NB ∈ [2^r · ideal, 2^{r+1} · ideal)`.
const BUCKETS: usize = 5;

/// Calibrated boundary model.
#[derive(Debug, Clone)]
pub struct BoundaryModel {
    /// Training size for the small-separator anchor.
    pub n0: usize,
    /// Measured compute seconds of the small-separator training run.
    pub t0_compute: f64,
    /// Per-bucket unit cost (seconds per operation) for large-separator
    /// graphs; bucket 0 is unused (small-separator regime).
    pub c_unit: [f64; BUCKETS],
}

const TRAIN_SIDE: usize = 24; // 24×24 grid = 576 vertices

impl BoundaryModel {
    /// Calibrate: one grid run for the `n^{3/2}` anchor, banded runs of
    /// growing fill for the `c_unit` buckets.
    pub fn calibrate(profile: &DeviceProfile) -> Self {
        let n0 = TRAIN_SIDE * TRAIN_SIDE;
        let grid = grid_2d(
            TRAIN_SIDE,
            TRAIN_SIDE,
            GridOptions::default(),
            WeightRange::default(),
            0xB0,
        );
        let t0_compute = run_compute_seconds(profile, &grid);

        let mut c_unit = [0.0f64; BUCKETS];
        let mut trained = [false; BUCKETS];
        // Banded graphs with wider bands / more fill land in higher NB
        // buckets.
        for (bw_mult, fill) in [(2usize, 0.1f64), (6, 0.3), (12, 0.5), (24, 0.8)] {
            let g = banded(n0, bw_mult * 4, 4, fill, WeightRange::default(), 0xB1);
            let (nb, k) = partition_boundary(&g);
            let bucket = bucket_of(nb, k, n0);
            if bucket == 0 || trained[bucket] {
                continue;
            }
            let t = run_compute_seconds(profile, &g);
            let ops = n_op(n0, k, nb);
            if ops > 0.0 {
                c_unit[bucket] = t / ops;
                trained[bucket] = true;
            }
        }
        // Fill untrained buckets from the nearest trained one (scaled up
        // mildly per step — irregularity raises unit cost).
        let fallback =
            t0_compute / n_op(n0, default_num_components(n0), (n0 as f64).sqrt() as usize).max(1.0);
        let mut last = fallback;
        for b in 1..BUCKETS {
            if trained[b] {
                last = c_unit[b];
            } else {
                c_unit[b] = last * 1.3;
                last = c_unit[b];
            }
        }
        BoundaryModel {
            n0,
            t0_compute,
            c_unit,
        }
    }

    /// Estimated compute seconds for `g`, partitioning to observe `NB`.
    ///
    /// `free_bytes` is the target device's usable memory; the estimate
    /// replays the runtime's k-shrinking loop and returns `INFINITY` when
    /// no component count admits a feasible working set (the paper's
    /// "maximal number of components allowed is small" regime, where the
    /// boundary algorithm is simply not a candidate).
    pub fn compute_seconds(&self, g: &CsrGraph, free_bytes: u64) -> f64 {
        self.compute_parts(g, free_bytes).0
    }

    /// [`BoundaryModel::compute_seconds`] plus the coefficient the
    /// estimate is anchored on: [`CoeffKey::BoundaryT0`] in the
    /// small-separator regime, [`CoeffKey::BoundaryCUnit`] otherwise.
    pub fn compute_parts(&self, g: &CsrGraph, free_bytes: u64) -> (f64, CoeffKey) {
        let n = g.num_vertices();
        if n == 0 {
            return (0.0, CoeffKey::BoundaryT0);
        }
        let Some((nb, k)) = feasible_plan(g, free_bytes) else {
            return (f64::INFINITY, CoeffKey::BoundaryT0);
        };
        let bucket = bucket_of(nb, k, n);
        if bucket == 0 {
            // Small separator: T₀ · (n/n₀)^{3/2}.
            let r = n as f64 / self.n0 as f64;
            (self.t0_compute * r.powf(1.5), CoeffKey::BoundaryT0)
        } else {
            (
                n_op(n, k, nb) * self.c_unit[bucket.min(BUCKETS - 1)],
                CoeffKey::BoundaryCUnit,
            )
        }
    }

    /// Estimated transfer seconds: batched output panels.
    pub fn transfer_seconds(&self, models: &CostModels, g: &CsrGraph) -> f64 {
        let n = g.num_vertices() as f64;
        let w = std::mem::size_of::<apsp_graph::Dist>() as f64;
        w * n * n / models.throughput
    }

    /// The estimate's seed-constant decomposition. `compute_seed` is
    /// infinite when no component count admits a feasible working set.
    pub fn estimate_parts(&self, models: &CostModels, g: &CsrGraph) -> EstimateParts {
        let free = models.profile().memory_bytes;
        let (compute_seed, key) = self.compute_parts(g, free);
        EstimateParts {
            key,
            compute_seed,
            transfer: self.transfer_seconds(models, g),
        }
    }

    /// Total estimate, with `models`' refit correction applied to the
    /// compute term.
    pub fn estimate_seconds(&self, models: &CostModels, g: &CsrGraph) -> f64 {
        self.estimate_parts(models, g)
            .refitted_seconds(&models.refit)
    }

    /// Whether `g` falls in the small-separator regime (bucket 0) — the
    /// classification the paper applies to Table III.
    pub fn has_small_separator(&self, g: &CsrGraph) -> bool {
        let n = g.num_vertices();
        if n == 0 {
            return true;
        }
        let (nb, k) = partition_boundary(g);
        bucket_of(nb, k, n) == 0
    }
}

/// Replay the runtime's k-shrinking loop: partition at the paper's
/// default `k`, halving until the working set fits. Returns `(NB, k)` or
/// `None` if even `k = 2` cannot fit.
fn feasible_plan(g: &CsrGraph, free_bytes: u64) -> Option<(usize, usize)> {
    use apsp_partition::PartitionLayout;
    let n = g.num_vertices();
    let mut k = default_num_components(n).clamp(1, n.max(1));
    loop {
        let p = kway_partition(g, k, &PartitionConfig::default());
        let layout = PartitionLayout::new(g, &p);
        let nb = layout.total_boundary();
        let n_max = layout.max_component_size();
        let nb_max = (0..layout.num_components())
            .map(|i| layout.boundary_count(i))
            .max()
            .unwrap_or(0);
        if crate::ooc_boundary::working_set_fits_bytes(free_bytes, nb, n_max, nb_max) {
            return Some((nb, layout.num_components()));
        }
        if k <= 2 {
            return None;
        }
        k = (k / 2).max(2);
    }
}

/// `N_op = n³/k² + (kB)³ + n·k·B² + n²·B` with `B = NB/k`.
fn n_op(n: usize, k: usize, nb: usize) -> f64 {
    let (n, k, nb) = (n as f64, k.max(1) as f64, nb as f64);
    let b = nb / k;
    n * n * n / (k * k) + (k * b).powi(3) + n * k * b * b + n * n * b
}

/// Partition with the paper's defaults and count the boundary set.
fn partition_boundary(g: &CsrGraph) -> (usize, usize) {
    let n = g.num_vertices();
    let k = default_num_components(n).min(n.max(1));
    let p = kway_partition(g, k, &PartitionConfig::default());
    (p.num_boundary_nodes(g), k)
}

/// Bucket index against the planar ideal `√(k·n)`.
///
/// The paper's Table III classifies graphs up to ≈ 2.5× the ideal as
/// "small separator" (nm2010) while the FEM matrices sit at 10–20×; grid
/// partitions land at 3–4× (each k-way cut exposes two node layers), so
/// the small-separator cutoff is 4×, with doubling buckets above it.
fn bucket_of(nb: usize, k: usize, n: usize) -> usize {
    let ideal = ((k * n) as f64).sqrt().max(1.0);
    let ratio = nb as f64 / ideal;
    if ratio < 4.0 {
        0
    } else {
        ((ratio / 2.0).log2().floor() as usize).clamp(1, BUCKETS - 1)
    }
}

/// Compute-only seconds of a boundary run on a scratch device. The
/// scratch device gets enough memory for the training graphs even when
/// the target profile is tiny — the constants being measured are
/// compute-throughput properties, not capacity properties.
fn run_compute_seconds(profile: &DeviceProfile, g: &CsrGraph) -> f64 {
    let mut dev = GpuDevice::new(profile.with_memory_bytes(profile.memory_bytes.max(64 << 20)));
    let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory)
        .expect("memory store cannot fail");
    let opts = BoundaryOptions::default();
    ooc_boundary(&mut dev, g, &mut store, &opts).expect("training run must fit");
    dev.report().total_kernel_seconds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::random_geometric;

    #[test]
    fn calibration_produces_monotone_buckets() {
        let m = BoundaryModel::calibrate(&DeviceProfile::v100());
        assert!(m.t0_compute > 0.0);
        for b in 1..BUCKETS - 1 {
            assert!(m.c_unit[b] > 0.0);
        }
    }

    #[test]
    fn grid_classified_small_separator_banded_not() {
        let m = BoundaryModel::calibrate(&DeviceProfile::v100());
        let grid = grid_2d(20, 20, GridOptions::default(), WeightRange::default(), 1);
        assert!(m.has_small_separator(&grid));
        let fem = banded(400, 48, 6, 0.8, WeightRange::default(), 2);
        assert!(!m.has_small_separator(&fem));
    }

    #[test]
    fn small_separator_estimate_scales_as_n_to_1_5() {
        let m = BoundaryModel::calibrate(&DeviceProfile::v100());
        let small = grid_2d(16, 16, GridOptions::default(), WeightRange::default(), 3);
        let large = grid_2d(32, 32, GridOptions::default(), WeightRange::default(), 3);
        let free = DeviceProfile::v100().memory_bytes;
        let t_small = m.compute_seconds(&small, free);
        let t_large = m.compute_seconds(&large, free);
        // n quadruples ⇒ n^1.5 grows 8×.
        let ratio = t_large / t_small;
        assert!((6.0..10.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn estimate_tracks_actual_run_on_geometric_graph() {
        let profile = DeviceProfile::v100();
        let models = CostModels::calibrate(&profile);
        let g = random_geometric(500, 0.06, WeightRange::default(), 31);
        let predicted = models.boundary.estimate_seconds(&models, &g);
        let mut dev = GpuDevice::new(profile);
        let mut store = TileStore::new(500, &StorageBackend::Memory).unwrap();
        let stats = ooc_boundary(&mut dev, &g, &mut store, &BoundaryOptions::default()).unwrap();
        let ratio = predicted / stats.sim_seconds;
        assert!(
            (0.2..5.0).contains(&ratio),
            "predicted {predicted}, actual {}",
            stats.sim_seconds
        );
    }

    #[test]
    fn infeasible_device_yields_infinite_estimate() {
        let m = BoundaryModel::calibrate(&DeviceProfile::v100());
        let g = banded(600, 64, 8, 0.8, WeightRange::default(), 9);
        // A device too small for any (bound, block, panel) working set.
        let t = m.compute_seconds(&g, 10_000);
        assert!(t.is_infinite());
        // A huge device admits a finite estimate.
        let t2 = m.compute_seconds(&g, u64::MAX / 2);
        assert!(t2.is_finite() && t2 > 0.0);
    }

    #[test]
    fn n_op_formula_matches_paper_shape() {
        // Dominant term for modest B is n³/k²; raising NB lifts the n²·B
        // term.
        let base = n_op(1000, 10, 100);
        let more_boundary = n_op(1000, 10, 400);
        assert!(more_boundary > base);
    }
}
