//! Section IV: performance characterization and algorithm selection.
//!
//! Selection proceeds in two layers, exactly as the paper describes:
//!
//! 1. **Density filter** (Section IV-C): density > 1% eliminates the
//!    boundary algorithm; density < 0.01% eliminates Floyd-Warshall;
//!    anything in between short-circuits to Johnson's.
//! 2. **Cost models** (Section IV-B) rank the survivors:
//!    * Floyd-Warshall — calibrated `T₀ · (n/n₀)³` compute plus the
//!      `n_d · W · (3b² + n²) / TH` transfer formula,
//!    * Johnson's — run `k` randomly chosen batches on the device and
//!      extrapolate (`T · n_b / k`), plus `W · n² / TH` transfers,
//!    * boundary — `T₀ · (n/n₀)^{3/2}` for small-separator graphs, or
//!      `N_op · c_unit(NB)` with
//!      `N_op = n³/k² + (kB)³ + nkB² + n²B` otherwise, plus the batched
//!      transfer cost.
//!
//! Calibration (the `T₀`s and `c_unit` buckets) happens once per device
//! profile via [`CostModels::calibrate`], which runs small training
//! workloads on a scratch device — the analog of the paper's offline
//! measurements. On top of those seed constants, a persisted
//! [`crate::calibration::CalibrationStore`] can supply learned
//! multiplicative corrections (installed with
//! [`CostModels::with_refit`]) that online-refit each model's compute
//! term from realized run times.

mod boundary_model;
mod fw_model;
mod johnson_model;
pub mod placement;

pub use boundary_model::BoundaryModel;
pub use fw_model::FwModel;
pub use johnson_model::JohnsonModel;

use crate::calibration::{EstimateParts, RefitCoefficients};
use crate::options::Algorithm;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::stats::DensityClass;
use apsp_graph::CsrGraph;

/// Selector configuration.
#[derive(Debug, Clone, Copy)]
pub struct SelectorConfig {
    /// Upper density threshold (paper: 1% = 0.01). Above it the boundary
    /// algorithm is filtered out.
    pub density_hi: f64,
    /// Lower density threshold (paper: 0.01% = 0.0001). Below it
    /// Floyd-Warshall is filtered out.
    pub density_lo: f64,
    /// Batches sampled for the Johnson model (paper: 5).
    pub johnson_sample_batches: usize,
    /// RNG seed for batch sampling.
    pub seed: u64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            density_hi: 1e-2,
            density_lo: 1e-4,
            johnson_sample_batches: 5,
            seed: 0x5E1E,
        }
    }
}

impl SelectorConfig {
    /// Thresholds for a reproduction scaled down by `scale`: dividing both
    /// `n` and `m` by `s` multiplies density `m/n²` by `s`, so the
    /// absolute thresholds must scale by `s` to classify the scaled graph
    /// the way the paper-scale graph would be classified.
    pub fn scaled(scale: usize) -> Self {
        let s = scale.max(1) as f64;
        SelectorConfig {
            density_hi: 1e-2 * s,
            density_lo: 1e-4 * s,
            ..Default::default()
        }
    }

    /// The paper's density classes under these thresholds.
    pub fn classify(&self, g: &CsrGraph) -> DensityClass {
        let d = g.density();
        if d > self.density_hi {
            DensityClass::Dense
        } else if d < self.density_lo {
            DensityClass::VerySparse
        } else {
            DensityClass::Sparse
        }
    }
}

/// One algorithm's fate during selection: either it survived filtering
/// and was costed, or it was excluded and the reason is recorded. Every
/// selection covers all three algorithms, so downstream artifacts
/// (calibration records, `--metrics-out`) never show a silent gap.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The algorithm this entry describes.
    pub algorithm: Algorithm,
    /// Estimated execution time in simulated seconds, with any
    /// calibration refit applied. `Some` for every candidate the models
    /// could cost — *including* density-filtered ones, so downstream
    /// artifacts never show a prediction gap — and `None` only when the
    /// candidate was masked or is structurally infeasible on this
    /// device.
    pub estimate: Option<f64>,
    /// The same estimate under the seed constants alone (no refit).
    /// Equal to `estimate` when no calibration is in force.
    pub seed_estimate: Option<f64>,
    /// The seed-constant decomposition behind the estimate; calibration
    /// feeds realized seconds back through it.
    pub parts: Option<EstimateParts>,
    /// Why the candidate is not eligible to win (`None` for ranked
    /// survivors). Density-filtered candidates carry *both* a reason and
    /// an estimate; masked or infeasible ones carry only the reason.
    pub filter_reason: Option<String>,
}

impl Candidate {
    /// Whether this candidate was eligible to win the selection.
    pub fn eligible(&self) -> bool {
        self.filter_reason.is_none()
    }
}

/// Estimated execution times (simulated seconds) per candidate.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The winning algorithm.
    pub algorithm: Algorithm,
    /// Every algorithm's fate, in the fixed order Johnson,
    /// Floyd-Warshall, boundary: an estimate for survivors, a filter
    /// reason for the rest. Nothing is silently dropped.
    pub candidates: Vec<Candidate>,
    /// The density class that drove the filtering.
    pub class: DensityClass,
}

impl Selection {
    /// The eligible survivors as `(algorithm, estimated seconds)` pairs —
    /// the pre-refactor shape of this report, for callers that only care
    /// about the estimates the winner was ranked against.
    pub fn estimates(&self) -> Vec<(Algorithm, f64)> {
        self.candidates
            .iter()
            .filter(|c| c.eligible())
            .filter_map(|c| c.estimate.map(|e| (c.algorithm, e)))
            .collect()
    }
}

/// Calibrated cost models for one device profile.
#[derive(Debug, Clone)]
pub struct CostModels {
    /// Floyd-Warshall model.
    pub fw: FwModel,
    /// Boundary model.
    pub boundary: BoundaryModel,
    /// Measured D2H throughput of the device (bytes/s), the paper's
    /// `nvprof`-measured `TH`.
    pub throughput: f64,
    /// Learned multiplicative corrections applied to each model's
    /// compute term. Identity (seed constants only) unless installed
    /// with [`CostModels::with_refit`].
    pub refit: RefitCoefficients,
    profile: DeviceProfile,
}

impl CostModels {
    /// Calibrate all models against `profile` by running the training
    /// workloads on scratch devices (a few hundred milliseconds of host
    /// work at the default training sizes).
    pub fn calibrate(profile: &DeviceProfile) -> Self {
        let mut scratch = GpuDevice::new(profile.clone());
        let throughput = scratch.measure_transfer_throughput();
        CostModels {
            fw: FwModel::calibrate(profile),
            boundary: BoundaryModel::calibrate(profile),
            throughput,
            refit: RefitCoefficients::identity(),
            profile: profile.clone(),
        }
    }

    /// A copy of these models with `refit`'s corrections installed.
    /// The cached seed calibration ([`CostModels::calibrate_cached`])
    /// always stays identity-refitted; the front-end derives a refitted
    /// copy per run from the calibration store.
    pub fn with_refit(&self, refit: RefitCoefficients) -> CostModels {
        CostModels {
            refit,
            ..self.clone()
        }
    }

    /// [`CostModels::calibrate`] with a process-wide cache: calibration
    /// runs real training workloads, so repeated auto-mode `apsp()` calls
    /// against the same profile should pay for it once. Profiles are
    /// compared structurally (every constant), not by name.
    pub fn calibrate_cached(profile: &DeviceProfile) -> std::sync::Arc<Self> {
        use parking_lot::Mutex;
        use std::sync::Arc;
        static CACHE: Mutex<Vec<(DeviceProfile, std::sync::Arc<CostModels>)>> =
            Mutex::new(Vec::new());
        {
            let cache = CACHE.lock();
            if let Some((_, models)) = cache.iter().find(|(p, _)| p == profile) {
                return Arc::clone(models);
            }
        }
        // Calibrate outside the lock (it is slow); racing duplicates are
        // harmless — last one in wins the cache slot.
        let models = Arc::new(CostModels::calibrate(profile));
        let mut cache = CACHE.lock();
        if let Some((_, existing)) = cache.iter().find(|(p, _)| p == profile) {
            return Arc::clone(existing);
        }
        cache.push((profile.clone(), Arc::clone(&models)));
        models
    }

    /// The profile these models were calibrated for.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Run the full selection for `g` against a device with `free_bytes`
    /// of usable memory (batch sizing and blocking depend on it).
    ///
    /// `johnson_probe` must sample the requested batches on a scratch
    /// device; it is injected so callers control the sampling cost.
    pub fn select(&self, g: &CsrGraph, cfg: &SelectorConfig, johnson: &JohnsonModel) -> Selection {
        self.select_masked(g, cfg, johnson, &[])
            .expect("an empty mask always leaves a candidate")
    }

    /// [`CostModels::select`] with algorithms in `masked` excluded from
    /// the candidate set — the re-entry point for the supervision
    /// fallback chain, which masks an algorithm after it fails
    /// unrecoverably.
    ///
    /// When the density filter's own candidates are all masked, the
    /// remaining unmasked algorithms are ranked instead (a failed run is
    /// worse than an off-class one). Returns `None` only when every
    /// algorithm is masked.
    pub fn select_masked(
        &self,
        g: &CsrGraph,
        cfg: &SelectorConfig,
        johnson: &JohnsonModel,
        masked: &[Algorithm],
    ) -> Option<Selection> {
        let class = cfg.classify(g);
        let preferred: &[Algorithm] = match class {
            DensityClass::Dense => &[Algorithm::Johnson, Algorithm::FloydWarshall],
            DensityClass::VerySparse => &[Algorithm::Johnson, Algorithm::Boundary],
            DensityClass::Sparse => &[Algorithm::Johnson],
        };
        let parts_of = |a: Algorithm| -> EstimateParts {
            match a {
                Algorithm::Johnson => johnson.estimate_parts(self, g),
                Algorithm::FloydWarshall => self.fw.estimate_parts(self, g),
                Algorithm::Boundary => self.boundary.estimate_parts(self, g),
            }
        };
        const ALL: [Algorithm; 3] = [
            Algorithm::Johnson,
            Algorithm::FloydWarshall,
            Algorithm::Boundary,
        ];
        let mut ranked: Vec<Algorithm> = preferred
            .iter()
            .copied()
            .filter(|a| !masked.contains(a))
            .collect();
        if ranked.is_empty() {
            ranked = ALL.into_iter().filter(|a| !masked.contains(a)).collect();
        }
        // Every unmasked algorithm is costed — even density-filtered
        // ones, so calibration artifacts always carry a prediction to
        // judge — but only `ranked` survivors are eligible to win.
        let candidates: Vec<Candidate> = ALL
            .into_iter()
            .map(|a| {
                if masked.contains(&a) {
                    return Candidate {
                        algorithm: a,
                        estimate: None,
                        seed_estimate: None,
                        parts: None,
                        filter_reason: Some("masked after an unrecoverable failure".into()),
                    };
                }
                let parts = parts_of(a);
                let refitted = parts.refitted_seconds(&self.refit);
                if !refitted.is_finite() {
                    // The boundary model's "no feasible working set"
                    // regime: there is no finite prediction to record.
                    return Candidate {
                        algorithm: a,
                        estimate: None,
                        seed_estimate: None,
                        parts: None,
                        filter_reason: Some(
                            "infeasible on this device (no feasible working set)".into(),
                        ),
                    };
                }
                let filter_reason = (!ranked.contains(&a))
                    .then(|| format!("excluded by the density filter ({class:?} class)"));
                Candidate {
                    algorithm: a,
                    estimate: Some(refitted),
                    seed_estimate: Some(parts.seed_seconds()),
                    parts: Some(parts),
                    filter_reason,
                }
            })
            .collect();
        let algorithm = candidates
            .iter()
            .filter(|c| c.eligible())
            .filter_map(|c| c.estimate.map(|e| (c.algorithm, e)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(a, _)| a)?;
        Some(Selection {
            algorithm,
            candidates,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};

    #[test]
    fn scaled_thresholds_track_scale() {
        let cfg = SelectorConfig::scaled(16);
        assert!((cfg.density_hi - 0.16).abs() < 1e-12);
        assert!((cfg.density_lo - 0.0016).abs() < 1e-12);
    }

    #[test]
    fn calibration_cache_returns_same_instance() {
        let profile = apsp_gpu_sim::DeviceProfile::v100().with_memory_bytes(123 << 20);
        let a = CostModels::calibrate_cached(&profile);
        let b = CostModels::calibrate_cached(&profile);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // A structurally different profile calibrates separately.
        let other = profile.with_memory_bytes(124 << 20);
        let c = CostModels::calibrate_cached(&other);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn masking_reroutes_selection_and_exhausts_to_none() {
        let profile = apsp_gpu_sim::DeviceProfile::v100();
        let models = CostModels::calibrate_cached(&profile);
        let cfg = SelectorConfig::default();
        let g = gnp(100, 0.05, WeightRange::default(), 3); // dense class
        let johnson = JohnsonModel::probe(
            &profile,
            &g,
            &cfg,
            &crate::options::JohnsonOptions::default(),
        )
        .unwrap();
        let full = models.select(&g, &cfg, &johnson);
        assert_eq!(full.class, DensityClass::Dense);
        // Masking the winner reroutes to the other in-class candidate.
        let rerouted = models
            .select_masked(&g, &cfg, &johnson, &[full.algorithm])
            .unwrap();
        assert_ne!(rerouted.algorithm, full.algorithm);
        // Masking the whole dense candidate set falls through to the
        // off-class boundary algorithm rather than giving up.
        let off_class = models
            .select_masked(
                &g,
                &cfg,
                &johnson,
                &[Algorithm::Johnson, Algorithm::FloydWarshall],
            )
            .unwrap();
        assert_eq!(off_class.algorithm, Algorithm::Boundary);
        // Masking everything leaves nothing to run.
        assert!(models
            .select_masked(
                &g,
                &cfg,
                &johnson,
                &[
                    Algorithm::Johnson,
                    Algorithm::FloydWarshall,
                    Algorithm::Boundary
                ],
            )
            .is_none());
    }

    #[test]
    fn every_candidate_carries_estimate_or_filter_reason() {
        let profile = apsp_gpu_sim::DeviceProfile::v100();
        let models = CostModels::calibrate_cached(&profile);
        let cfg = SelectorConfig::default();
        let g = gnp(100, 0.05, WeightRange::default(), 3); // dense class
        let johnson = JohnsonModel::probe(
            &profile,
            &g,
            &cfg,
            &crate::options::JohnsonOptions::default(),
        )
        .unwrap();
        let sel = models.select(&g, &cfg, &johnson);
        assert_eq!(sel.candidates.len(), 3, "no candidate may be dropped");
        for c in &sel.candidates {
            assert!(
                c.estimate.is_some() || c.filter_reason.is_some(),
                "{:?} must have an estimate or a filter reason",
                c.algorithm
            );
            // The estimate, its seed counterpart, and the decomposition
            // travel together.
            assert_eq!(c.estimate.is_some(), c.seed_estimate.is_some());
            assert_eq!(c.estimate.is_some(), c.parts.is_some());
        }
        // Dense class: boundary is density-filtered with a recorded
        // reason, but still costed — artifacts never show a prediction
        // gap for a feasible candidate.
        let boundary = sel
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::Boundary)
            .unwrap();
        assert!(boundary.filter_reason.as_ref().unwrap().contains("density"));
        assert!(boundary.estimate.unwrap().is_finite());
        assert!(!boundary.eligible());
        // Only eligible candidates are ranked.
        assert_eq!(sel.estimates().len(), 2);
        // Masked algorithms record the mask as their reason and are not
        // costed.
        let masked = models
            .select_masked(&g, &cfg, &johnson, &[Algorithm::Johnson])
            .unwrap();
        let j = masked
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::Johnson)
            .unwrap();
        assert!(j.filter_reason.as_ref().unwrap().contains("masked"));
        assert!(j.estimate.is_none());
    }

    #[test]
    fn infeasible_boundary_carries_reason_instead_of_infinity() {
        // A device too small for any boundary working set: the candidate
        // must say so rather than emit a non-finite estimate. The Johnson
        // probe runs on the full-size profile (it needs the graph
        // resident); only the selection itself sees the tiny memory.
        let profile = apsp_gpu_sim::DeviceProfile::v100().with_memory_bytes(10_000);
        let models = CostModels::calibrate_cached(&profile);
        let cfg = SelectorConfig::default();
        let g = apsp_graph::generators::banded(600, 64, 8, 0.8, WeightRange::default(), 9);
        let johnson = JohnsonModel::probe(
            &apsp_gpu_sim::DeviceProfile::v100(),
            &g,
            &cfg,
            &crate::options::JohnsonOptions::default(),
        )
        .unwrap();
        let sel = models.select(&g, &cfg, &johnson);
        let boundary = sel
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::Boundary)
            .unwrap();
        assert!(boundary.estimate.is_none());
        assert!(
            boundary
                .filter_reason
                .as_deref()
                .unwrap()
                .contains("infeasible"),
            "{:?}",
            boundary.filter_reason
        );
        // Nothing in the ranked list may carry a non-finite estimate.
        for (_, e) in sel.estimates() {
            assert!(e.is_finite());
        }
    }

    #[test]
    fn refit_scales_compute_and_can_flip_the_winner() {
        use crate::calibration::{CoeffKey, RefitCoefficients};
        let profile = apsp_gpu_sim::DeviceProfile::v100();
        let models = CostModels::calibrate_cached(&profile);
        let cfg = SelectorConfig::default();
        let g = gnp(100, 0.05, WeightRange::default(), 3); // dense: Johnson vs FW
        let johnson = JohnsonModel::probe(
            &profile,
            &g,
            &cfg,
            &crate::options::JohnsonOptions::default(),
        )
        .unwrap();
        let base = models.select(&g, &cfg, &johnson);
        let fw_base = base
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::FloydWarshall)
            .unwrap();
        // With identity refit the two estimates agree.
        assert_eq!(fw_base.estimate, fw_base.seed_estimate);

        // Evidence that FW compute runs 1000× the seed prediction flips
        // any dense selection away from FW.
        let mut refit = RefitCoefficients::identity();
        let parts = fw_base.parts.unwrap();
        refit.observe(
            CoeffKey::FwT0,
            parts.compute_seed,
            parts.transfer,
            parts.compute_seed * 1000.0 + parts.transfer,
        );
        let refitted = models.with_refit(refit).select(&g, &cfg, &johnson);
        let fw = refitted
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::FloydWarshall)
            .unwrap();
        assert!(fw.estimate.unwrap() > fw.seed_estimate.unwrap() * 100.0);
        // Seed estimates are refit-independent.
        assert_eq!(fw.seed_estimate, fw_base.seed_estimate);
        assert_ne!(refitted.algorithm, Algorithm::FloydWarshall);
    }

    #[test]
    fn classification_respects_custom_thresholds() {
        let cfg = SelectorConfig::default();
        let dense = gnp(100, 0.05, WeightRange::default(), 1);
        assert_eq!(cfg.classify(&dense), DensityClass::Dense);
        let grid = grid_2d(60, 60, GridOptions::default(), WeightRange::default(), 1);
        assert_eq!(cfg.classify(&grid), DensityClass::Sparse);
        // Raising the lower threshold reclassifies the grid.
        let cfg2 = SelectorConfig {
            density_lo: 0.5,
            ..cfg
        };
        assert_eq!(cfg2.classify(&grid), DensityClass::VerySparse);
    }
}
