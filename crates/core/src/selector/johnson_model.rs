//! Cost model for out-of-core Johnson's: batch sampling.
//!
//! "To estimate the execution time of a graph, we randomly choose `k`
//! batches to run and obtain the execution time as `T`. Assuming that the
//! number of batches is `n_b`, the cost of computation would be
//! `T · n_b / k`." (The paper sets `k = 5` and observes per-batch
//! standard deviations of 1.67–13.4% of the mean.)

use crate::calibration::{CoeffKey, EstimateParts};
use crate::error::ApspError;
use crate::ooc_johnson::batch_size;
use crate::options::{DynamicParallelism, JohnsonOptions};
use crate::selector::{CostModels, SelectorConfig};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::{CsrGraph, VertexId};
use apsp_kernels::mssp::{mssp_kernel, MsspOptions};
use apsp_kernels::DeviceMatrix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A per-graph Johnson probe: measured sample batches plus the totals
/// needed to extrapolate.
#[derive(Debug, Clone, Copy)]
pub struct JohnsonModel {
    /// Batch size the real run would use.
    pub batch: usize,
    /// Total batches the real run would need (`n_b`).
    pub total_batches: usize,
    /// Batches actually sampled.
    pub sampled: usize,
    /// Simulated kernel seconds across the sampled batches.
    pub sampled_seconds: f64,
    /// Sample standard deviation of per-batch seconds, as a fraction of
    /// the mean (the paper's stability statistic).
    pub rel_std_dev: f64,
}

impl JohnsonModel {
    /// Probe `g` on a scratch device with the given profile: compute
    /// `bat`, run `cfg.johnson_sample_batches` random batches, and record
    /// the kernel time.
    pub fn probe(
        profile: &DeviceProfile,
        g: &CsrGraph,
        cfg: &SelectorConfig,
        opts: &JohnsonOptions,
    ) -> Result<Self, ApspError> {
        let mut dev = GpuDevice::new(profile.clone());
        let n = g.num_vertices();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }
        let bat = batch_size(&dev, g, opts.queue_words_per_edge)?;
        let total_batches = n.div_ceil(bat);
        let sampled = cfg.johnson_sample_batches.clamp(1, total_batches);
        let delta = opts
            .delta
            .unwrap_or_else(|| apsp_kernels::nearfar::default_delta(g));
        let dynamic = match opts.dynamic_parallelism {
            DynamicParallelism::On => true,
            DynamicParallelism::Off => false,
            DynamicParallelism::Auto => (bat as u32) < profile.saturating_blocks,
        };
        let mssp_opts = MsspOptions {
            delta,
            dynamic_parallelism: dynamic,
            heavy_degree_threshold: opts.heavy_degree_threshold,
            exec: opts.exec,
        };

        // Randomly choose which batches to sample.
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut batch_ids: Vec<usize> = (0..total_batches).collect();
        batch_ids.shuffle(&mut rng);
        batch_ids.truncate(sampled);

        let stream = dev.default_stream();
        let graph_hold: apsp_gpu_sim::DeviceBuffer<u8> = dev.alloc(g.storage_bytes())?;
        let mut per_batch = Vec::with_capacity(sampled);
        for &bi in &batch_ids {
            let lo = bi * bat;
            let hi = ((bi + 1) * bat).min(n);
            let sources: Vec<VertexId> = (lo as VertexId..hi as VertexId).collect();
            let mut panel = DeviceMatrix::alloc_inf(&dev, sources.len(), n)?;
            let before = dev.synchronize().seconds();
            mssp_kernel(&mut dev, stream, g, &sources, &mut panel, mssp_opts);
            let after = dev.synchronize().seconds();
            per_batch.push(after - before);
        }
        drop(graph_hold);

        let total: f64 = per_batch.iter().sum();
        let mean = total / sampled as f64;
        let var = per_batch
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / sampled as f64;
        let rel_std_dev = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Ok(JohnsonModel {
            batch: bat,
            total_batches,
            sampled,
            sampled_seconds: total,
            rel_std_dev,
        })
    }

    /// Estimated compute seconds: `T · n_b / k`.
    pub fn compute_seconds(&self) -> f64 {
        self.sampled_seconds * self.total_batches as f64 / self.sampled as f64
    }

    /// Estimated transfer seconds: the paper's `W · n² / TH`.
    pub fn transfer_seconds(&self, models: &CostModels, g: &CsrGraph) -> f64 {
        let n = g.num_vertices() as f64;
        let w = std::mem::size_of::<apsp_graph::Dist>() as f64;
        w * n * n / models.throughput
    }

    /// The estimate's seed-constant decomposition (compute anchored on
    /// [`CoeffKey::JohnsonC`], plus the transfer term).
    pub fn estimate_parts(&self, models: &CostModels, g: &CsrGraph) -> EstimateParts {
        EstimateParts {
            key: CoeffKey::JohnsonC,
            compute_seed: self.compute_seconds(),
            transfer: self.transfer_seconds(models, g),
        }
    }

    /// Total estimate, with `models`' refit correction applied to the
    /// compute term.
    pub fn estimate_seconds(&self, models: &CostModels, g: &CsrGraph) -> f64 {
        self.estimate_parts(models, g)
            .refitted_seconds(&models.refit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooc_johnson::ooc_johnson;
    use crate::tile_store::{StorageBackend, TileStore};
    use apsp_graph::generators::{gnp, WeightRange};

    fn probe_setup(n: usize, p: f64, mem: u64) -> (CsrGraph, DeviceProfile, SelectorConfig) {
        let g = gnp(n, p, WeightRange::default(), 77);
        let profile = DeviceProfile::v100().with_memory_bytes(mem);
        (g, profile, SelectorConfig::default())
    }

    #[test]
    fn probe_reports_batch_structure() {
        let (g, profile, cfg) = probe_setup(200, 0.04, 512 << 10);
        let m = JohnsonModel::probe(&profile, &g, &cfg, &JohnsonOptions::default()).unwrap();
        assert!(m.batch >= 1);
        assert_eq!(m.total_batches, 200usize.div_ceil(m.batch));
        assert!(m.sampled <= 5);
        assert!(m.sampled_seconds > 0.0);
    }

    #[test]
    fn per_batch_times_are_stable() {
        // The paper's premise: sampled batches predict the rest. Random
        // uniform graphs should sit well inside the 13.4% band.
        let (g, profile, cfg) = probe_setup(400, 0.03, 1 << 20);
        let m = JohnsonModel::probe(&profile, &g, &cfg, &JohnsonOptions::default()).unwrap();
        assert!(m.sampled >= 2, "need multiple batches to measure spread");
        assert!(m.rel_std_dev < 0.25, "rel std dev = {}", m.rel_std_dev);
    }

    #[test]
    fn estimate_tracks_actual_run() {
        let (g, profile, cfg) = probe_setup(250, 0.04, 512 << 10);
        let models = CostModels::calibrate(&profile);
        let opts = JohnsonOptions::default();
        let m = JohnsonModel::probe(&profile, &g, &cfg, &opts).unwrap();
        let mut dev = GpuDevice::new(profile);
        let mut store = TileStore::new(250, &StorageBackend::Memory).unwrap();
        let stats = ooc_johnson(&mut dev, &g, &mut store, &opts).unwrap();
        let predicted = m.estimate_seconds(&models, &g);
        let ratio = predicted / stats.sim_seconds;
        assert!(
            (0.3..3.0).contains(&ratio),
            "predicted {predicted}, actual {}",
            stats.sim_seconds
        );
    }

    #[test]
    fn empty_graph_is_invalid() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let err = JohnsonModel::probe(
            &DeviceProfile::v100(),
            &g,
            &SelectorConfig::default(),
            &JohnsonOptions::default(),
        );
        assert!(err.is_err());
    }
}
