//! Cost model for the out-of-core blocked Floyd-Warshall.
//!
//! "For a randomly generated graph with `n₀` vertices, we can observe the
//! computation time `T₀`. Then, for any given graph with `n` vertices, we
//! estimate the cost of computation to be `T₀ · (n/n₀)³`." Transfers
//! follow the paper's `n_d · W · (3b² + n²) / TH` expression.

use crate::calibration::{CoeffKey, EstimateParts};
use crate::ooc_fw::{init_store_from_graph, max_block_side, ooc_floyd_warshall};
use crate::options::FwOptions;
use crate::selector::CostModels;
use crate::tile_store::{StorageBackend, TileStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, WeightRange};
use apsp_graph::CsrGraph;

/// Calibrated Floyd-Warshall model.
#[derive(Debug, Clone, Copy)]
pub struct FwModel {
    /// Training graph size.
    pub n0: usize,
    /// Measured compute-only seconds (kernel time) on the training graph.
    pub t0_compute: f64,
}

/// Training size: large enough that kernel time dominates launch
/// overhead, small enough to calibrate in well under a second of host
/// time.
const TRAIN_N: usize = 320;

impl FwModel {
    /// Calibrate by running the out-of-core implementation on a random
    /// graph, exactly as the paper does. The scratch device is given a
    /// memory cap that forces a few-way blocking so the measured constant
    /// reflects the out-of-core kernel schedule.
    pub fn calibrate(profile: &DeviceProfile) -> Self {
        // Scratch device: capacity chosen to force ~2-way blocking at the
        // training size regardless of the target device's capacity (the
        // constant being measured is compute throughput, not memory).
        let cap = ((TRAIN_N / 2) * (TRAIN_N / 2) * 4 * 6) as u64;
        let mut dev = GpuDevice::new(profile.with_memory_bytes(cap));
        let g = gnp(TRAIN_N, 0.05, WeightRange::default(), 0xF0);
        let mut store =
            TileStore::new(TRAIN_N, &StorageBackend::Memory).expect("memory store cannot fail");
        init_store_from_graph(&g, &mut store).expect("memory store cannot fail");
        ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default())
            .expect("training run must fit by construction");
        let report = dev.report();
        FwModel {
            n0: TRAIN_N,
            t0_compute: report.total_kernel_seconds(),
        }
    }

    /// Estimated compute seconds for an `n`-vertex graph.
    pub fn compute_seconds(&self, n: usize) -> f64 {
        let r = n as f64 / self.n0 as f64;
        self.t0_compute * r * r * r
    }

    /// Estimated transfer seconds: the paper's
    /// `n_d · W · (3b² + n²) / TH`.
    pub fn transfer_seconds(&self, models: &CostModels, n: usize) -> f64 {
        let w = std::mem::size_of::<apsp_graph::Dist>() as f64;
        let dev = GpuDevice::new(models.profile().clone());
        let b = max_block_side(&dev, 5).max(1).min(n.max(1));
        let n_d = n.div_ceil(b) as f64;
        let (bf, nf) = (b as f64, n as f64);
        n_d * w * (3.0 * bf * bf + nf * nf) / models.throughput
    }

    /// The estimate's seed-constant decomposition (compute anchored on
    /// [`CoeffKey::FwT0`], plus the transfer term).
    pub fn estimate_parts(&self, models: &CostModels, g: &CsrGraph) -> EstimateParts {
        let n = g.num_vertices();
        EstimateParts {
            key: CoeffKey::FwT0,
            compute_seed: self.compute_seconds(n),
            transfer: self.transfer_seconds(models, n),
        }
    }

    /// Total estimate, with `models`' refit correction applied to the
    /// compute term.
    pub fn estimate_seconds(&self, models: &CostModels, g: &CsrGraph) -> f64 {
        self.estimate_parts(models, g)
            .refitted_seconds(&models.refit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_constant() {
        let m = FwModel::calibrate(&DeviceProfile::v100());
        assert!(m.t0_compute > 0.0);
        assert_eq!(m.n0, TRAIN_N);
    }

    #[test]
    fn estimate_scales_cubically() {
        let m = FwModel::calibrate(&DeviceProfile::v100());
        let r = m.compute_seconds(2 * TRAIN_N) / m.compute_seconds(TRAIN_N);
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_tracks_actual_run() {
        // The model must predict an actual out-of-core run within a small
        // factor (the paper's Fig 6 quality bar).
        let profile = DeviceProfile::v100().with_memory_bytes(400 << 10);
        let models = CostModels::calibrate(&profile);
        let n = 200;
        let g = gnp(n, 0.05, WeightRange::default(), 0xAB);
        let mut dev = GpuDevice::new(profile);
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        init_store_from_graph(&g, &mut store).unwrap();
        let stats = ooc_floyd_warshall(&mut dev, &mut store, &FwOptions::default()).unwrap();
        let predicted = models.fw.estimate_seconds(&models, &g);
        let actual = stats.sim_seconds;
        let ratio = predicted / actual;
        assert!(
            (0.25..4.0).contains(&ratio),
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn k80_transfers_estimated_slower_than_v100() {
        // At calibration size both devices are launch/occupancy bound, so
        // the compute constants are not strictly ordered; the transfer
        // term, driven by the measured PCIe rates (7.23 vs 11.75 GB/s),
        // must be.
        let mv = CostModels::calibrate(&DeviceProfile::v100());
        let mk = CostModels::calibrate(&DeviceProfile::k80());
        assert!(mk.throughput < mv.throughput);
        let n = 10_000;
        assert!(mk.fw.transfer_seconds(&mk, n) > mv.fw.transfer_seconds(&mv, n));
    }
}
