//! Fleet scheduling: the selector extended from "which algorithm" to
//! "which (algorithm, shard) pair runs on which device".
//!
//! The multi-device boundary executor (`core::multi_gpu`) partitions the
//! graph into `k` components and must place each component's work on one
//! of several — possibly heterogeneous — simulated devices. Two phases
//! need placement decisions:
//!
//! * **dist₂** (per-component Floyd-Warshall): placed once up front by
//!   longest-processing-time (LPT) greedy scheduling over the component
//!   cost model, normalized by each profile's compute throughput.
//! * **dist₄** (per-component row-panel multiplies): re-planned at the
//!   phase boundary with each device's *actual* elapsed time as its
//!   initial load — the deterministic equivalent of tile-panel work
//!   stealing. A device that finished dist₂ early starts dist₄ with a
//!   smaller load and therefore "steals" panels a slower device would
//!   otherwise own.
//!
//! Every decision is a pure function of the layout and the profiles, so
//! a run is exactly reproducible — and because the panel math itself is
//! device-independent, any placement yields bit-identical output.

use apsp_gpu_sim::DeviceProfile;
use apsp_partition::PartitionLayout;

/// Operation-count cost model for one partition layout: how much work
/// each component contributes to the dist₂ and dist₄ phases. Units are
/// abstract "ops" — only ratios matter, the scheduler divides by each
/// device's throughput.
#[derive(Debug, Clone)]
pub struct ShardCosts {
    /// Per-component dist₂ cost: `sz³` (blocked FW on the diagonal
    /// block).
    pub dist2_ops: Vec<f64>,
    /// Per-component dist₄ cost: the two chained min-plus products
    /// summed over all `k` column blocks,
    /// `sz_i · nb_i · NB + sz_i · Σ_j nb_j · sz_j`.
    pub dist4_ops: Vec<f64>,
}

impl ShardCosts {
    /// Cost model for `layout`.
    pub fn of(layout: &PartitionLayout) -> ShardCosts {
        let k = layout.num_components();
        let nb_total = layout.total_boundary() as f64;
        let cross: f64 = (0..k)
            .map(|j| (layout.boundary_count(j) * layout.component_size(j)) as f64)
            .sum();
        let mut dist2_ops = Vec::with_capacity(k);
        let mut dist4_ops = Vec::with_capacity(k);
        for i in 0..k {
            let sz = layout.component_size(i) as f64;
            let nb = layout.boundary_count(i) as f64;
            dist2_ops.push(sz * sz * sz);
            dist4_ops.push(sz * nb * nb_total + sz * cross);
        }
        ShardCosts {
            dist2_ops,
            dist4_ops,
        }
    }
}

/// A device's relative speed for placement purposes: its peak compute
/// throughput. (All boundary-phase kernels are compute-shaped; transfer
/// terms are near-uniform across the fleet and cancel out of the
/// ranking.)
pub fn device_speed(profile: &DeviceProfile) -> f64 {
    profile.compute_ops_per_sec
}

/// Deterministic LPT greedy list scheduling: tasks in descending cost
/// order (ties by lower index) are each assigned to the device with the
/// earliest finish time `load_d + cost / speed_d` (ties by lower device
/// index). `initial_load` seeds each device's clock — zeros for an
/// up-front placement, actual elapsed seconds for a phase-boundary
/// re-plan. Returns the owner of every task.
pub fn place_lpt(costs: &[f64], speeds: &[f64], initial_load: &[f64]) -> Vec<usize> {
    assert!(!speeds.is_empty(), "placement needs at least one device");
    assert_eq!(speeds.len(), initial_load.len());
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut load = initial_load.to_vec();
    let mut owner = vec![0usize; costs.len()];
    for t in order {
        let mut best = 0usize;
        let mut best_finish = f64::INFINITY;
        for (d, (&l, &s)) in load.iter().zip(speeds.iter()).enumerate() {
            let finish = l + costs[t] / s.max(f64::MIN_POSITIVE);
            if finish < best_finish {
                best_finish = finish;
                best = d;
            }
        }
        owner[t] = best;
        load[best] += costs[t] / speeds[best].max(f64::MIN_POSITIVE);
    }
    owner
}

/// The device that should solve the serial dist₃ phase: the fastest
/// profile in the fleet (ties by lower index), since the boundary-graph
/// FW cannot be sharded and every other device waits on it.
pub fn dist3_solver(profiles: &[&DeviceProfile]) -> usize {
    let mut best = 0usize;
    for (d, p) in profiles.iter().enumerate() {
        if device_speed(p) > device_speed(profiles[best]) {
            best = d;
        }
    }
    best
}

/// The up-front fleet plan for one multi-device boundary run: dist₂
/// ownership from the cost model and the dist₃ solver. (The dist₄ plan
/// is made later, at the phase boundary, from realized loads — see
/// [`place_lpt`].)
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Component → device for the dist₂ phase.
    pub dist2_owner: Vec<usize>,
    /// Device index that solves dist₃.
    pub dist3_solver: usize,
    /// The cost model the plan was made from, kept for the dist₄
    /// re-plan.
    pub costs: ShardCosts,
}

impl FleetPlan {
    /// Plan `layout`'s components across `profiles`.
    pub fn new(layout: &PartitionLayout, profiles: &[&DeviceProfile]) -> FleetPlan {
        let costs = ShardCosts::of(layout);
        let speeds: Vec<f64> = profiles.iter().map(|p| device_speed(p)).collect();
        let zeros = vec![0.0; speeds.len()];
        FleetPlan {
            dist2_owner: place_lpt(&costs.dist2_ops, &speeds, &zeros),
            dist3_solver: dist3_solver(profiles),
            costs,
        }
    }

    /// Re-plan the dist₄ panels given each device's elapsed seconds at
    /// the phase boundary — the work-stealing step.
    pub fn dist4_owners(&self, profiles: &[&DeviceProfile], elapsed: &[f64]) -> Vec<usize> {
        let speeds: Vec<f64> = profiles.iter().map(|p| device_speed(p)).collect();
        place_lpt(&self.costs.dist4_ops, &speeds, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};
    use apsp_partition::{kway_partition, PartitionConfig};

    fn layout(k: usize) -> PartitionLayout {
        let g = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 5);
        PartitionLayout::new(&g, &kway_partition(&g, k, &PartitionConfig::default()))
    }

    #[test]
    fn lpt_beats_round_robin_on_heterogeneous_fleets() {
        // Two devices, one 4× faster: LPT must land at most the
        // round-robin makespan (it provably does better or equal).
        let costs = [8.0, 8.0, 8.0, 8.0, 2.0, 2.0, 2.0, 2.0];
        let speeds = [4.0, 1.0];
        let zeros = [0.0, 0.0];
        let owner = place_lpt(&costs, &speeds, &zeros);
        let makespan = |owner: &[usize]| {
            let mut load = [0.0f64; 2];
            for (t, &d) in owner.iter().enumerate() {
                load[d] += costs[t] / speeds[d];
            }
            load[0].max(load[1])
        };
        let rr: Vec<usize> = (0..costs.len()).map(|t| t % 2).collect();
        assert!(makespan(&owner) <= makespan(&rr));
        // The fast device must carry more raw work than the slow one.
        let fast_work: f64 = owner
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| costs[t])
            .sum();
        assert!(fast_work > costs.iter().sum::<f64>() / 2.0);
    }

    #[test]
    fn placement_is_deterministic_and_tie_breaks_low_index() {
        let costs = [1.0, 1.0, 1.0];
        let speeds = [1.0, 1.0, 1.0];
        let zeros = [0.0, 0.0, 0.0];
        let a = place_lpt(&costs, &speeds, &zeros);
        let b = place_lpt(&costs, &speeds, &zeros);
        assert_eq!(a, b);
        // Equal costs, equal speeds: tasks spread one per device in
        // index order.
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn initial_load_steers_work_away_from_busy_devices() {
        // Device 0 is still busy from the previous phase; the single
        // task must be stolen by the idle device 1.
        let owner = place_lpt(&[5.0], &[1.0, 1.0], &[100.0, 0.0]);
        assert_eq!(owner, vec![1]);
    }

    #[test]
    fn dist3_goes_to_the_fastest_profile() {
        let v100 = DeviceProfile::v100();
        let k80 = DeviceProfile::k80();
        assert_eq!(dist3_solver(&[&k80, &v100, &k80]), 1);
        // Homogeneous fleet: lowest index.
        assert_eq!(dist3_solver(&[&v100, &v100]), 0);
    }

    #[test]
    fn fleet_plan_covers_every_component() {
        let layout = layout(6);
        let v100 = DeviceProfile::v100();
        let k80 = DeviceProfile::k80();
        let plan = FleetPlan::new(&layout, &[&v100, &k80]);
        assert_eq!(plan.dist2_owner.len(), layout.num_components());
        assert!(plan.dist2_owner.iter().all(|&d| d < 2));
        assert_eq!(plan.costs.dist2_ops.len(), layout.num_components());
        // Re-planning with device 0 very busy shifts panels to device 1.
        let hot = plan.dist4_owners(&[&v100, &k80], &[1e9, 0.0]);
        assert!(hot.iter().all(|&d| d == 1));
    }
}
