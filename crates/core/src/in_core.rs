//! In-core GPU APSP — the prior-work baseline the paper scales past.
//!
//! Harish & Narayanan [16] and the blocked-FW GPU line [20], [35] all
//! assume the whole n×n matrix fits in device memory; the paper's point
//! of departure is that this caps n at ~√(device bytes / 4) (≈ 65K on a
//! 16 GB V100 — before working space). This module implements that
//! baseline faithfully, including its hard size wall, so the crossover
//! can be demonstrated (`repro ablation-incore`).

use crate::error::ApspError;
use apsp_cpu::DistMatrix;
use apsp_gpu_sim::{GpuDevice, Pinning};
use apsp_graph::{CsrGraph, Dist, VertexId, INF};
use apsp_kernels::fw_block::fw_device;
use apsp_kernels::DeviceMatrix;

/// Statistics from an in-core run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InCoreStats {
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Device bytes the matrix occupied.
    pub matrix_bytes: u64,
}

/// Largest `n` whose full n×n distance matrix fits the device right now.
pub fn max_in_core_vertices(dev: &GpuDevice) -> usize {
    ((dev.free_memory() / std::mem::size_of::<Dist>() as u64) as f64)
        .sqrt()
        .floor() as usize
}

/// Whole-matrix blocked Floyd-Warshall on the device. Fails with
/// [`ApspError::DeviceTooSmall`] when the matrix does not fit — the wall
/// the out-of-core implementations exist to remove.
pub fn in_core_fw(
    dev: &mut GpuDevice,
    g: &CsrGraph,
) -> Result<(DistMatrix, InCoreStats), ApspError> {
    let n = g.num_vertices();
    let bytes = (n * n * std::mem::size_of::<Dist>()) as u64;
    if bytes > dev.free_memory() {
        return Err(ApspError::DeviceTooSmall {
            algorithm: "in-core Floyd-Warshall",
            detail: format!(
                "matrix needs {bytes} bytes, device has {} free — use an out-of-core implementation",
                dev.free_memory()
            ),
        });
    }
    let start = dev.elapsed().seconds();
    let s = dev.default_stream();
    let host = DistMatrix::from_graph(g);
    let mut m = DeviceMatrix::alloc_inf(dev, n, n)?;
    if n > 0 {
        m.upload_rows(dev, s, 0, host.as_slice(), Pinning::Pinned);
        fw_device(dev, s, &mut m);
    }
    let mut out = vec![INF as Dist; n * n];
    if n > 0 {
        m.download_rows(dev, s, 0..n, &mut out, Pinning::Pinned);
    }
    let sim_seconds = dev.synchronize().seconds() - start;
    Ok((
        DistMatrix::from_raw(n, out),
        InCoreStats {
            sim_seconds,
            matrix_bytes: bytes,
        },
    ))
}

/// Like [`in_core_fw`] but sourced from/into raw adjacency conventions —
/// convenience for benchmarks comparing against the out-of-core paths.
pub fn in_core_fw_row(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    row: VertexId,
) -> Result<Vec<Dist>, ApspError> {
    let (m, _) = in_core_fw(dev, g)?;
    Ok(m.row(row as usize).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, WeightRange};

    #[test]
    fn matches_reference_when_it_fits() {
        let g = gnp(90, 0.06, WeightRange::default(), 17);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let (m, stats) = in_core_fw(&mut dev, &g).unwrap();
        assert_eq!(m, bgl_plus_apsp(&g));
        assert_eq!(stats.matrix_bytes, 90 * 90 * 4);
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn hits_the_wall_exactly_where_advertised() {
        let dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        let cap = max_in_core_vertices(&dev);
        assert_eq!(cap, 512); // √(1 MiB / 4 B)
        let ok = gnp(cap, 0.01, WeightRange::default(), 1);
        let too_big = gnp(cap + 1, 0.01, WeightRange::default(), 1);
        let mut dev = dev;
        assert!(in_core_fw(&mut dev, &ok).is_ok());
        let err = in_core_fw(&mut dev, &too_big).unwrap_err();
        assert!(matches!(err, ApspError::DeviceTooSmall { .. }));
    }

    #[test]
    fn single_row_helper() {
        let g = gnp(60, 0.1, WeightRange::default(), 5);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let row = in_core_fw_row(&mut dev, &g, 3).unwrap();
        assert_eq!(row, apsp_cpu::dijkstra_sssp(&g, 3));
    }

    #[test]
    fn empty_graph() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let (m, _) = in_core_fw(&mut dev, &g).unwrap();
        assert_eq!(m.n(), 0);
    }
}
