//! Host-side out-of-core result storage.
//!
//! The output distance matrix is orders of magnitude larger than the
//! input; for the paper's Table III graphs it fits in host RAM, for the
//! Table IV graphs it does not. [`TileStore`] abstracts both regimes:
//! the `Memory` backend holds one flat `n × n` buffer, the `Disk` backend
//! spills to one or more files addressed with positional I/O — the same
//! row-major layout either way. Spill files split at a configurable
//! byte threshold ([`DEFAULT_SHARD_BYTES`], 1 GiB, by default; see
//! [`StorageBackend::DiskSharded`]), row-aligned so a single row never
//! straddles two files, which keeps the hot row/panel paths one
//! `pread`/`pwrite` each while letting paper-scale matrices escape the
//! single-file sequential-I/O bottleneck.

use crate::error::{CorruptionMark, SdcMark};
use crate::options::SdcGuardMode;
use crate::supervisor::Supervisor;
use apsp_cpu::parallel::{par_bands_weighted, ExecBackend, SharedSliceMut};
use apsp_graph::{Dist, INF};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// `ENOSPC` — the errno a full filesystem raises on write.
const ENOSPC_ERRNO: i32 = 28;

/// Magic tag opening every [`TileStore::persist`]ed file.
const PERSIST_MAGIC: u64 = u64::from_le_bytes(*b"APSPTILE");

/// Persisted-file header: the magic tag plus the matrix dimension, both
/// little-endian `u64`. [`TileStore::open`] validates the recorded
/// geometry against the requested one — a wrong-dimension file is
/// rejected even when its byte length happens to match.
const PERSIST_HEADER_BYTES: u64 = 16;

/// Magic tag opening the optional per-panel checksum footer
/// [`TileStore::persist`] appends after the payload. [`TileStore::open`]
/// accepts files with or without the footer (pre-footer persists stay
/// readable); when present, each panel is verified against its recorded
/// checksum on the first read that touches it.
const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"APSPSUMS");

/// Footer prelude: the footer magic plus the panel count, both
/// little-endian `u64`, followed by one `u64` checksum per panel.
const FOOTER_HEADER_BYTES: u64 = 16;

/// Rows per checksum panel — for the persisted footer and for panel
/// attribution in [`crate::ApspError::SilentCorruption`] (`panel` =
/// `row / SDC_PANEL_ROWS`). Matches the checkpoint layer's default
/// panel geometry so the two layers report comparable coordinates.
pub const SDC_PANEL_ROWS: usize = 64;

/// Spill-file split threshold for [`StorageBackend::Disk`]: shards roll
/// over at 1 GiB, the split the reference `diskMatrix` implementations
/// use. Row-aligned, so the effective shard size is the largest multiple
/// of the row width at or under this (one full row minimum).
pub const DEFAULT_SHARD_BYTES: u64 = 1 << 30;

/// Where the result matrix lives.
#[derive(Debug, Clone)]
pub enum StorageBackend {
    /// Host RAM (Table III regime).
    Memory,
    /// Files inside this directory (Table IV regime). The directory is
    /// created if missing; the files are removed when the store drops.
    /// Spills split across multiple files at [`DEFAULT_SHARD_BYTES`].
    Disk(PathBuf),
    /// [`StorageBackend::Disk`] with an explicit spill-file split
    /// threshold in bytes (row-aligned, minimum one row per file).
    DiskSharded {
        /// Spill directory (created if missing).
        dir: PathBuf,
        /// Bytes per spill file before rolling over to the next shard.
        shard_bytes: u64,
    },
}

/// One injectable disk-I/O fault (see [`DiskFaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// A positional write persists only the first half of its bytes,
    /// then fails with `ErrorKind::WriteZero` — the dangerous case where
    /// the store is already partially mutated when the error surfaces.
    ShortWrite,
    /// A positional read fills only the first half of its buffer, then
    /// fails with `ErrorKind::UnexpectedEof`.
    ShortRead,
    /// A positional write fails up front with the OS `ENOSPC` error
    /// (filesystem full); nothing is written.
    Enospc,
    /// The operation succeeds but stalls for this many microseconds
    /// first — a degraded spindle/network mount, not a failure.
    LatencyMicros(u64),
    /// The operation succeeds but a *simulated* hang of this many
    /// microseconds is charged to the attached [`Supervisor`]'s
    /// disk-stall clock (see [`TileStore::set_supervision`]) — a disk
    /// that goes slow instead of failing. Unlike
    /// [`DiskFault::LatencyMicros`] no host thread actually sleeps, so
    /// hangs of simulated minutes stay test-fast and deterministic;
    /// without a supervisor attached the fault is unobservable by
    /// design.
    HangMicros(u64),
}

/// A deterministic schedule of disk faults, addressed by positional-I/O
/// ordinal: the store counts every positional write and read it issues
/// (a block write of `r` rows is `r` write ops) and fires the fault
/// whose ordinal matches. Ordinals are 0-based from the moment the plan
/// is armed. Plans only affect `Disk`-backed stores; arming one on a
/// memory store is a no-op by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// `(write-op ordinal, fault)` pairs. `ShortRead` entries here are
    /// ignored (wrong direction); keep entries direction-appropriate.
    pub write_faults: Vec<(u64, DiskFault)>,
    /// `(read-op ordinal, fault)` pairs. `ShortWrite`/`Enospc` entries
    /// here are ignored.
    pub read_faults: Vec<(u64, DiskFault)>,
}

impl DiskFaultPlan {
    fn write_fault_at(&self, op: u64) -> Option<DiskFault> {
        self.write_faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }

    fn read_fault_at(&self, op: u64) -> Option<DiskFault> {
        self.read_faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }
}

#[derive(Debug)]
struct FaultState {
    plan: DiskFaultPlan,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
}

/// An armed crash point (see [`TileStore::arm_crash`]): the store
/// services `after_ops` row-granular operations, then every subsequent
/// operation fails as if the owning process had died mid-run. Unlike
/// [`DiskFaultPlan`], this counts logical row operations on *both*
/// backings, so kill/resume behaviour is testable in the `Memory`
/// regime too.
#[derive(Debug)]
struct CrashState {
    after_ops: u64,
    ticks: AtomicU64,
    fired: AtomicBool,
}

/// FNV-1a over `bytes`, continuing from `hash` (seed with
/// [`FNV_OFFSET_BASIS`]). Shared with the checkpoint manifest's
/// self-checksum so one implementation guards both layers.
pub(crate) fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The FNV-1a 64-bit offset basis — the seed for [`fnv1a`].
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// One spill file of a disk-backed store.
struct DiskShard {
    file: File,
    /// Empty for files opened via [`TileStore::open`] (caller-owned;
    /// drop removes nothing).
    path: PathBuf,
}

/// The disk backing: consecutive row-aligned shard files presenting one
/// flat logical payload. Shard `k` holds logical payload bytes
/// `[k·cap, (k+1)·cap)`; because `cap` is a multiple of the row width, a
/// single row is always one `pread`/`pwrite`, and only multi-row calls
/// ever split across files.
struct DiskBacking {
    shards: Vec<DiskShard>,
    /// Shard capacity in bytes (row-aligned; the last shard may hold
    /// less). Never zero.
    cap: u64,
    /// Byte offset of logical payload offset 0 within shard 0: zero for
    /// spill files, the header length for files opened via
    /// [`TileStore::open`] (always single-shard).
    base: u64,
}

impl DiskBacking {
    /// Apply `f` to each `(file, file_offset, buf_range)` segment of the
    /// logical payload range `offset..offset + len`.
    fn for_each_segment<F>(&self, offset: u64, len: usize, mut f: F) -> io::Result<()>
    where
        F: FnMut(&File, u64, std::ops::Range<usize>) -> io::Result<()>,
    {
        let mut pos = 0usize;
        while pos < len {
            let o = offset + pos as u64;
            let idx = (o / self.cap) as usize;
            let local = o % self.cap;
            let take = ((self.cap - local) as usize).min(len - pos);
            let file_off = if idx == 0 { self.base + local } else { local };
            f(&self.shards[idx].file, file_off, pos..pos + take)?;
            pos += take;
        }
        Ok(())
    }

    /// Positional write of the logical payload range, splitting across
    /// shard files as needed. No fault accounting — that lives in
    /// [`write_at`], once per *logical* call regardless of segment count.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.for_each_segment(offset, buf.len(), |file, off, range| {
            file.write_all_at(&buf[range], off)
        })
    }

    /// Positional read of the logical payload range (see
    /// [`DiskBacking::write_all_at`]).
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        self.for_each_segment(offset, buf.len(), |file, off, range| {
            file.read_exact_at(&mut buf[range], off)
        })
    }
}

enum Backing {
    Memory(Vec<Dist>),
    Disk(DiskBacking),
}

/// Live state of the silent-corruption guard (see
/// [`TileStore::set_sdc_guard`]): one FNV checksum per row, plus a
/// dirty flag for rows whose checksum is stale after a partial (block)
/// write. Full-row writes re-hash eagerly from the data being written
/// (no I/O amplification); partial writes only mark dirty, and the
/// stale rows are re-hashed lazily at the next
/// [`TileStore::verify_checksums`] barrier sweep.
#[derive(Debug)]
struct SdcState {
    mode: SdcGuardMode,
    rows: Vec<u64>,
    dirty: Vec<bool>,
    /// Whether the row was read (by accounted I/O) since its checksum
    /// was last recorded. A mismatch on an unread row is *contained* —
    /// the damage cannot have propagated into other rows — so the
    /// recovery ladder may repair just that row's panel. A mismatch on
    /// a consumed row reports unlocalized instead, forcing the
    /// round-scoped rung that discards all derived state.
    consumed: Vec<bool>,
}

/// First-read verification state for stores opened from a persisted
/// file that carries a checksum footer: `pending[p]` holds panel `p`'s
/// recorded checksum until the first read touching it verifies (then
/// `None`). The first *write* through the store invalidates the whole
/// footer — both here and on disk — since the persisted checksums no
/// longer describe the content.
#[derive(Debug)]
struct OpenVerify {
    pending: Mutex<Vec<Option<u64>>>,
    invalidated: bool,
}

/// An `n × n` row-major distance matrix in RAM or on disk.
pub struct TileStore {
    n: usize,
    backing: Backing,
    faults: Option<FaultState>,
    crash: Option<CrashState>,
    supervision: Option<Supervisor>,
    exec: ExecBackend,
    sdc: Option<Mutex<SdcState>>,
    sdc_round: AtomicU64,
    bit_flips: Vec<(u64, u64)>,
    open_verify: Option<OpenVerify>,
}

/// Minimum rows per band for the store's staging copies — below this a
/// band is cheaper to run inline than to hand to a thread.
const STORE_MIN_ROWS_PER_BAND: usize = 64;

impl std::fmt::Debug for TileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            Backing::Memory(_) => "memory",
            Backing::Disk(..) => "disk",
        };
        write!(f, "TileStore {{ n: {}, backing: {kind} }}", self.n)
    }
}

impl TileStore {
    /// Create a store for an `n × n` matrix, initialized to `INF` with a
    /// zero diagonal (the convention every algorithm writes over).
    pub fn new(n: usize, backend: &StorageBackend) -> io::Result<Self> {
        match backend {
            StorageBackend::Memory => {
                let mut data = vec![INF; n * n];
                for i in 0..n {
                    data[i * n + i] = 0;
                }
                Ok(TileStore {
                    n,
                    backing: Backing::Memory(data),
                    faults: None,
                    crash: None,
                    supervision: None,
                    exec: ExecBackend::default(),
                    sdc: None,
                    sdc_round: AtomicU64::new(0),
                    bit_flips: Vec::new(),
                    open_verify: None,
                })
            }
            StorageBackend::Disk(dir) => Self::new_disk(n, dir, DEFAULT_SHARD_BYTES),
            StorageBackend::DiskSharded { dir, shard_bytes } => {
                Self::new_disk(n, dir, *shard_bytes)
            }
        }
    }

    /// Disk-backed construction: row-aligned spill shards of at most
    /// `shard_bytes` each (minimum one row per shard).
    fn new_disk(n: usize, dir: &Path, shard_bytes: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let row_bytes = n * std::mem::size_of::<Dist>();
        let rows_per_shard = if row_bytes == 0 {
            1
        } else {
            ((shard_bytes / row_bytes as u64) as usize).max(1)
        };
        let num_shards = n.div_ceil(rows_per_shard).max(1);
        let first = unique_file(dir);
        let mut shards: Vec<DiskShard> = Vec::with_capacity(num_shards);
        let open_all = |shards: &mut Vec<DiskShard>| -> io::Result<()> {
            for s in 0..num_shards {
                let path = if s == 0 {
                    first.clone()
                } else {
                    // Sibling shards append `.s<k>` to the spill name, so
                    // one store's family is recognizable (and removable)
                    // as a unit.
                    PathBuf::from(format!("{}.s{s}", first.display()))
                };
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)?;
                let rows_here = n.min((s + 1) * rows_per_shard) - s * rows_per_shard;
                file.set_len((rows_here * row_bytes) as u64)?;
                shards.push(DiskShard { file, path });
            }
            Ok(())
        };
        if let Err(e) = open_all(&mut shards) {
            for shard in &shards {
                let _ = std::fs::remove_file(&shard.path);
            }
            return Err(e);
        }
        let store = TileStore {
            n,
            backing: Backing::Disk(DiskBacking {
                shards,
                cap: ((rows_per_shard * row_bytes) as u64).max(1),
                base: 0,
            }),
            faults: None,
            crash: None,
            supervision: None,
            exec: ExecBackend::default(),
            sdc: None,
            sdc_round: AtomicU64::new(0),
            bit_flips: Vec::new(),
            open_verify: None,
        };
        // Materialize the INF + zero-diagonal initialization one
        // row at a time so even huge matrices never need n² RAM.
        let mut row = vec![INF; n];
        for i in 0..n {
            if i > 0 {
                row[i - 1] = INF;
            }
            row[i] = 0;
            store.write_row_raw(i, &row)?;
        }
        Ok(store)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the store spills to disk.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.backing, Backing::Disk(..))
    }

    /// Arm a deterministic [`DiskFaultPlan`]. Positional-I/O ordinals
    /// restart at zero; any previously armed plan is replaced. Memory
    /// backings issue no positional I/O, so the plan never fires there.
    pub fn arm_faults(&mut self, plan: DiskFaultPlan) {
        self.faults = Some(FaultState {
            plan,
            write_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
        });
    }

    /// Remove an armed fault plan.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// Attach a [`Supervisor`]: every row-granular operation checks its
    /// cancellation token (a trip surfaces as a typed
    /// [`crate::ApspError::Cancelled`] through the store's error
    /// plumbing), and [`DiskFault::HangMicros`] faults charge their
    /// simulated stall to its disk-stall clock.
    pub fn set_supervision(&mut self, sup: Supervisor) {
        self.supervision = Some(sup);
    }

    /// Detach any attached [`Supervisor`].
    pub fn clear_supervision(&mut self) {
        self.supervision = None;
    }

    /// Cancellation check shared by every row-granular operation.
    fn supervision_tick(&self, ops: u64) -> io::Result<()> {
        match &self.supervision {
            Some(sup) => sup.io_tick(ops),
            None => Ok(()),
        }
    }

    /// Telemetry row accounting, reached through the attached
    /// [`Supervisor`]; a no-op when supervision or telemetry is off.
    fn count_rows(&self, reads: u64, writes: u64) {
        if let Some(sup) = &self.supervision {
            sup.telemetry().count_store_rows(reads, writes);
        }
    }

    /// Arm a crash point: the next `after_ops` row-granular operations
    /// (a block access of `r` rows counts as `r`, matching the disk
    /// backing's positional-I/O accounting) succeed, then every
    /// subsequent operation fails with an "injected crash" I/O error —
    /// the store behaves as if its process died mid-run. Works on both
    /// backings; any previously armed crash point is replaced.
    pub fn arm_crash(&mut self, after_ops: u64) {
        self.crash = Some(CrashState {
            after_ops,
            ticks: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        });
    }

    /// Remove an armed crash point, reviving a "dead" store.
    pub fn disarm_crash(&mut self) {
        self.crash = None;
    }

    /// Row-granular operations serviced since [`Self::arm_crash`]; 0
    /// when none is armed. Arm with `u64::MAX` to count a full run
    /// without crashing it.
    pub fn crash_ops(&self) -> u64 {
        self.crash
            .as_ref()
            .map(|c| c.ticks.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Count `ops` operations against the armed crash point, failing
    /// once the budget is exhausted (and forever after).
    fn crash_tick(&self, ops: u64) -> io::Result<()> {
        let Some(crash) = &self.crash else {
            return Ok(());
        };
        let before = crash.ticks.fetch_add(ops, Ordering::Relaxed);
        if crash.fired.load(Ordering::Relaxed) || before.saturating_add(ops) > crash.after_ops {
            crash.fired.store(true, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "injected crash after {} store ops: process terminated",
                crash.after_ops
            )));
        }
        Ok(())
    }

    /// `(write, read)` positional-I/O ops issued since the plan was
    /// armed; `(0, 0)` when no plan is armed.
    pub fn io_ops(&self) -> (u64, u64) {
        match &self.faults {
            Some(f) => (
                f.write_ops.load(Ordering::Relaxed),
                f.read_ops.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// Choose the host execution backend for bulk staging copies and
    /// checksum computation on the `Memory` backing. `Disk` I/O always
    /// stays sequential: fault-injection ordinals and crash-tick
    /// determinism depend on the positional-I/O order.
    pub fn set_exec_backend(&mut self, exec: ExecBackend) {
        self.exec = exec;
    }

    /// Enable (or disable, with [`SdcGuardMode::Off`]) the
    /// silent-corruption guard: a per-row FNV checksum registry seeded
    /// from the store's *current* contents. Full-row reads verify
    /// against the registry; [`Self::verify_checksums`] sweeps the whole
    /// registry at barriers and run end. A mismatch surfaces as a typed
    /// [`crate::ApspError::SilentCorruption`] through the store's error
    /// plumbing. Guard reads bypass fault plans, crash points,
    /// supervision ticks, and telemetry counters, so arming the guard
    /// never perturbs injected-fault ordinals or the simulated clock.
    pub fn set_sdc_guard(&mut self, mode: SdcGuardMode) -> io::Result<()> {
        if !mode.is_on() {
            self.sdc = None;
            return Ok(());
        }
        let n = self.n;
        let mut rows = vec![0u64; n];
        match &self.backing {
            Backing::Memory(data) => {
                for (i, sum) in rows.iter_mut().enumerate() {
                    *sum = fnv1a(cast_bytes(&data[i * n..(i + 1) * n]), FNV_OFFSET_BASIS);
                }
            }
            Backing::Disk(..) => {
                let mut row = vec![0 as Dist; n];
                for (i, sum) in rows.iter_mut().enumerate() {
                    self.row_unaccounted_into(i, &mut row)?;
                    *sum = fnv1a(cast_bytes(&row), FNV_OFFSET_BASIS);
                }
            }
        }
        self.sdc = Some(Mutex::new(SdcState {
            mode,
            rows,
            dirty: vec![false; n],
            consumed: vec![false; n],
        }));
        Ok(())
    }

    /// The active guard mode ([`SdcGuardMode::Off`] when disarmed).
    pub fn sdc_guard(&self) -> SdcGuardMode {
        self.sdc
            .as_ref()
            .map(|s| s.lock().mode)
            .unwrap_or(SdcGuardMode::Off)
    }

    /// Tag subsequent guard detections with the driver's current round /
    /// batch / flush ordinal, so a tripped guard reports *when* as well
    /// as *where*.
    pub fn set_sdc_round(&self, round: usize) {
        self.sdc_round.store(round as u64, Ordering::Relaxed);
    }

    fn sdc_round(&self) -> usize {
        self.sdc_round.load(Ordering::Relaxed) as usize
    }

    /// Arm a one-shot at-rest bit flip: the store services `after_ops`
    /// row-granular *write* operations cleanly, then the write that
    /// exhausts the budget has one bit of its just-written row's stored
    /// bytes flipped (`bit` wraps modulo the row's bit width) — *after*
    /// the guard registry recorded the clean data, modelling corruption
    /// that strikes between a write and the next read. Works on both
    /// backings; multiple flips count down concurrently. With the guard
    /// off the flip is silent — the wrong-distances baseline the guard
    /// exists to close.
    pub fn arm_bit_flip(&mut self, after_ops: u64, bit: u64) {
        self.bit_flips.push((after_ops, bit));
    }

    /// Remove any armed (unfired) bit flips.
    pub fn clear_bit_flips(&mut self) {
        self.bit_flips.clear();
    }

    /// Full-registry verification for barrier and run-end gates: rows
    /// marked dirty by partial writes are re-hashed (their change was
    /// legitimate); clean rows must still match their recorded checksum.
    /// A no-op when the guard is off.
    pub fn verify_checksums(&self) -> io::Result<()> {
        let Some(sdc) = &self.sdc else {
            return Ok(());
        };
        let n = self.n;
        let mut state = sdc.lock();
        let state = &mut *state;
        match &self.backing {
            Backing::Memory(data) => {
                for i in 0..n {
                    let hash = fnv1a(cast_bytes(&data[i * n..(i + 1) * n]), FNV_OFFSET_BASIS);
                    if state.dirty[i] {
                        state.rows[i] = hash;
                        state.dirty[i] = false;
                        state.consumed[i] = false;
                    } else if hash != state.rows[i] {
                        return Err(self.sdc_mismatch(i, state.consumed[i]));
                    }
                }
            }
            Backing::Disk(..) => {
                let mut row = vec![0 as Dist; n];
                for i in 0..n {
                    self.row_unaccounted_into(i, &mut row)?;
                    let hash = fnv1a(cast_bytes(&row), FNV_OFFSET_BASIS);
                    if state.dirty[i] {
                        state.rows[i] = hash;
                        state.dirty[i] = false;
                        state.consumed[i] = false;
                    } else if hash != state.rows[i] {
                        return Err(self.sdc_mismatch(i, state.consumed[i]));
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-seed the checksum registry for `rows` from their *current*
    /// content, clearing dirty and consumed marks. Recovery-only: a
    /// ladder rung that recomputes these rows from the graph *lazily*
    /// (batch-by-batch, component-by-component) calls this first, so the
    /// stale mismatch it is recovering from cannot re-fire at an
    /// intermediate barrier ahead of the rewrite reaching the corrupt
    /// row. Never call it on rows that will not be rewritten — that
    /// would absorb real corruption into the registry.
    pub fn sdc_rebaseline(&self, rows: std::ops::Range<usize>) -> io::Result<()> {
        let Some(sdc) = &self.sdc else {
            return Ok(());
        };
        let n = self.n;
        let mut buf = vec![0 as Dist; n];
        let mut state = sdc.lock();
        for i in rows {
            let hash = match &self.backing {
                Backing::Memory(data) => {
                    fnv1a(cast_bytes(&data[i * n..(i + 1) * n]), FNV_OFFSET_BASIS)
                }
                Backing::Disk(..) => {
                    self.row_unaccounted_into(i, &mut buf)?;
                    fnv1a(cast_bytes(&buf), FNV_OFFSET_BASIS)
                }
            };
            state.rows[i] = hash;
            state.dirty[i] = false;
            state.consumed[i] = false;
        }
        Ok(())
    }

    /// The typed-SDC `io::Error` for a checksum mismatch on row `i`.
    /// `consumed` rows report unlocalized (`usize::MAX`): the corrupt
    /// content was already read, so panel-scoped repair cannot undo
    /// what may have propagated.
    fn sdc_mismatch(&self, i: usize, consumed: bool) -> io::Error {
        io::Error::other(SdcMark {
            panel: if consumed {
                usize::MAX
            } else {
                i / SDC_PANEL_ROWS
            },
            round: self.sdc_round(),
            detail: format!(
                "row {i} no longer matches its recorded checksum{}",
                if consumed {
                    " (read since corruption; damage may have propagated)"
                } else {
                    ""
                }
            ),
        })
    }

    /// Unaccounted full-row read for the semantic (ABFT) guards in
    /// `core::sdc`: like [`Self::read_row`] but bypassing fault plans,
    /// crash points, supervision ticks, and telemetry counters, so the
    /// invariant checks never perturb injected-fault ordinals or the
    /// simulated clock.
    pub(crate) fn guard_read_row(&self, i: usize) -> io::Result<Vec<Dist>> {
        let mut row = vec![0 as Dist; self.n];
        self.row_unaccounted_into(i, &mut row)?;
        Ok(row)
    }

    /// Full-row read bypassing fault plans, crash points, supervision
    /// ticks, and telemetry counters — the guard must observe the store
    /// without perturbing injected-fault ordinals or the simulated
    /// clock.
    fn row_unaccounted_into(&self, i: usize, buf: &mut [Dist]) -> io::Result<()> {
        match &self.backing {
            Backing::Memory(data) => {
                buf.copy_from_slice(&data[i * self.n..(i + 1) * self.n]);
                Ok(())
            }
            Backing::Disk(d) => {
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                d.read_exact_at(cast_bytes_mut(buf), offset)
            }
        }
    }

    /// Record fresh checksums for full rows just written from `rows`
    /// (one or more consecutive `n`-wide rows starting at `row_start`).
    fn sdc_record_rows(&mut self, row_start: usize, rows: &[Dist]) {
        let n = self.n;
        if let Some(sdc) = &mut self.sdc {
            let state = &mut *sdc.lock();
            for (k, chunk) in rows.chunks_exact(n).enumerate() {
                state.rows[row_start + k] = fnv1a(cast_bytes(chunk), FNV_OFFSET_BASIS);
                state.dirty[row_start + k] = false;
                state.consumed[row_start + k] = false;
            }
        }
    }

    /// Mark rows stale after a partial (sub-row) write; they are
    /// re-hashed at the next [`Self::verify_checksums`] sweep.
    fn sdc_mark_dirty(&mut self, rows: std::ops::Range<usize>) {
        if let Some(sdc) = &mut self.sdc {
            let state = &mut *sdc.lock();
            for i in rows {
                state.dirty[i] = true;
            }
        }
    }

    /// Verify one full row's just-read data against the registry (skips
    /// dirty rows — their recorded checksum is legitimately stale).
    fn sdc_verify_row_data(&self, i: usize, data: &[Dist]) -> io::Result<()> {
        if let Some(sdc) = &self.sdc {
            let state = sdc.lock();
            if !state.dirty[i] && fnv1a(cast_bytes(data), FNV_OFFSET_BASIS) != state.rows[i] {
                return Err(self.sdc_mismatch(i, state.consumed[i]));
            }
        }
        Ok(())
    }

    /// Mark rows as read by accounted I/O (see [`SdcState::consumed`]).
    /// Called *after* any same-call verification, so the read that
    /// detects a mismatch still reports the damage as contained.
    fn sdc_mark_consumed(&self, rows: std::ops::Range<usize>) {
        if let Some(sdc) = &self.sdc {
            let state = &mut *sdc.lock();
            for i in rows {
                state.consumed[i] = true;
            }
        }
    }

    /// Before a partial write dirties a clean row, verify the row's
    /// *current* content against the registry. Without this, the
    /// sequence "flip fires on a clean row, a later partial write marks
    /// it dirty, the barrier sweep re-hashes it" would absorb the
    /// corruption as a legitimate change. Costs one unaccounted
    /// full-row read per clean→dirty transition (at most one per row
    /// per barrier interval).
    fn sdc_predirty_verify(&self, rows: std::ops::Range<usize>) -> io::Result<()> {
        let Some(sdc) = &self.sdc else {
            return Ok(());
        };
        let mut buf = vec![0 as Dist; self.n];
        for i in rows {
            let expect = {
                let state = sdc.lock();
                if state.dirty[i] {
                    None
                } else {
                    Some((state.rows[i], state.consumed[i]))
                }
            };
            if let Some((hash, consumed)) = expect {
                self.row_unaccounted_into(i, &mut buf)?;
                if fnv1a(cast_bytes(&buf), FNV_OFFSET_BASIS) != hash {
                    return Err(self.sdc_mismatch(i, consumed));
                }
            }
        }
        Ok(())
    }

    /// Fire any armed bit flips whose write-op budget this operation
    /// exhausts. `count` is the operation's row-granular op count; a
    /// fired flip lands on the written row its residual budget points
    /// at. A flip landing on a dirty row finalizes that row's checksum
    /// from the (clean) backing first, so the corruption is never
    /// absorbed into the registry as a legitimate change.
    fn sdc_apply_write_flips(&mut self, row_start: usize, count: u64) -> io::Result<()> {
        if self.bit_flips.is_empty() || count == 0 {
            return Ok(());
        }
        let mut fired: Vec<(usize, u64)> = Vec::new();
        self.bit_flips.retain_mut(|(remaining, bit)| {
            if *remaining >= count {
                *remaining -= count;
                true
            } else {
                fired.push((row_start + *remaining as usize, *bit));
                false
            }
        });
        for (row, bit) in fired {
            if self.sdc.is_some() {
                let mut buf = vec![0 as Dist; self.n];
                self.row_unaccounted_into(row, &mut buf)?;
                let hash = fnv1a(cast_bytes(&buf), FNV_OFFSET_BASIS);
                if let Some(sdc) = &mut self.sdc {
                    let state = &mut *sdc.lock();
                    state.rows[row] = hash;
                    state.dirty[row] = false;
                    state.consumed[row] = false;
                }
            }
            self.flip_stored_bit(row, bit)?;
        }
        Ok(())
    }

    /// XOR one bit of row `row`'s stored bytes, directly in the backing
    /// (unaccounted — the fault is not an I/O operation the store
    /// performed, it is damage that happened to it).
    fn flip_stored_bit(&mut self, row: usize, bit: u64) -> io::Result<()> {
        let row_bytes = self.n * std::mem::size_of::<Dist>();
        if row_bytes == 0 {
            return Ok(());
        }
        let b = (bit % (row_bytes as u64 * 8)) as usize;
        match &mut self.backing {
            Backing::Memory(data) => {
                let n = self.n;
                let elems = &mut data[row * n..(row + 1) * n];
                cast_bytes_mut(elems)[b / 8] ^= 1 << (b % 8);
                Ok(())
            }
            Backing::Disk(d) => {
                let offset = (row * row_bytes) as u64 + (b / 8) as u64;
                let mut one = [0u8; 1];
                d.read_exact_at(&mut one, offset)?;
                one[0] ^= 1 << (b % 8);
                d.write_all_at(&one, offset)
            }
        }
    }

    /// On the first write through an opened store: the persisted footer
    /// no longer describes the content, so drop the pending first-read
    /// verifications and zero the on-disk footer magic (later opens then
    /// skip verification instead of reporting false corruption).
    fn open_note_write(&mut self) -> io::Result<()> {
        let Some(ov) = &mut self.open_verify else {
            return Ok(());
        };
        if ov.invalidated {
            return Ok(());
        }
        ov.invalidated = true;
        ov.pending.lock().clear();
        if let Backing::Disk(d) = &self.backing {
            // Only stores opened from a persisted file carry a footer,
            // and those are always single-shard: the footer lives past
            // the payload in shard 0's file.
            let footer_off = d.base + (self.n * self.n * std::mem::size_of::<Dist>()) as u64;
            d.shards[0].file.write_all_at(&[0u8; 8], footer_off)?;
        }
        Ok(())
    }

    /// First-read verification of persisted panel checksums for stores
    /// opened from a footer-carrying file: every not-yet-verified panel
    /// overlapping `rows` is hashed and checked, surfacing a typed
    /// [`crate::ApspError::Corruption`] on mismatch.
    fn open_verify_panels(&self, rows: std::ops::Range<usize>) -> io::Result<()> {
        let Some(ov) = &self.open_verify else {
            return Ok(());
        };
        if rows.is_empty() {
            return Ok(());
        }
        let lo = rows.start / SDC_PANEL_ROWS;
        let hi = (rows.end - 1) / SDC_PANEL_ROWS;
        let mut buf = vec![0 as Dist; self.n];
        for p in lo..=hi {
            let expect = {
                let pending = ov.pending.lock();
                match pending.get(p) {
                    Some(&Some(h)) => h,
                    _ => continue,
                }
            };
            let start = p * SDC_PANEL_ROWS;
            let end = ((p + 1) * SDC_PANEL_ROWS).min(self.n);
            let mut hash = FNV_OFFSET_BASIS;
            for i in start..end {
                self.row_unaccounted_into(i, &mut buf)?;
                hash = fnv1a(cast_bytes(&buf), hash);
            }
            if hash != expect {
                return Err(io::Error::other(CorruptionMark {
                    detail: format!(
                        "persisted matrix panel {p} (rows {start}..{end}) fails its recorded \
                         checksum on first read"
                    ),
                }));
            }
            ov.pending.lock()[p] = None;
        }
        Ok(())
    }

    /// Overwrite full row `i`.
    pub fn write_row(&mut self, i: usize, row: &[Dist]) -> io::Result<()> {
        assert_eq!(row.len(), self.n, "row width mismatch");
        assert!(i < self.n, "row index out of range");
        self.crash_tick(1)?;
        self.supervision_tick(1)?;
        self.count_rows(0, 1);
        let n = self.n;
        if let Backing::Memory(data) = &mut self.backing {
            data[i * n..(i + 1) * n].copy_from_slice(row);
        } else {
            self.write_row_raw(i, row)?;
        }
        self.open_note_write()?;
        self.sdc_record_rows(i, row);
        self.sdc_apply_write_flips(i, 1)
    }

    /// Positional row write available on the shared (`&self`) path — only
    /// valid for the disk backing (used during initialization).
    fn write_row_raw(&self, i: usize, row: &[Dist]) -> io::Result<()> {
        match &self.backing {
            Backing::Memory(_) => unreachable!("memory writes go through write_row"),
            Backing::Disk(d) => {
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                write_at(
                    d,
                    self.faults.as_ref(),
                    self.supervision.as_ref(),
                    cast_bytes(row),
                    offset,
                )
            }
        }
    }

    /// Overwrite `rows.len() / n` consecutive rows starting at `row_start`.
    pub fn write_rows(&mut self, row_start: usize, rows: &[Dist]) -> io::Result<()> {
        assert_eq!(rows.len() % self.n, 0, "partial rows in write_rows");
        let count = rows.len() / self.n;
        assert!(row_start + count <= self.n, "rows out of range");
        self.crash_tick(1)?; // one contiguous positional write
        self.supervision_tick(count as u64)?; // but cancellation stays row-granular
        self.count_rows(0, count as u64);
        match &mut self.backing {
            Backing::Memory(data) => {
                data[row_start * self.n..row_start * self.n + rows.len()].copy_from_slice(rows);
            }
            Backing::Disk(d) => {
                let offset = (row_start * self.n * std::mem::size_of::<Dist>()) as u64;
                write_at(
                    d,
                    self.faults.as_ref(),
                    self.supervision.as_ref(),
                    cast_bytes(rows),
                    offset,
                )?;
            }
        }
        self.open_note_write()?;
        self.sdc_record_rows(row_start, rows);
        self.sdc_apply_write_flips(row_start, count as u64)
    }

    /// Overwrite the rectangular block `row_range × col_range` with
    /// `data` (row-major, dimensions matching the ranges).
    pub fn write_block(
        &mut self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        data: &[Dist],
    ) -> io::Result<()> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        assert_eq!(data.len(), row_range.len() * width, "block size mismatch");
        self.crash_tick(row_range.len() as u64)?;
        self.supervision_tick(row_range.len() as u64)?;
        self.count_rows(0, row_range.len() as u64);
        if width != self.n {
            // About to dirty these rows: any clean row must still match
            // its checksum, or at-rest damage would be absorbed by the
            // barrier re-hash of dirty rows.
            self.sdc_predirty_verify(row_range.clone())?;
        }
        let n = self.n;
        let threads = self.exec.resolved_threads();
        match &mut self.backing {
            Backing::Memory(buf) => {
                let rows = row_range.len();
                let row_start = row_range.start;
                let col_start = col_range.start;
                let shared = SharedSliceMut::new(buf.as_mut_slice());
                par_bands_weighted(rows, threads, STORE_MIN_ROWS_PER_BAND, width, |band| {
                    // SAFETY: bands write disjoint row ranges of the backing.
                    let buf = unsafe { shared.slice() };
                    for r in band {
                        let dst = (row_start + r) * n + col_start;
                        buf[dst..dst + width].copy_from_slice(&data[r * width..(r + 1) * width]);
                    }
                });
            }
            Backing::Disk(d) => {
                for (r, i) in row_range.clone().enumerate() {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    write_at(
                        d,
                        self.faults.as_ref(),
                        self.supervision.as_ref(),
                        cast_bytes(&data[r * width..(r + 1) * width]),
                        offset,
                    )?;
                }
            }
        }
        self.open_note_write()?;
        if width == n {
            // A full-width block is consecutive whole rows: hash the
            // data in hand instead of re-reading the backing.
            self.sdc_record_rows(row_range.start, data);
        } else {
            self.sdc_mark_dirty(row_range.clone());
        }
        self.sdc_apply_write_flips(row_range.start, row_range.len() as u64)
    }

    /// Read the rectangular block `row_range × col_range` (row-major).
    pub fn read_block(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> io::Result<Vec<Dist>> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        self.crash_tick(row_range.len() as u64)?;
        self.supervision_tick(row_range.len() as u64)?;
        self.count_rows(row_range.len() as u64, 0);
        self.open_verify_panels(row_range.clone())?;
        let rows = row_range.len();
        let mut out = vec![0 as Dist; rows * width];
        match &self.backing {
            Backing::Memory(data) => {
                let n = self.n;
                let row_start = row_range.start;
                let col_start = col_range.start;
                let threads = self.exec.resolved_threads();
                let shared = SharedSliceMut::new(out.as_mut_slice());
                par_bands_weighted(rows, threads, STORE_MIN_ROWS_PER_BAND, width, |band| {
                    // SAFETY: bands write disjoint row ranges of `out`.
                    let out = unsafe { shared.slice() };
                    for r in band {
                        let src = (row_start + r) * n + col_start;
                        out[r * width..(r + 1) * width].copy_from_slice(&data[src..src + width]);
                    }
                });
            }
            Backing::Disk(d) => {
                for (r, i) in row_range.clone().enumerate() {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    read_at(
                        d,
                        self.faults.as_ref(),
                        self.supervision.as_ref(),
                        cast_bytes_mut(&mut out[r * width..(r + 1) * width]),
                        offset,
                    )?;
                }
            }
        }
        if width == self.n && self.sdc.is_some() {
            // Full-width reads carry whole rows: verify them against the
            // registry at zero extra I/O. Partial reads are covered by
            // the barrier-time `verify_checksums` sweep instead.
            for (r, i) in row_range.clone().enumerate() {
                self.sdc_verify_row_data(i, &out[r * width..(r + 1) * width])?;
            }
        }
        self.sdc_mark_consumed(row_range);
        Ok(out)
    }

    /// Read full row `i`.
    pub fn read_row(&self, i: usize) -> io::Result<Vec<Dist>> {
        assert!(i < self.n);
        self.crash_tick(1)?;
        self.supervision_tick(1)?;
        self.count_rows(1, 0);
        self.open_verify_panels(i..i + 1)?;
        let row = match &self.backing {
            Backing::Memory(data) => data[i * self.n..(i + 1) * self.n].to_vec(),
            Backing::Disk(d) => {
                let mut row = vec![0 as Dist; self.n];
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                read_at(
                    d,
                    self.faults.as_ref(),
                    self.supervision.as_ref(),
                    cast_bytes_mut(&mut row),
                    offset,
                )?;
                row
            }
        };
        self.sdc_verify_row_data(i, &row)?;
        self.sdc_mark_consumed(i..i + 1);
        Ok(row)
    }

    /// Read one element — convenience for spot checks; row-granular I/O
    /// for bulk access.
    pub fn get(&self, i: usize, j: usize) -> io::Result<Dist> {
        assert!(i < self.n && j < self.n);
        self.crash_tick(1)?;
        self.supervision_tick(1)?;
        self.count_rows(1, 0);
        self.open_verify_panels(i..i + 1)?;
        self.sdc_mark_consumed(i..i + 1);
        match &self.backing {
            Backing::Memory(data) => Ok(data[i * self.n + j]),
            Backing::Disk(d) => {
                let mut one = [0 as Dist; 1];
                let offset = ((i * self.n + j) * std::mem::size_of::<Dist>()) as u64;
                read_at(
                    d,
                    self.faults.as_ref(),
                    self.supervision.as_ref(),
                    cast_bytes_mut(&mut one),
                    offset,
                )?;
                Ok(one[0])
            }
        }
    }

    /// Persist the matrix to `path`: a 16-byte header (magic + the
    /// dimension `n` as little-endian `u64`s) followed by the raw
    /// little-endian row-major `u32` payload, so a computed result
    /// outlives the store. Readable again with [`TileStore::open`],
    /// which checks the header before trusting the payload.
    ///
    /// The write is **atomic**: data lands in a temporary sibling file,
    /// is `sync_all`ed, and only then renamed over `path` — a crash or
    /// `ENOSPC` mid-persist can never leave a torn file at `path`
    /// (either the old content or the new content is there, whole).
    ///
    /// A `Disk`-backed store refuses to persist into its own spill
    /// directory: the target could collide with (or be cleaned up
    /// alongside) live spill files, destroying the matrix it was meant
    /// to save.
    pub fn persist<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        if let Backing::Disk(d) = &self.backing {
            let own = &d.shards[0].path;
            if let Some(own_dir) = own.parent() {
                if !own.as_os_str().is_empty() && same_dir(own_dir, parent_dir(path)) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "refusing to persist into the store's own spill directory {}",
                            own_dir.display()
                        ),
                    ));
                }
            }
        }
        let dir = parent_dir(path);
        let file_name = path.file_name().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "persist target has no file name",
            )
        })?;
        let tmp = dir.join(format!(
            ".{}.tmp.{}",
            file_name.to_string_lossy(),
            std::process::id()
        ));
        let result = (|| -> io::Result<()> {
            let mut out = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            use std::io::Write;
            out.write_all(&PERSIST_MAGIC.to_le_bytes())?;
            out.write_all(&(self.n as u64).to_le_bytes())?;
            let num_panels = self.n.div_ceil(SDC_PANEL_ROWS);
            let mut footer = Vec::with_capacity(num_panels);
            match &self.backing {
                Backing::Memory(data) => {
                    self.crash_tick(self.n as u64)?; // parity with the disk backing's n row reads
                    self.supervision_tick(self.n as u64)?;
                    out.write_all(cast_bytes(data))?;
                    for p in 0..num_panels {
                        let lo = p * SDC_PANEL_ROWS * self.n;
                        let hi = (((p + 1) * SDC_PANEL_ROWS) * self.n).min(data.len());
                        footer.push(fnv1a(cast_bytes(&data[lo..hi]), FNV_OFFSET_BASIS));
                    }
                }
                Backing::Disk(..) => {
                    let mut hash = FNV_OFFSET_BASIS;
                    for i in 0..self.n {
                        let row = self.read_row(i)?;
                        out.write_all(cast_bytes(&row))?;
                        hash = fnv1a(cast_bytes(&row), hash);
                        if (i + 1).is_multiple_of(SDC_PANEL_ROWS) {
                            footer.push(hash);
                            hash = FNV_OFFSET_BASIS;
                        }
                    }
                    if !self.n.is_multiple_of(SDC_PANEL_ROWS) {
                        footer.push(hash);
                    }
                }
            }
            // Per-panel checksum footer: first reads through `open`
            // verify each panel against it, so at-rest damage to the
            // file surfaces typed instead of as wrong distances.
            out.write_all(&FOOTER_MAGIC.to_le_bytes())?;
            out.write_all(&(num_panels as u64).to_le_bytes())?;
            for h in &footer {
                out.write_all(&h.to_le_bytes())?;
            }
            out.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// FNV-1a checksum of each consecutive panel of `panel_rows` rows
    /// (the last panel may be shorter). On a `Disk` backing the rows are
    /// read back from the file, so the checksums attest to what is
    /// actually on disk, not what was last handed to `write_*`.
    pub fn panel_checksums(&self, panel_rows: usize) -> io::Result<Vec<u64>> {
        assert!(panel_rows >= 1, "panel_rows must be positive");
        // Each panel's FNV chain starts fresh from the offset basis, so
        // the panels are independent and can be hashed in parallel on
        // the memory backing. Crash/supervision ticks are charged in
        // bulk up front (same totals as the row-at-a-time path).
        let threads = self.exec.resolved_threads();
        if threads > 1 {
            if let Backing::Memory(data) = &self.backing {
                let n = self.n;
                self.crash_tick(n as u64)?;
                self.supervision_tick(n as u64)?;
                let num_panels = n.div_ceil(panel_rows);
                let mut out = vec![0u64; num_panels];
                let shared = SharedSliceMut::new(&mut out);
                par_bands_weighted(num_panels, threads, 1, panel_rows * n, |band| {
                    // SAFETY: each band writes a disjoint range of `out`.
                    let out = unsafe { shared.slice() };
                    for p in band {
                        let lo = p * panel_rows;
                        let hi = ((p + 1) * panel_rows).min(n);
                        // A memory-backed panel is one contiguous slice.
                        out[p] = fnv1a(cast_bytes(&data[lo * n..hi * n]), FNV_OFFSET_BASIS);
                    }
                });
                return Ok(out);
            }
        }
        let mut out = Vec::with_capacity(self.n.div_ceil(panel_rows));
        let mut hash = FNV_OFFSET_BASIS;
        for i in 0..self.n {
            let row = self.read_row(i)?;
            hash = fnv1a(cast_bytes(&row), hash);
            if (i + 1) % panel_rows == 0 {
                out.push(hash);
                hash = FNV_OFFSET_BASIS;
            }
        }
        if !self.n.is_multiple_of(panel_rows) {
            out.push(hash);
        }
        Ok(out)
    }

    /// Open a previously [`TileStore::persist`]ed matrix read-write in
    /// place (the file is *not* deleted on drop — the caller owns it).
    ///
    /// The persisted header (magic + dimension) is validated against
    /// the requested `n`, so a file persisted at a different dimension
    /// is rejected even when its byte length happens to match.
    pub fn open<P: AsRef<Path>>(path: P, n: usize) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let actual = file.metadata()?.len();
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if actual < PERSIST_HEADER_BYTES {
            return Err(bad(format!(
                "{} holds {actual} bytes, too short for even the {PERSIST_HEADER_BYTES}-byte \
                 tile-store header",
                path.as_ref().display()
            )));
        }
        let mut header = [0u8; PERSIST_HEADER_BYTES as usize];
        file.read_exact_at(&mut header, 0)?;
        let magic = u64::from_le_bytes(header[..8].try_into().unwrap());
        if magic != PERSIST_MAGIC {
            return Err(bad(format!(
                "{} does not start with the tile-store magic — not a persisted matrix",
                path.as_ref().display()
            )));
        }
        let stored_n = u64::from_le_bytes(header[8..].try_into().unwrap());
        if stored_n != n as u64 {
            return Err(bad(format!(
                "{} was persisted as a {stored_n}×{stored_n} matrix, caller asked for {n}×{n}",
                path.as_ref().display()
            )));
        }
        let legacy = PERSIST_HEADER_BYTES + (n * n * std::mem::size_of::<Dist>()) as u64;
        let num_panels = n.div_ceil(SDC_PANEL_ROWS);
        let with_footer = legacy + FOOTER_HEADER_BYTES + 8 * num_panels as u64;
        let pending: Vec<Option<u64>> = if actual == legacy {
            // Pre-footer persist: nothing recorded, nothing to verify.
            Vec::new()
        } else if actual == with_footer {
            let mut fh = [0u8; FOOTER_HEADER_BYTES as usize];
            file.read_exact_at(&mut fh, legacy)?;
            let fmagic = u64::from_le_bytes(fh[..8].try_into().unwrap());
            if fmagic == 0 {
                // A write through a previously opened store invalidated
                // the footer; the payload is newer than the checksums.
                Vec::new()
            } else if fmagic == FOOTER_MAGIC {
                let count = u64::from_le_bytes(fh[8..].try_into().unwrap());
                if count != num_panels as u64 {
                    return Err(bad(format!(
                        "{} records {count} checksum panels, an {n}×{n} matrix has {num_panels}",
                        path.as_ref().display()
                    )));
                }
                let mut sums = vec![0u8; 8 * num_panels];
                file.read_exact_at(&mut sums, legacy + FOOTER_HEADER_BYTES)?;
                sums.chunks_exact(8)
                    .map(|c| Some(u64::from_le_bytes(c.try_into().unwrap())))
                    .collect()
            } else {
                return Err(bad(format!(
                    "{} carries an unrecognized checksum footer — damaged?",
                    path.as_ref().display()
                )));
            }
        } else {
            return Err(bad(format!(
                "{} holds {actual} bytes, an {n}×{n} matrix needs {legacy} (or {with_footer} \
                 with its checksum footer) — truncated?",
                path.as_ref().display()
            )));
        };
        let payload = (n * n * std::mem::size_of::<Dist>()) as u64;
        Ok(TileStore {
            n,
            backing: Backing::Disk(DiskBacking {
                shards: vec![DiskShard {
                    file,
                    path: PathBuf::new(), // empty ⇒ drop() removes nothing
                }],
                // A persisted matrix is one file: the single shard spans
                // the whole payload.
                cap: payload.max(1),
                base: PERSIST_HEADER_BYTES,
            }),
            faults: None,
            crash: None,
            supervision: None,
            exec: ExecBackend::default(),
            sdc: None,
            sdc_round: AtomicU64::new(0),
            bit_flips: Vec::new(),
            open_verify: if pending.iter().any(|p| p.is_some()) {
                Some(OpenVerify {
                    pending: Mutex::new(pending),
                    invalidated: false,
                })
            } else {
                None
            },
        })
    }

    /// Materialize the whole matrix (tests and small-n tooling only).
    pub fn to_dist_matrix(&self) -> io::Result<apsp_cpu::DistMatrix> {
        // The materialized matrix is the run's final answer: sweep the
        // guard registry first so at-rest damage never leaves the store.
        self.verify_checksums()?;
        let mut data = Vec::with_capacity(self.n * self.n);
        match &self.backing {
            Backing::Memory(buf) => data.extend_from_slice(buf),
            Backing::Disk(..) => {
                for i in 0..self.n {
                    data.extend_from_slice(&self.read_row(i)?);
                }
            }
        }
        Ok(apsp_cpu::DistMatrix::from_raw(self.n, data))
    }
}

impl Drop for TileStore {
    fn drop(&mut self) {
        if let Backing::Disk(d) = &self.backing {
            for shard in &d.shards {
                // Stores opened from a user-owned file carry an empty
                // path and must survive the drop.
                if !shard.path.as_os_str().is_empty() {
                    let _ = std::fs::remove_file(&shard.path);
                }
            }
        }
    }
}

/// `path.parent()`, with a bare file name resolving to the current
/// directory instead of the empty path.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Whether two directory paths name the same directory, resolving
/// symlinks/relative segments when both exist.
fn same_dir(a: &Path, b: &Path) -> bool {
    if a == b {
        return true;
    }
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

fn unique_file(dir: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("apsp-tiles-{}-{}.bin", std::process::id(), id))
}

/// Positional write with fault application: counts the op against the
/// armed plan and fires any scheduled write-direction fault. One fault
/// ordinal per *logical* call — a write that straddles shard files is
/// still one op, so fault plans replay identically at every shard
/// threshold.
///
/// A [`DiskFault::HangMicros`] fault succeeds but charges its duration
/// to the attached supervisor's io-stall clock (simulated time — the
/// host thread never sleeps), so a hung disk is only observable when a
/// supervisor is watching.
fn write_at(
    disk: &DiskBacking,
    faults: Option<&FaultState>,
    sup: Option<&Supervisor>,
    buf: &[u8],
    offset: u64,
) -> io::Result<()> {
    if let Some(state) = faults {
        let op = state.write_ops.fetch_add(1, Ordering::Relaxed);
        match state.plan.write_fault_at(op) {
            Some(DiskFault::Enospc) => {
                return Err(io::Error::from_raw_os_error(ENOSPC_ERRNO));
            }
            Some(DiskFault::ShortWrite) => {
                // First half of the *logical* buffer persists, wherever
                // its bytes land across shards.
                let half = buf.len() / 2;
                disk.write_all_at(&buf[..half], offset)?;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected short write at op {op}: {half} of {} bytes persisted",
                        buf.len()
                    ),
                ));
            }
            Some(DiskFault::LatencyMicros(us)) => std::thread::sleep(Duration::from_micros(us)),
            Some(DiskFault::HangMicros(us)) => {
                if let Some(sup) = sup {
                    sup.charge_io_stall(us as f64 / 1e6);
                }
            }
            Some(DiskFault::ShortRead) | None => {}
        }
    }
    disk.write_all_at(buf, offset)
}

/// Positional read with fault application (see [`write_at`]).
fn read_at(
    disk: &DiskBacking,
    faults: Option<&FaultState>,
    sup: Option<&Supervisor>,
    buf: &mut [u8],
    offset: u64,
) -> io::Result<()> {
    if let Some(state) = faults {
        let op = state.read_ops.fetch_add(1, Ordering::Relaxed);
        match state.plan.read_fault_at(op) {
            Some(DiskFault::ShortRead) => {
                let half = buf.len() / 2;
                disk.read_exact_at(&mut buf[..half], offset)?;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "injected short read at op {op}: {half} of {} bytes filled",
                        buf.len()
                    ),
                ));
            }
            Some(DiskFault::LatencyMicros(us)) => std::thread::sleep(Duration::from_micros(us)),
            Some(DiskFault::HangMicros(us)) => {
                if let Some(sup) = sup {
                    sup.charge_io_stall(us as f64 / 1e6);
                }
            }
            Some(DiskFault::ShortWrite) | Some(DiskFault::Enospc) | None => {}
        }
    }
    disk.read_exact_at(buf, offset)
}

fn cast_bytes(d: &[Dist]) -> &[u8] {
    // SAFETY: u32 has no padding or invalid bit patterns.
    unsafe { std::slice::from_raw_parts(d.as_ptr() as *const u8, std::mem::size_of_val(d)) }
}

fn cast_bytes_mut(d: &mut [Dist]) -> &mut [u8] {
    // SAFETY: as above; all byte patterns are valid u32s.
    unsafe { std::slice::from_raw_parts_mut(d.as_mut_ptr() as *mut u8, std::mem::size_of_val(d)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        std::env::temp_dir().join("apsp_tile_store_tests")
    }

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::Disk(tmp_dir())]
    }

    #[test]
    fn initialization_convention() {
        for backend in backends() {
            let s = TileStore::new(4, &backend).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(s.get(i, j).unwrap(), if i == j { 0 } else { INF });
                }
            }
        }
    }

    #[test]
    fn row_roundtrip_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(1, &[7, 8, 9]).unwrap();
            assert_eq!(s.read_row(1).unwrap(), vec![7, 8, 9]);
            assert_eq!(s.read_row(0).unwrap()[0], 0);
        }
    }

    #[test]
    fn multi_row_and_block_writes() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.write_rows(1, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // rows 1–2
            assert_eq!(s.read_row(2).unwrap(), vec![5, 6, 7, 8]);
            s.write_block(0..2, 2..4, &[90, 91, 92, 93]).unwrap();
            assert_eq!(s.get(0, 2).unwrap(), 90);
            assert_eq!(s.get(1, 3).unwrap(), 93);
            // Untouched cells survive the block write.
            assert_eq!(s.get(1, 0).unwrap(), 1);
        }
    }

    #[test]
    fn read_block_roundtrips_write_block() {
        for backend in backends() {
            let mut s = TileStore::new(5, &backend).unwrap();
            let block: Vec<u32> = (0..6).collect(); // 2×3
            s.write_block(1..3, 2..5, &block).unwrap();
            assert_eq!(s.read_block(1..3, 2..5).unwrap(), block);
            // Sub-block of the written region.
            assert_eq!(s.read_block(2..3, 3..5).unwrap(), vec![4, 5]);
        }
    }

    #[test]
    fn to_dist_matrix_matches() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(0, &[0, 5, 6]).unwrap();
            let m = s.to_dist_matrix().unwrap();
            assert_eq!(m.get(0, 1), 5);
            assert_eq!(m.get(1, 1), 0);
        }
    }

    #[test]
    fn disk_file_is_cleaned_up() {
        let dir = tmp_dir();
        let path_probe;
        {
            let s = TileStore::new(8, &StorageBackend::Disk(dir.clone())).unwrap();
            assert!(s.is_disk_backed());
            path_probe = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect::<Vec<_>>();
            assert!(!path_probe.is_empty());
        }
        // After drop, no stale file with our pid remains among those seen.
        for p in path_probe {
            assert!(
                !p.exists()
                    || !p
                        .to_string_lossy()
                        .contains(&format!("-{}-", std::process::id()))
                    || std::fs::metadata(&p).is_err()
                    || !p.exists()
            );
        }
    }

    #[test]
    fn persist_and_open_roundtrip_both_backends() {
        // Not tmp_dir() itself: that is the Disk backend's spill
        // directory, and persisting into it is rejected by design.
        let dir = tmp_dir().join("persist_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        for (idx, backend) in backends().into_iter().enumerate() {
            let path = dir.join(format!("persist-{}.bin", idx));
            {
                let mut s = TileStore::new(3, &backend).unwrap();
                s.write_row(1, &[4, 5, 6]).unwrap();
                s.persist(&path).unwrap();
            }
            // Original store dropped; the persisted file survives.
            let reopened = TileStore::open(&path, 3).unwrap();
            assert_eq!(reopened.read_row(1).unwrap(), vec![4, 5, 6]);
            assert_eq!(reopened.get(0, 0).unwrap(), 0);
            drop(reopened);
            assert!(path.exists(), "opened store must not delete its file");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn open_rejects_wrong_size() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-size.bin");
        std::fs::write(&path, [0u8; 10]).unwrap();
        assert!(TileStore::open(&path, 3).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_wrong_geometry_despite_right_byte_length() {
        // A tampered (or mismatched) header must be rejected even when
        // the file's byte length is exactly what the caller's n needs.
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-geometry.bin");
        TileStore::new(4, &StorageBackend::Memory)
            .unwrap()
            .persist(&path)
            .unwrap();
        // Rewrite the header's dimension field to claim 5×5; the file
        // length still matches a persisted 4×4 matrix.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&5u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = TileStore::open(&path, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("5×5"), "{err}");
        // A file without the magic is rejected too, at any length.
        let raw = vec![0u8; PERSIST_HEADER_BYTES as usize + 4 * 4 * 4];
        std::fs::write(&path, &raw).unwrap();
        let err = TileStore::open(&path, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hang_fault_charges_the_supervisor_and_succeeds() {
        use crate::supervisor::{SupervisionOptions, Supervisor};
        let mut s = TileStore::new(3, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::HangMicros(2_500_000))],
            read_faults: vec![(1, DiskFault::HangMicros(500_000))],
        });
        let sup = Supervisor::new(&SupervisionOptions::default(), 0.0);
        s.set_supervision(sup.clone());
        // The hung ops still succeed — only the stall clock notices.
        s.write_row(0, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_row(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.read_row(0).unwrap(), vec![1, 2, 3]);
        assert!((sup.io_stall_seconds() - 3.0).abs() < 1e-9);
        // Without a supervisor attached the hang is unobservable.
        s.clear_supervision();
        s.write_row(1, &[4, 5, 6]).unwrap();
        assert!((sup.io_stall_seconds() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn opened_store_is_writable() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writable.bin");
        TileStore::new(2, &StorageBackend::Memory)
            .unwrap()
            .persist(&path)
            .unwrap();
        let mut s = TileStore::open(&path, 2).unwrap();
        s.write_row(0, &[9, 9]).unwrap();
        drop(s);
        let again = TileStore::open(&path, 2).unwrap();
        assert_eq!(again.read_row(0).unwrap(), vec![9, 9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_row_width() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.write_row(0, &[1, 2]).unwrap();
    }

    #[test]
    fn last_row_roundtrips_on_disk() {
        // Off-by-one-row bugs in positional offsets show up exactly at
        // the file's tail, where a bad offset runs past EOF.
        let n = 7;
        let mut s = TileStore::new(n, &StorageBackend::Disk(tmp_dir())).unwrap();
        let row: Vec<Dist> = (100..100 + n as Dist).collect();
        s.write_row(n - 1, &row).unwrap();
        assert_eq!(s.read_row(n - 1).unwrap(), row);
        assert_eq!(s.get(n - 1, n - 1).unwrap(), row[n - 1]);
        // The row above is untouched.
        assert_eq!(s.get(n - 2, n - 2).unwrap(), 0);
        assert_eq!(s.get(n - 2, n - 1).unwrap(), INF);
    }

    #[test]
    fn drop_removes_exactly_its_spill_file() {
        let dir = tmp_dir().join("drop_cleanup");
        let path = {
            let s = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap();
            let survivor = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap();
            let files: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(files.len(), 2);
            drop(s);
            let remaining: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(remaining.len(), 1, "dropped store must remove its file");
            // The survivor still reads after its sibling's cleanup.
            assert_eq!(survivor.get(0, 0).unwrap(), 0);
            remaining[0].clone()
        };
        assert!(!path.exists(), "second drop removes the last file");
        std::fs::remove_dir(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unwritable_directory_surfaces_io_error() {
        use std::os::unix::fs::PermissionsExt;
        if effective_uid() == 0 {
            return; // root bypasses permission bits; nothing to test
        }
        let dir = tmp_dir().join("readonly_dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        let err = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }

    #[cfg(unix)]
    fn effective_uid() -> u32 {
        // Avoid a libc dependency: the uid is in /proc for this purpose.
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Uid:"))
                    .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
            })
            .and_then(|u| u.parse().ok())
            .unwrap_or(u32::MAX)
    }

    #[test]
    fn fault_plan_enospc_fires_at_scheduled_write() {
        let mut s = TileStore::new(3, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(1, DiskFault::Enospc)],
            read_faults: vec![],
        });
        s.write_row(0, &[1, 2, 3]).unwrap(); // op 0: clean
        let err = s.write_row(1, &[4, 5, 6]).unwrap_err(); // op 1: ENOSPC
        assert_eq!(err.raw_os_error(), Some(ENOSPC_ERRNO));
        // Nothing from the failed write landed.
        assert_eq!(s.read_row(1).unwrap(), vec![INF, 0, INF]);
        // Subsequent ops are clean again.
        s.write_row(1, &[4, 5, 6]).unwrap();
        assert_eq!(s.read_row(1).unwrap(), vec![4, 5, 6]);
        assert_eq!(s.io_ops().0, 3);
    }

    #[test]
    fn fault_plan_short_write_mutates_then_errors() {
        let mut s = TileStore::new(4, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::ShortWrite)],
            read_faults: vec![],
        });
        let err = s.write_row(2, &[9, 9, 9, 9]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // The dangerous part: half the row (2 of 4 u32s) did land.
        assert_eq!(s.read_row(2).unwrap(), vec![9, 9, 0, INF]);
    }

    #[test]
    fn fault_plan_short_read_and_latency() {
        let mut s = TileStore::new(4, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.write_row(1, &[5, 6, 7, 8]).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::LatencyMicros(50))],
            read_faults: vec![(0, DiskFault::ShortRead), (1, DiskFault::LatencyMicros(50))],
        });
        let err = s.read_row(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Latency faults delay but succeed, on both directions.
        assert_eq!(s.read_row(1).unwrap(), vec![5, 6, 7, 8]);
        s.write_row(0, &[1, 1, 1, 1]).unwrap();
        assert_eq!(s.io_ops(), (1, 2));
        s.disarm_faults();
        assert_eq!(s.io_ops(), (0, 0));
    }

    #[test]
    fn fault_plan_is_inert_on_memory_backing() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::Enospc)],
            read_faults: vec![(0, DiskFault::ShortRead)],
        });
        s.write_row(0, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_row(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            s.io_ops(),
            (0, 0),
            "memory backing issues no positional I/O"
        );
    }

    #[test]
    fn persist_rejects_own_spill_directory() {
        let dir = tmp_dir().join("own_dir_guard");
        let s = TileStore::new(3, &StorageBackend::Disk(dir.clone())).unwrap();
        let err = s.persist(dir.join("snapshot.bin")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // A sibling directory is fine.
        let out = tmp_dir().join("own_dir_guard_out");
        std::fs::create_dir_all(&out).unwrap();
        s.persist(out.join("snapshot.bin")).unwrap();
        assert!(out.join("snapshot.bin").exists());
        std::fs::remove_file(out.join("snapshot.bin")).unwrap();
    }

    #[test]
    fn persist_is_atomic_no_tmp_left_behind() {
        let out = tmp_dir().join("atomic_persist");
        std::fs::create_dir_all(&out).unwrap();
        let target = out.join("m.bin");
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.write_row(0, &[0, 7, 8]).unwrap();
        s.persist(&target).unwrap();
        // Overwrite with new content; the file is replaced whole.
        s.write_row(0, &[0, 9, 9]).unwrap();
        s.persist(&target).unwrap();
        let again = TileStore::open(&target, 3).unwrap();
        assert_eq!(again.read_row(0).unwrap(), vec![0, 9, 9]);
        drop(again);
        let leftovers: Vec<_> = std::fs::read_dir(&out)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|f| f.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "tmp files leaked: {leftovers:?}");
        std::fs::remove_file(&target).unwrap();
    }

    #[test]
    fn panel_checksums_detect_any_mutation() {
        for backend in backends() {
            let mut s = TileStore::new(5, &backend).unwrap();
            s.write_row(2, &[1, 2, 3, 4, 5]).unwrap();
            let before = s.panel_checksums(2).unwrap();
            assert_eq!(before.len(), 3); // panels of 2, 2, 1 rows
            assert_eq!(before, s.panel_checksums(2).unwrap(), "deterministic");
            s.write_row(4, &[9, 9, 9, 9, 0]).unwrap();
            let after = s.panel_checksums(2).unwrap();
            assert_eq!(before[0], after[0]);
            assert_eq!(before[1], after[1]);
            assert_ne!(before[2], after[2], "mutated panel must change");
        }
    }

    #[test]
    fn crash_point_kills_the_store_on_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.arm_crash(2);
            s.write_row(0, &[1, 1, 1, 1]).unwrap(); // op 0
            s.read_row(0).unwrap(); // op 1
            let err = s.write_row(1, &[2, 2, 2, 2]).unwrap_err(); // op 2: dead
            assert!(err.to_string().contains("injected crash"), "{err}");
            // Every subsequent op fails too — the process is "dead".
            assert!(s.read_row(0).is_err());
            assert!(s.get(0, 0).is_err());
            assert!(s.crash_ops() >= 3);
            // Disarming revives it (the harness's post-mortem view).
            s.disarm_crash();
            assert_eq!(s.read_row(0).unwrap(), vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn crash_counts_block_ops_at_row_granularity() {
        let mut s = TileStore::new(4, &StorageBackend::Memory).unwrap();
        s.arm_crash(u64::MAX);
        s.write_block(0..3, 0..2, &[1, 2, 3, 4, 5, 6]).unwrap(); // 3 ops
        s.read_block(1..3, 0..4).unwrap(); // 2 ops
        s.write_rows(0, &[7, 7, 7, 7, 8, 8, 8, 8]).unwrap(); // 1 op
        assert_eq!(s.crash_ops(), 6);
    }

    #[test]
    fn sdc_guard_clean_runs_stay_clean_on_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(5, &backend).unwrap();
            s.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
            assert_eq!(s.sdc_guard(), SdcGuardMode::Checksum);
            s.write_row(1, &[1, 2, 3, 4, 5]).unwrap();
            s.write_rows(2, &[6; 10]).unwrap();
            s.write_block(0..2, 1..3, &[7, 7, 7, 7]).unwrap(); // partial: dirty
            assert_eq!(s.read_row(1).unwrap(), vec![1, 7, 7, 4, 5]);
            s.verify_checksums().unwrap();
            s.verify_checksums().unwrap(); // idempotent after rehash
            let m = s.to_dist_matrix().unwrap();
            assert_eq!(m.get(2, 0), 6);
            s.set_sdc_guard(SdcGuardMode::Off).unwrap();
            assert_eq!(s.sdc_guard(), SdcGuardMode::Off);
        }
    }

    #[test]
    fn armed_bit_flip_is_detected_typed_on_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
            s.set_sdc_round(3);
            s.write_row(0, &[0, 1, 2, 3]).unwrap(); // write op 0: clean
            s.arm_bit_flip(0, 5); // next write op flips bit 5 of its row
            s.write_row(2, &[9, 9, 9, 9]).unwrap();
            let err = s.read_row(2).unwrap_err();
            let typed = crate::ApspError::from(err);
            match typed {
                crate::ApspError::SilentCorruption { panel, round, .. } => {
                    assert_eq!(panel, 0); // row 2 lives in panel 0
                    assert_eq!(round, 3);
                }
                other => panic!("expected SilentCorruption, got {other:?}"),
            }
            // Untouched rows still read clean.
            assert_eq!(s.read_row(0).unwrap(), vec![0, 1, 2, 3]);
            // The full sweep sees it too (run-end gate).
            assert!(s.verify_checksums().is_err());
            assert!(s.to_dist_matrix().is_err());
        }
    }

    #[test]
    fn bit_flip_with_guard_off_is_silently_wrong() {
        // The baseline the guard exists to close: no guard, no error,
        // wrong data.
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.arm_bit_flip(0, 0); // flip bit 0 of the next written row
            s.write_row(1, &[4, 4, 4]).unwrap();
            let row = s.read_row(1).unwrap();
            assert_eq!(row, vec![5, 4, 4], "bit 0 of element 0 flipped");
            s.verify_checksums().unwrap(); // no registry, no detection
        }
    }

    #[test]
    fn bit_flip_on_dirty_row_is_still_caught_at_the_barrier() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.set_sdc_guard(SdcGuardMode::Full).unwrap();
            // Partial write marks rows 1..3 dirty, and the armed flip
            // fires on that same operation (budget 1 ⇒ second row).
            s.arm_bit_flip(1, 17);
            s.write_block(1..3, 0..2, &[8, 8, 8, 8]).unwrap();
            // The flip finalizes the row's checksum from the clean
            // backing before striking, so the sweep cannot absorb it.
            let err = s.verify_checksums().unwrap_err();
            match crate::ApspError::from(err) {
                crate::ApspError::SilentCorruption { panel, .. } => assert_eq!(panel, 0),
                other => panic!("expected SilentCorruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_count_down_across_ops_and_clear() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        s.arm_bit_flip(5, 1); // budget outlives the ops below
        s.write_rows(0, &[1; 6]).unwrap(); // 2 row ops: 3 left
        s.write_row(2, &[2, 2, 2]).unwrap(); // 2 left
        s.verify_checksums().unwrap();
        s.clear_bit_flips();
        s.write_row(0, &[3, 3, 3]).unwrap();
        s.write_row(1, &[3, 3, 3]).unwrap();
        s.write_row(2, &[3, 3, 3]).unwrap(); // would have fired here
        s.verify_checksums().unwrap();
    }

    #[test]
    fn persisted_footer_catches_spill_file_damage_on_first_read() {
        let out = tmp_dir().join("footer_damage");
        std::fs::create_dir_all(&out).unwrap();
        let target = out.join("m.bin");
        let mut s = TileStore::new(5, &StorageBackend::Memory).unwrap();
        s.write_row(3, &[1, 2, 3, 4, 5]).unwrap();
        s.persist(&target).unwrap();
        drop(s);
        // Clean reopen verifies every panel it touches.
        let clean = TileStore::open(&target, 5).unwrap();
        assert_eq!(clean.read_row(3).unwrap(), vec![1, 2, 3, 4, 5]);
        drop(clean);
        // Flip one payload byte behind the store's back.
        let mut bytes = std::fs::read(&target).unwrap();
        let victim = PERSIST_HEADER_BYTES as usize + (3 * 5 + 1) * 4;
        bytes[victim] ^= 0x10;
        std::fs::write(&target, &bytes).unwrap();
        let damaged = TileStore::open(&target, 5).unwrap();
        let err = damaged.read_row(3).unwrap_err();
        match crate::ApspError::from(err) {
            crate::ApspError::Corruption { detail } => {
                assert!(detail.contains("panel 0"), "{detail}");
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        std::fs::remove_file(&target).unwrap();
    }

    #[test]
    fn legacy_footerless_persist_files_still_open() {
        let out = tmp_dir().join("legacy_open");
        std::fs::create_dir_all(&out).unwrap();
        let target = out.join("m.bin");
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.write_row(0, &[0, 7, 8]).unwrap();
        s.persist(&target).unwrap();
        drop(s);
        // Truncate the footer: the file looks like a pre-footer persist.
        let legacy_len = PERSIST_HEADER_BYTES + 3 * 3 * 4;
        let f = OpenOptions::new().write(true).open(&target).unwrap();
        f.set_len(legacy_len).unwrap();
        drop(f);
        let reopened = TileStore::open(&target, 3).unwrap();
        assert_eq!(reopened.read_row(0).unwrap(), vec![0, 7, 8]);
        // A length that is neither legacy nor footer'd is rejected.
        let f = OpenOptions::new().write(true).open(&target).unwrap();
        f.set_len(legacy_len + 3).unwrap();
        drop(f);
        assert!(TileStore::open(&target, 3).is_err());
        std::fs::remove_file(&target).unwrap();
    }

    #[test]
    fn guard_reads_leave_fault_and_crash_ordinals_unperturbed() {
        // The guard must observe without being observed: identical op
        // accounting with the guard on and off.
        let mut ops = Vec::new();
        for guard in [SdcGuardMode::Off, SdcGuardMode::Checksum] {
            let mut s = TileStore::new(4, &StorageBackend::Disk(tmp_dir())).unwrap();
            s.set_sdc_guard(guard).unwrap();
            s.arm_crash(u64::MAX);
            s.arm_faults(DiskFaultPlan::default());
            s.write_rows(0, &[1; 8]).unwrap();
            s.read_block(0..2, 0..4).unwrap();
            s.verify_checksums().unwrap();
            s.get(3, 3).unwrap();
            ops.push((s.crash_ops(), s.io_ops()));
        }
        assert_eq!(ops[0], ops[1]);
    }

    #[test]
    fn concurrent_stores_use_distinct_files() {
        let dir = tmp_dir();
        let a = TileStore::new(2, &StorageBackend::Disk(dir.clone())).unwrap();
        let b = TileStore::new(2, &StorageBackend::Disk(dir)).unwrap();
        drop(a);
        // b still works after a's file is gone.
        assert_eq!(b.get(1, 1).unwrap(), 0);
    }

    /// Sharded backend with `rows` rows per spill file.
    fn sharded(dir: PathBuf, n: usize, rows: usize) -> StorageBackend {
        StorageBackend::DiskSharded {
            dir,
            shard_bytes: (rows * n * std::mem::size_of::<Dist>()) as u64,
        }
    }

    #[test]
    fn sharded_store_splits_at_threshold_and_roundtrips() {
        let dir = tmp_dir().join("sharding_roundtrip");
        let n = 5;
        {
            // Two rows per file ⇒ shards of 2, 2, 1 rows.
            let mut s = TileStore::new(n, &sharded(dir.clone(), n, 2)).unwrap();
            let files: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(files.len(), 3, "5 rows at 2 rows/file is 3 shards");
            // Initialization convention holds across every shard.
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(s.get(i, j).unwrap(), if i == j { 0 } else { INF });
                }
            }
            // A multi-row write spanning a shard boundary.
            let rows: Vec<Dist> = (0..3 * n as Dist).collect();
            s.write_rows(1, &rows).unwrap();
            assert_eq!(s.read_rows_concat(1, 3), rows);
            // Block ops crossing a shard boundary.
            s.write_block(1..4, 1..3, &[70, 71, 72, 73, 74, 75])
                .unwrap();
            assert_eq!(
                s.read_block(1..4, 1..3).unwrap(),
                vec![70, 71, 72, 73, 74, 75]
            );
            // Last row (sole row of the last shard) round-trips.
            let last: Vec<Dist> = (900..900 + n as Dist).collect();
            s.write_row(n - 1, &last).unwrap();
            assert_eq!(s.read_row(n - 1).unwrap(), last);
        }
        // Drop removes the whole shard family.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).unwrap();
    }

    impl TileStore {
        /// Test helper: `count` rows from `start`, concatenated.
        fn read_rows_concat(&self, start: usize, count: usize) -> Vec<Dist> {
            let mut out = Vec::new();
            for i in start..start + count {
                out.extend_from_slice(&self.read_row(i).unwrap());
            }
            out
        }
    }

    #[test]
    fn sharded_store_matches_single_file_bit_for_bit() {
        // Same content and same fault/crash ordinals at every split
        // threshold: sharding must be invisible to everything above it.
        let n = 6;
        let mut probes = Vec::new();
        for rows_per_shard in [1, 2, 4, n] {
            let dir = tmp_dir().join(format!("shard_parity_{rows_per_shard}"));
            let mut s = TileStore::new(n, &sharded(dir.clone(), n, rows_per_shard)).unwrap();
            s.arm_crash(u64::MAX);
            s.arm_faults(DiskFaultPlan::default());
            s.write_rows(0, &vec![3; 3 * n]).unwrap();
            s.write_block(2..5, 1..4, &[8; 9]).unwrap();
            s.write_row(n - 1, &vec![5; n]).unwrap();
            s.read_block(0..n, 0..n).unwrap();
            probes.push((s.to_dist_matrix().unwrap(), s.crash_ops(), s.io_ops()));
            drop(s);
            std::fs::remove_dir(&dir).unwrap();
        }
        for p in &probes[1..] {
            assert_eq!(p, &probes[0]);
        }
    }

    #[test]
    fn sharded_short_write_persists_half_the_logical_buffer() {
        // A ShortWrite on a call spanning shards persists the first half
        // of the *logical* buffer (here exactly row 0, in shard 0) and
        // leaves the rest untouched — one fault ordinal for the call.
        let dir = tmp_dir().join("shard_short_write");
        let n = 4;
        let mut s = TileStore::new(n, &sharded(dir.clone(), n, 1)).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::ShortWrite)],
            read_faults: vec![],
        });
        let err = s.write_rows(0, &[9; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(s.read_row(0).unwrap(), vec![9, 9, 9, 9]);
        assert_eq!(s.read_row(1).unwrap(), vec![INF, 0, INF, INF]);
        assert_eq!(s.io_ops().0, 1, "a spanning write is one ordinal");
        drop(s);
        std::fs::remove_dir(&dir).unwrap();
    }

    #[test]
    fn sharded_store_persists_and_guards_like_single_file() {
        let dir = tmp_dir().join("shard_persist");
        let out = tmp_dir().join("shard_persist_out");
        std::fs::create_dir_all(&out).unwrap();
        let n = 5;
        let mut s = TileStore::new(n, &sharded(dir.clone(), n, 2)).unwrap();
        s.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        s.write_row(4, &[1, 2, 3, 4, 0]).unwrap();
        s.verify_checksums().unwrap();
        // Bit flips land in the right shard and are still caught.
        s.arm_bit_flip(0, 3);
        s.write_row(2, &[7, 7, 7, 7, 7]).unwrap();
        assert!(s.read_row(2).is_err());
        // Repair, then persist → one merged file, reopenable.
        s.write_row(2, &[7, 7, 7, 7, 7]).unwrap();
        let target = out.join("m.bin");
        s.persist(&target).unwrap();
        drop(s);
        let reopened = TileStore::open(&target, n).unwrap();
        assert_eq!(reopened.read_row(4).unwrap(), vec![1, 2, 3, 4, 0]);
        assert_eq!(reopened.read_row(2).unwrap(), vec![7, 7, 7, 7, 7]);
        drop(reopened);
        std::fs::remove_file(&target).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }
}
