//! Host-side out-of-core result storage.
//!
//! The output distance matrix is orders of magnitude larger than the
//! input; for the paper's Table III graphs it fits in host RAM, for the
//! Table IV graphs it does not. [`TileStore`] abstracts both regimes:
//! the `Memory` backend holds one flat `n × n` buffer, the `Disk` backend
//! spills to a single file addressed with positional I/O — the same
//! row-major layout either way.

use apsp_graph::{Dist, INF};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// `ENOSPC` — the errno a full filesystem raises on write.
const ENOSPC_ERRNO: i32 = 28;

/// Where the result matrix lives.
#[derive(Debug, Clone)]
pub enum StorageBackend {
    /// Host RAM (Table III regime).
    Memory,
    /// A file inside this directory (Table IV regime). The directory is
    /// created if missing; the file is removed when the store drops.
    Disk(PathBuf),
}

/// One injectable disk-I/O fault (see [`DiskFaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// A positional write persists only the first half of its bytes,
    /// then fails with `ErrorKind::WriteZero` — the dangerous case where
    /// the store is already partially mutated when the error surfaces.
    ShortWrite,
    /// A positional read fills only the first half of its buffer, then
    /// fails with `ErrorKind::UnexpectedEof`.
    ShortRead,
    /// A positional write fails up front with the OS `ENOSPC` error
    /// (filesystem full); nothing is written.
    Enospc,
    /// The operation succeeds but stalls for this many microseconds
    /// first — a degraded spindle/network mount, not a failure.
    LatencyMicros(u64),
}

/// A deterministic schedule of disk faults, addressed by positional-I/O
/// ordinal: the store counts every positional write and read it issues
/// (a block write of `r` rows is `r` write ops) and fires the fault
/// whose ordinal matches. Ordinals are 0-based from the moment the plan
/// is armed. Plans only affect `Disk`-backed stores; arming one on a
/// memory store is a no-op by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// `(write-op ordinal, fault)` pairs. `ShortRead` entries here are
    /// ignored (wrong direction); keep entries direction-appropriate.
    pub write_faults: Vec<(u64, DiskFault)>,
    /// `(read-op ordinal, fault)` pairs. `ShortWrite`/`Enospc` entries
    /// here are ignored.
    pub read_faults: Vec<(u64, DiskFault)>,
}

impl DiskFaultPlan {
    fn write_fault_at(&self, op: u64) -> Option<DiskFault> {
        self.write_faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }

    fn read_fault_at(&self, op: u64) -> Option<DiskFault> {
        self.read_faults
            .iter()
            .find(|(at, _)| *at == op)
            .map(|(_, f)| *f)
    }
}

#[derive(Debug)]
struct FaultState {
    plan: DiskFaultPlan,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
}

enum Backing {
    Memory(Vec<Dist>),
    Disk { file: File, path: PathBuf },
}

/// An `n × n` row-major distance matrix in RAM or on disk.
pub struct TileStore {
    n: usize,
    backing: Backing,
    faults: Option<FaultState>,
}

impl std::fmt::Debug for TileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            Backing::Memory(_) => "memory",
            Backing::Disk { .. } => "disk",
        };
        write!(f, "TileStore {{ n: {}, backing: {kind} }}", self.n)
    }
}

impl TileStore {
    /// Create a store for an `n × n` matrix, initialized to `INF` with a
    /// zero diagonal (the convention every algorithm writes over).
    pub fn new(n: usize, backend: &StorageBackend) -> io::Result<Self> {
        match backend {
            StorageBackend::Memory => {
                let mut data = vec![INF; n * n];
                for i in 0..n {
                    data[i * n + i] = 0;
                }
                Ok(TileStore {
                    n,
                    backing: Backing::Memory(data),
                    faults: None,
                })
            }
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = unique_file(dir);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)?;
                file.set_len((n * n * std::mem::size_of::<Dist>()) as u64)?;
                let store = TileStore {
                    n,
                    backing: Backing::Disk { file, path },
                    faults: None,
                };
                // Materialize the INF + zero-diagonal initialization one
                // row at a time so even huge matrices never need n² RAM.
                let mut row = vec![INF; n];
                for i in 0..n {
                    if i > 0 {
                        row[i - 1] = INF;
                    }
                    row[i] = 0;
                    store.write_row_raw(i, &row)?;
                }
                Ok(store)
            }
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the store spills to disk.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.backing, Backing::Disk { .. })
    }

    /// Arm a deterministic [`DiskFaultPlan`]. Positional-I/O ordinals
    /// restart at zero; any previously armed plan is replaced. Memory
    /// backings issue no positional I/O, so the plan never fires there.
    pub fn arm_faults(&mut self, plan: DiskFaultPlan) {
        self.faults = Some(FaultState {
            plan,
            write_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
        });
    }

    /// Remove an armed fault plan.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// `(write, read)` positional-I/O ops issued since the plan was
    /// armed; `(0, 0)` when no plan is armed.
    pub fn io_ops(&self) -> (u64, u64) {
        match &self.faults {
            Some(f) => (
                f.write_ops.load(Ordering::Relaxed),
                f.read_ops.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// Overwrite full row `i`.
    pub fn write_row(&mut self, i: usize, row: &[Dist]) -> io::Result<()> {
        assert_eq!(row.len(), self.n, "row width mismatch");
        assert!(i < self.n, "row index out of range");
        let n = self.n;
        if let Backing::Memory(data) = &mut self.backing {
            data[i * n..(i + 1) * n].copy_from_slice(row);
            return Ok(());
        }
        self.write_row_raw(i, row)
    }

    /// Positional row write available on the shared (`&self`) path — only
    /// valid for the disk backing (used during initialization).
    fn write_row_raw(&self, i: usize, row: &[Dist]) -> io::Result<()> {
        match &self.backing {
            Backing::Memory(_) => unreachable!("memory writes go through write_row"),
            Backing::Disk { file, .. } => {
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                write_at(file, self.faults.as_ref(), cast_bytes(row), offset)
            }
        }
    }

    /// Overwrite `rows.len() / n` consecutive rows starting at `row_start`.
    pub fn write_rows(&mut self, row_start: usize, rows: &[Dist]) -> io::Result<()> {
        assert_eq!(rows.len() % self.n, 0, "partial rows in write_rows");
        let count = rows.len() / self.n;
        assert!(row_start + count <= self.n, "rows out of range");
        match &mut self.backing {
            Backing::Memory(data) => {
                data[row_start * self.n..row_start * self.n + rows.len()].copy_from_slice(rows);
                Ok(())
            }
            Backing::Disk { file, .. } => {
                let offset = (row_start * self.n * std::mem::size_of::<Dist>()) as u64;
                write_at(file, self.faults.as_ref(), cast_bytes(rows), offset)
            }
        }
    }

    /// Overwrite the rectangular block `row_range × col_range` with
    /// `data` (row-major, dimensions matching the ranges).
    pub fn write_block(
        &mut self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        data: &[Dist],
    ) -> io::Result<()> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        assert_eq!(data.len(), row_range.len() * width, "block size mismatch");
        match &mut self.backing {
            Backing::Memory(buf) => {
                for (r, i) in row_range.enumerate() {
                    let dst = i * self.n + col_range.start;
                    buf[dst..dst + width].copy_from_slice(&data[r * width..(r + 1) * width]);
                }
                Ok(())
            }
            Backing::Disk { file, .. } => {
                for (r, i) in row_range.enumerate() {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    write_at(
                        file,
                        self.faults.as_ref(),
                        cast_bytes(&data[r * width..(r + 1) * width]),
                        offset,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Read the rectangular block `row_range × col_range` (row-major).
    pub fn read_block(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> io::Result<Vec<Dist>> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        let mut out = Vec::with_capacity(row_range.len() * width);
        match &self.backing {
            Backing::Memory(data) => {
                for i in row_range {
                    let src = i * self.n + col_range.start;
                    out.extend_from_slice(&data[src..src + width]);
                }
            }
            Backing::Disk { file, .. } => {
                let mut row = vec![0 as Dist; width];
                for i in row_range {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    read_at(file, self.faults.as_ref(), cast_bytes_mut(&mut row), offset)?;
                    out.extend_from_slice(&row);
                }
            }
        }
        Ok(out)
    }

    /// Read full row `i`.
    pub fn read_row(&self, i: usize) -> io::Result<Vec<Dist>> {
        assert!(i < self.n);
        match &self.backing {
            Backing::Memory(data) => Ok(data[i * self.n..(i + 1) * self.n].to_vec()),
            Backing::Disk { file, .. } => {
                let mut row = vec![0 as Dist; self.n];
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                read_at(file, self.faults.as_ref(), cast_bytes_mut(&mut row), offset)?;
                Ok(row)
            }
        }
    }

    /// Read one element — convenience for spot checks; row-granular I/O
    /// for bulk access.
    pub fn get(&self, i: usize, j: usize) -> io::Result<Dist> {
        assert!(i < self.n && j < self.n);
        match &self.backing {
            Backing::Memory(data) => Ok(data[i * self.n + j]),
            Backing::Disk { file, .. } => {
                let mut one = [0 as Dist; 1];
                let offset = ((i * self.n + j) * std::mem::size_of::<Dist>()) as u64;
                read_at(file, self.faults.as_ref(), cast_bytes_mut(&mut one), offset)?;
                Ok(one[0])
            }
        }
    }

    /// Persist the matrix to `path` (raw little-endian row-major `u32`,
    /// the same layout the disk backing uses), so a computed result
    /// outlives the store. Readable again with [`TileStore::open`].
    pub fn persist<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut out = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        use std::io::Write;
        match &self.backing {
            Backing::Memory(data) => out.write_all(cast_bytes(data))?,
            Backing::Disk { .. } => {
                for i in 0..self.n {
                    let row = self.read_row(i)?;
                    out.write_all(cast_bytes(&row))?;
                }
            }
        }
        out.flush()
    }

    /// Open a previously [`TileStore::persist`]ed matrix read-write in
    /// place (the file is *not* deleted on drop — the caller owns it).
    pub fn open<P: AsRef<Path>>(path: P, n: usize) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let expect = (n * n * std::mem::size_of::<Dist>()) as u64;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file holds {actual} bytes, an {n}×{n} matrix needs {expect}"),
            ));
        }
        Ok(TileStore {
            n,
            backing: Backing::Disk {
                file,
                path: PathBuf::new(), // empty ⇒ drop() removes nothing
            },
            faults: None,
        })
    }

    /// Materialize the whole matrix (tests and small-n tooling only).
    pub fn to_dist_matrix(&self) -> io::Result<apsp_cpu::DistMatrix> {
        let mut data = Vec::with_capacity(self.n * self.n);
        match &self.backing {
            Backing::Memory(buf) => data.extend_from_slice(buf),
            Backing::Disk { .. } => {
                for i in 0..self.n {
                    data.extend_from_slice(&self.read_row(i)?);
                }
            }
        }
        Ok(apsp_cpu::DistMatrix::from_raw(self.n, data))
    }
}

impl Drop for TileStore {
    fn drop(&mut self) {
        if let Backing::Disk { path, .. } = &self.backing {
            // Stores opened from a user-owned file carry an empty path
            // and must survive the drop.
            if !path.as_os_str().is_empty() {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

fn unique_file(dir: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("apsp-tiles-{}-{}.bin", std::process::id(), id))
}

/// Positional write with fault application: counts the op against the
/// armed plan and fires any scheduled write-direction fault.
fn write_at(file: &File, faults: Option<&FaultState>, buf: &[u8], offset: u64) -> io::Result<()> {
    if let Some(state) = faults {
        let op = state.write_ops.fetch_add(1, Ordering::Relaxed);
        match state.plan.write_fault_at(op) {
            Some(DiskFault::Enospc) => {
                return Err(io::Error::from_raw_os_error(ENOSPC_ERRNO));
            }
            Some(DiskFault::ShortWrite) => {
                let half = buf.len() / 2;
                file.write_all_at(&buf[..half], offset)?;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected short write at op {op}: {half} of {} bytes persisted",
                        buf.len()
                    ),
                ));
            }
            Some(DiskFault::LatencyMicros(us)) => std::thread::sleep(Duration::from_micros(us)),
            Some(DiskFault::ShortRead) | None => {}
        }
    }
    file.write_all_at(buf, offset)
}

/// Positional read with fault application (see [`write_at`]).
fn read_at(
    file: &File,
    faults: Option<&FaultState>,
    buf: &mut [u8],
    offset: u64,
) -> io::Result<()> {
    if let Some(state) = faults {
        let op = state.read_ops.fetch_add(1, Ordering::Relaxed);
        match state.plan.read_fault_at(op) {
            Some(DiskFault::ShortRead) => {
                let half = buf.len() / 2;
                file.read_exact_at(&mut buf[..half], offset)?;
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "injected short read at op {op}: {half} of {} bytes filled",
                        buf.len()
                    ),
                ));
            }
            Some(DiskFault::LatencyMicros(us)) => std::thread::sleep(Duration::from_micros(us)),
            Some(DiskFault::ShortWrite) | Some(DiskFault::Enospc) | None => {}
        }
    }
    file.read_exact_at(buf, offset)
}

fn cast_bytes(d: &[Dist]) -> &[u8] {
    // SAFETY: u32 has no padding or invalid bit patterns.
    unsafe { std::slice::from_raw_parts(d.as_ptr() as *const u8, std::mem::size_of_val(d)) }
}

fn cast_bytes_mut(d: &mut [Dist]) -> &mut [u8] {
    // SAFETY: as above; all byte patterns are valid u32s.
    unsafe { std::slice::from_raw_parts_mut(d.as_mut_ptr() as *mut u8, std::mem::size_of_val(d)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        std::env::temp_dir().join("apsp_tile_store_tests")
    }

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::Disk(tmp_dir())]
    }

    #[test]
    fn initialization_convention() {
        for backend in backends() {
            let s = TileStore::new(4, &backend).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(s.get(i, j).unwrap(), if i == j { 0 } else { INF });
                }
            }
        }
    }

    #[test]
    fn row_roundtrip_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(1, &[7, 8, 9]).unwrap();
            assert_eq!(s.read_row(1).unwrap(), vec![7, 8, 9]);
            assert_eq!(s.read_row(0).unwrap()[0], 0);
        }
    }

    #[test]
    fn multi_row_and_block_writes() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.write_rows(1, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // rows 1–2
            assert_eq!(s.read_row(2).unwrap(), vec![5, 6, 7, 8]);
            s.write_block(0..2, 2..4, &[90, 91, 92, 93]).unwrap();
            assert_eq!(s.get(0, 2).unwrap(), 90);
            assert_eq!(s.get(1, 3).unwrap(), 93);
            // Untouched cells survive the block write.
            assert_eq!(s.get(1, 0).unwrap(), 1);
        }
    }

    #[test]
    fn read_block_roundtrips_write_block() {
        for backend in backends() {
            let mut s = TileStore::new(5, &backend).unwrap();
            let block: Vec<u32> = (0..6).collect(); // 2×3
            s.write_block(1..3, 2..5, &block).unwrap();
            assert_eq!(s.read_block(1..3, 2..5).unwrap(), block);
            // Sub-block of the written region.
            assert_eq!(s.read_block(2..3, 3..5).unwrap(), vec![4, 5]);
        }
    }

    #[test]
    fn to_dist_matrix_matches() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(0, &[0, 5, 6]).unwrap();
            let m = s.to_dist_matrix().unwrap();
            assert_eq!(m.get(0, 1), 5);
            assert_eq!(m.get(1, 1), 0);
        }
    }

    #[test]
    fn disk_file_is_cleaned_up() {
        let dir = tmp_dir();
        let path_probe;
        {
            let s = TileStore::new(8, &StorageBackend::Disk(dir.clone())).unwrap();
            assert!(s.is_disk_backed());
            path_probe = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect::<Vec<_>>();
            assert!(!path_probe.is_empty());
        }
        // After drop, no stale file with our pid remains among those seen.
        for p in path_probe {
            assert!(
                !p.exists()
                    || !p
                        .to_string_lossy()
                        .contains(&format!("-{}-", std::process::id()))
                    || std::fs::metadata(&p).is_err()
                    || !p.exists()
            );
        }
    }

    #[test]
    fn persist_and_open_roundtrip_both_backends() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        for (idx, backend) in backends().into_iter().enumerate() {
            let path = dir.join(format!("persist-{}.bin", idx));
            {
                let mut s = TileStore::new(3, &backend).unwrap();
                s.write_row(1, &[4, 5, 6]).unwrap();
                s.persist(&path).unwrap();
            }
            // Original store dropped; the persisted file survives.
            let reopened = TileStore::open(&path, 3).unwrap();
            assert_eq!(reopened.read_row(1).unwrap(), vec![4, 5, 6]);
            assert_eq!(reopened.get(0, 0).unwrap(), 0);
            drop(reopened);
            assert!(path.exists(), "opened store must not delete its file");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn open_rejects_wrong_size() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-size.bin");
        std::fs::write(&path, [0u8; 10]).unwrap();
        assert!(TileStore::open(&path, 3).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opened_store_is_writable() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writable.bin");
        TileStore::new(2, &StorageBackend::Memory)
            .unwrap()
            .persist(&path)
            .unwrap();
        let mut s = TileStore::open(&path, 2).unwrap();
        s.write_row(0, &[9, 9]).unwrap();
        drop(s);
        let again = TileStore::open(&path, 2).unwrap();
        assert_eq!(again.read_row(0).unwrap(), vec![9, 9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_row_width() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.write_row(0, &[1, 2]).unwrap();
    }

    #[test]
    fn last_row_roundtrips_on_disk() {
        // Off-by-one-row bugs in positional offsets show up exactly at
        // the file's tail, where a bad offset runs past EOF.
        let n = 7;
        let mut s = TileStore::new(n, &StorageBackend::Disk(tmp_dir())).unwrap();
        let row: Vec<Dist> = (100..100 + n as Dist).collect();
        s.write_row(n - 1, &row).unwrap();
        assert_eq!(s.read_row(n - 1).unwrap(), row);
        assert_eq!(s.get(n - 1, n - 1).unwrap(), row[n - 1]);
        // The row above is untouched.
        assert_eq!(s.get(n - 2, n - 2).unwrap(), 0);
        assert_eq!(s.get(n - 2, n - 1).unwrap(), INF);
    }

    #[test]
    fn drop_removes_exactly_its_spill_file() {
        let dir = tmp_dir().join("drop_cleanup");
        let path = {
            let s = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap();
            let survivor = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap();
            let files: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(files.len(), 2);
            drop(s);
            let remaining: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert_eq!(remaining.len(), 1, "dropped store must remove its file");
            // The survivor still reads after its sibling's cleanup.
            assert_eq!(survivor.get(0, 0).unwrap(), 0);
            remaining[0].clone()
        };
        assert!(!path.exists(), "second drop removes the last file");
        std::fs::remove_dir(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unwritable_directory_surfaces_io_error() {
        use std::os::unix::fs::PermissionsExt;
        if effective_uid() == 0 {
            return; // root bypasses permission bits; nothing to test
        }
        let dir = tmp_dir().join("readonly_dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        let err = TileStore::new(4, &StorageBackend::Disk(dir.clone())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        std::fs::remove_dir(&dir).unwrap();
    }

    #[cfg(unix)]
    fn effective_uid() -> u32 {
        // Avoid a libc dependency: the uid is in /proc for this purpose.
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Uid:"))
                    .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
            })
            .and_then(|u| u.parse().ok())
            .unwrap_or(u32::MAX)
    }

    #[test]
    fn fault_plan_enospc_fires_at_scheduled_write() {
        let mut s = TileStore::new(3, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(1, DiskFault::Enospc)],
            read_faults: vec![],
        });
        s.write_row(0, &[1, 2, 3]).unwrap(); // op 0: clean
        let err = s.write_row(1, &[4, 5, 6]).unwrap_err(); // op 1: ENOSPC
        assert_eq!(err.raw_os_error(), Some(ENOSPC_ERRNO));
        // Nothing from the failed write landed.
        assert_eq!(s.read_row(1).unwrap(), vec![INF, 0, INF]);
        // Subsequent ops are clean again.
        s.write_row(1, &[4, 5, 6]).unwrap();
        assert_eq!(s.read_row(1).unwrap(), vec![4, 5, 6]);
        assert_eq!(s.io_ops().0, 3);
    }

    #[test]
    fn fault_plan_short_write_mutates_then_errors() {
        let mut s = TileStore::new(4, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::ShortWrite)],
            read_faults: vec![],
        });
        let err = s.write_row(2, &[9, 9, 9, 9]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // The dangerous part: half the row (2 of 4 u32s) did land.
        assert_eq!(s.read_row(2).unwrap(), vec![9, 9, 0, INF]);
    }

    #[test]
    fn fault_plan_short_read_and_latency() {
        let mut s = TileStore::new(4, &StorageBackend::Disk(tmp_dir())).unwrap();
        s.write_row(1, &[5, 6, 7, 8]).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::LatencyMicros(50))],
            read_faults: vec![(0, DiskFault::ShortRead), (1, DiskFault::LatencyMicros(50))],
        });
        let err = s.read_row(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Latency faults delay but succeed, on both directions.
        assert_eq!(s.read_row(1).unwrap(), vec![5, 6, 7, 8]);
        s.write_row(0, &[1, 1, 1, 1]).unwrap();
        assert_eq!(s.io_ops(), (1, 2));
        s.disarm_faults();
        assert_eq!(s.io_ops(), (0, 0));
    }

    #[test]
    fn fault_plan_is_inert_on_memory_backing() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.arm_faults(DiskFaultPlan {
            write_faults: vec![(0, DiskFault::Enospc)],
            read_faults: vec![(0, DiskFault::ShortRead)],
        });
        s.write_row(0, &[1, 2, 3]).unwrap();
        assert_eq!(s.read_row(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            s.io_ops(),
            (0, 0),
            "memory backing issues no positional I/O"
        );
    }

    #[test]
    fn concurrent_stores_use_distinct_files() {
        let dir = tmp_dir();
        let a = TileStore::new(2, &StorageBackend::Disk(dir.clone())).unwrap();
        let b = TileStore::new(2, &StorageBackend::Disk(dir)).unwrap();
        drop(a);
        // b still works after a's file is gone.
        assert_eq!(b.get(1, 1).unwrap(), 0);
    }
}
