//! Host-side out-of-core result storage.
//!
//! The output distance matrix is orders of magnitude larger than the
//! input; for the paper's Table III graphs it fits in host RAM, for the
//! Table IV graphs it does not. [`TileStore`] abstracts both regimes:
//! the `Memory` backend holds one flat `n × n` buffer, the `Disk` backend
//! spills to a single file addressed with positional I/O — the same
//! row-major layout either way.

use apsp_graph::{Dist, INF};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Where the result matrix lives.
#[derive(Debug, Clone)]
pub enum StorageBackend {
    /// Host RAM (Table III regime).
    Memory,
    /// A file inside this directory (Table IV regime). The directory is
    /// created if missing; the file is removed when the store drops.
    Disk(PathBuf),
}

enum Backing {
    Memory(Vec<Dist>),
    Disk { file: File, path: PathBuf },
}

/// An `n × n` row-major distance matrix in RAM or on disk.
pub struct TileStore {
    n: usize,
    backing: Backing,
}

impl std::fmt::Debug for TileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            Backing::Memory(_) => "memory",
            Backing::Disk { .. } => "disk",
        };
        write!(f, "TileStore {{ n: {}, backing: {kind} }}", self.n)
    }
}

impl TileStore {
    /// Create a store for an `n × n` matrix, initialized to `INF` with a
    /// zero diagonal (the convention every algorithm writes over).
    pub fn new(n: usize, backend: &StorageBackend) -> io::Result<Self> {
        match backend {
            StorageBackend::Memory => {
                let mut data = vec![INF; n * n];
                for i in 0..n {
                    data[i * n + i] = 0;
                }
                Ok(TileStore {
                    n,
                    backing: Backing::Memory(data),
                })
            }
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = unique_file(dir);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)?;
                file.set_len((n * n * std::mem::size_of::<Dist>()) as u64)?;
                let store = TileStore {
                    n,
                    backing: Backing::Disk { file, path },
                };
                // Materialize the INF + zero-diagonal initialization one
                // row at a time so even huge matrices never need n² RAM.
                let mut row = vec![INF; n];
                for i in 0..n {
                    if i > 0 {
                        row[i - 1] = INF;
                    }
                    row[i] = 0;
                    store.write_row_raw(i, &row)?;
                }
                Ok(store)
            }
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the store spills to disk.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.backing, Backing::Disk { .. })
    }

    /// Overwrite full row `i`.
    pub fn write_row(&mut self, i: usize, row: &[Dist]) -> io::Result<()> {
        assert_eq!(row.len(), self.n, "row width mismatch");
        assert!(i < self.n, "row index out of range");
        let n = self.n;
        if let Backing::Memory(data) = &mut self.backing {
            data[i * n..(i + 1) * n].copy_from_slice(row);
            return Ok(());
        }
        self.write_row_raw(i, row)
    }

    /// Positional row write available on the shared (`&self`) path — only
    /// valid for the disk backing (used during initialization).
    fn write_row_raw(&self, i: usize, row: &[Dist]) -> io::Result<()> {
        match &self.backing {
            Backing::Memory(_) => unreachable!("memory writes go through write_row"),
            Backing::Disk { file, .. } => {
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                file.write_all_at(cast_bytes(row), offset)
            }
        }
    }

    /// Overwrite `rows.len() / n` consecutive rows starting at `row_start`.
    pub fn write_rows(&mut self, row_start: usize, rows: &[Dist]) -> io::Result<()> {
        assert_eq!(rows.len() % self.n, 0, "partial rows in write_rows");
        let count = rows.len() / self.n;
        assert!(row_start + count <= self.n, "rows out of range");
        match &mut self.backing {
            Backing::Memory(data) => {
                data[row_start * self.n..row_start * self.n + rows.len()].copy_from_slice(rows);
                Ok(())
            }
            Backing::Disk { file, .. } => {
                let offset = (row_start * self.n * std::mem::size_of::<Dist>()) as u64;
                file.write_all_at(cast_bytes(rows), offset)
            }
        }
    }

    /// Overwrite the rectangular block `row_range × col_range` with
    /// `data` (row-major, dimensions matching the ranges).
    pub fn write_block(
        &mut self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
        data: &[Dist],
    ) -> io::Result<()> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        assert_eq!(data.len(), row_range.len() * width, "block size mismatch");
        match &mut self.backing {
            Backing::Memory(buf) => {
                for (r, i) in row_range.enumerate() {
                    let dst = i * self.n + col_range.start;
                    buf[dst..dst + width].copy_from_slice(&data[r * width..(r + 1) * width]);
                }
                Ok(())
            }
            Backing::Disk { file, .. } => {
                for (r, i) in row_range.enumerate() {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    file.write_all_at(cast_bytes(&data[r * width..(r + 1) * width]), offset)?;
                }
                Ok(())
            }
        }
    }

    /// Read the rectangular block `row_range × col_range` (row-major).
    pub fn read_block(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> io::Result<Vec<Dist>> {
        assert!(row_range.end <= self.n && col_range.end <= self.n);
        let width = col_range.len();
        let mut out = Vec::with_capacity(row_range.len() * width);
        match &self.backing {
            Backing::Memory(data) => {
                for i in row_range {
                    let src = i * self.n + col_range.start;
                    out.extend_from_slice(&data[src..src + width]);
                }
            }
            Backing::Disk { file, .. } => {
                let mut row = vec![0 as Dist; width];
                for i in row_range {
                    let offset =
                        ((i * self.n + col_range.start) * std::mem::size_of::<Dist>()) as u64;
                    file.read_exact_at(cast_bytes_mut(&mut row), offset)?;
                    out.extend_from_slice(&row);
                }
            }
        }
        Ok(out)
    }

    /// Read full row `i`.
    pub fn read_row(&self, i: usize) -> io::Result<Vec<Dist>> {
        assert!(i < self.n);
        match &self.backing {
            Backing::Memory(data) => Ok(data[i * self.n..(i + 1) * self.n].to_vec()),
            Backing::Disk { file, .. } => {
                let mut row = vec![0 as Dist; self.n];
                let offset = (i * self.n * std::mem::size_of::<Dist>()) as u64;
                file.read_exact_at(cast_bytes_mut(&mut row), offset)?;
                Ok(row)
            }
        }
    }

    /// Read one element — convenience for spot checks; row-granular I/O
    /// for bulk access.
    pub fn get(&self, i: usize, j: usize) -> io::Result<Dist> {
        assert!(i < self.n && j < self.n);
        match &self.backing {
            Backing::Memory(data) => Ok(data[i * self.n + j]),
            Backing::Disk { file, .. } => {
                let mut one = [0 as Dist; 1];
                let offset = ((i * self.n + j) * std::mem::size_of::<Dist>()) as u64;
                file.read_exact_at(cast_bytes_mut(&mut one), offset)?;
                Ok(one[0])
            }
        }
    }

    /// Persist the matrix to `path` (raw little-endian row-major `u32`,
    /// the same layout the disk backing uses), so a computed result
    /// outlives the store. Readable again with [`TileStore::open`].
    pub fn persist<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut out = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        use std::io::Write;
        match &self.backing {
            Backing::Memory(data) => out.write_all(cast_bytes(data))?,
            Backing::Disk { .. } => {
                for i in 0..self.n {
                    let row = self.read_row(i)?;
                    out.write_all(cast_bytes(&row))?;
                }
            }
        }
        out.flush()
    }

    /// Open a previously [`TileStore::persist`]ed matrix read-write in
    /// place (the file is *not* deleted on drop — the caller owns it).
    pub fn open<P: AsRef<Path>>(path: P, n: usize) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let expect = (n * n * std::mem::size_of::<Dist>()) as u64;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file holds {actual} bytes, an {n}×{n} matrix needs {expect}"),
            ));
        }
        Ok(TileStore {
            n,
            backing: Backing::Disk {
                file,
                path: PathBuf::new(), // empty ⇒ drop() removes nothing
            },
        })
    }

    /// Materialize the whole matrix (tests and small-n tooling only).
    pub fn to_dist_matrix(&self) -> io::Result<apsp_cpu::DistMatrix> {
        let mut data = Vec::with_capacity(self.n * self.n);
        match &self.backing {
            Backing::Memory(buf) => data.extend_from_slice(buf),
            Backing::Disk { .. } => {
                for i in 0..self.n {
                    data.extend_from_slice(&self.read_row(i)?);
                }
            }
        }
        Ok(apsp_cpu::DistMatrix::from_raw(self.n, data))
    }
}

impl Drop for TileStore {
    fn drop(&mut self) {
        if let Backing::Disk { path, .. } = &self.backing {
            // Stores opened from a user-owned file carry an empty path
            // and must survive the drop.
            if !path.as_os_str().is_empty() {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

fn unique_file(dir: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "apsp-tiles-{}-{}.bin",
        std::process::id(),
        id
    ))
}

fn cast_bytes(d: &[Dist]) -> &[u8] {
    // SAFETY: u32 has no padding or invalid bit patterns.
    unsafe { std::slice::from_raw_parts(d.as_ptr() as *const u8, std::mem::size_of_val(d)) }
}

fn cast_bytes_mut(d: &mut [Dist]) -> &mut [u8] {
    // SAFETY: as above; all byte patterns are valid u32s.
    unsafe { std::slice::from_raw_parts_mut(d.as_mut_ptr() as *mut u8, std::mem::size_of_val(d)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        std::env::temp_dir().join("apsp_tile_store_tests")
    }

    fn backends() -> Vec<StorageBackend> {
        vec![StorageBackend::Memory, StorageBackend::Disk(tmp_dir())]
    }

    #[test]
    fn initialization_convention() {
        for backend in backends() {
            let s = TileStore::new(4, &backend).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(s.get(i, j).unwrap(), if i == j { 0 } else { INF });
                }
            }
        }
    }

    #[test]
    fn row_roundtrip_both_backends() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(1, &[7, 8, 9]).unwrap();
            assert_eq!(s.read_row(1).unwrap(), vec![7, 8, 9]);
            assert_eq!(s.read_row(0).unwrap()[0], 0);
        }
    }

    #[test]
    fn multi_row_and_block_writes() {
        for backend in backends() {
            let mut s = TileStore::new(4, &backend).unwrap();
            s.write_rows(1, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // rows 1–2
            assert_eq!(s.read_row(2).unwrap(), vec![5, 6, 7, 8]);
            s.write_block(0..2, 2..4, &[90, 91, 92, 93]).unwrap();
            assert_eq!(s.get(0, 2).unwrap(), 90);
            assert_eq!(s.get(1, 3).unwrap(), 93);
            // Untouched cells survive the block write.
            assert_eq!(s.get(1, 0).unwrap(), 1);
        }
    }

    #[test]
    fn read_block_roundtrips_write_block() {
        for backend in backends() {
            let mut s = TileStore::new(5, &backend).unwrap();
            let block: Vec<u32> = (0..6).collect(); // 2×3
            s.write_block(1..3, 2..5, &block).unwrap();
            assert_eq!(s.read_block(1..3, 2..5).unwrap(), block);
            // Sub-block of the written region.
            assert_eq!(s.read_block(2..3, 3..5).unwrap(), vec![4, 5]);
        }
    }

    #[test]
    fn to_dist_matrix_matches() {
        for backend in backends() {
            let mut s = TileStore::new(3, &backend).unwrap();
            s.write_row(0, &[0, 5, 6]).unwrap();
            let m = s.to_dist_matrix().unwrap();
            assert_eq!(m.get(0, 1), 5);
            assert_eq!(m.get(1, 1), 0);
        }
    }

    #[test]
    fn disk_file_is_cleaned_up() {
        let dir = tmp_dir();
        let path_probe;
        {
            let s = TileStore::new(8, &StorageBackend::Disk(dir.clone())).unwrap();
            assert!(s.is_disk_backed());
            path_probe = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect::<Vec<_>>();
            assert!(!path_probe.is_empty());
        }
        // After drop, no stale file with our pid remains among those seen.
        for p in path_probe {
            assert!(!p.exists() || !p.to_string_lossy().contains(&format!("-{}-", std::process::id())) || std::fs::metadata(&p).is_err() || !p.exists());
        }
    }

    #[test]
    fn persist_and_open_roundtrip_both_backends() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        for (idx, backend) in backends().into_iter().enumerate() {
            let path = dir.join(format!("persist-{}.bin", idx));
            {
                let mut s = TileStore::new(3, &backend).unwrap();
                s.write_row(1, &[4, 5, 6]).unwrap();
                s.persist(&path).unwrap();
            }
            // Original store dropped; the persisted file survives.
            let reopened = TileStore::open(&path, 3).unwrap();
            assert_eq!(reopened.read_row(1).unwrap(), vec![4, 5, 6]);
            assert_eq!(reopened.get(0, 0).unwrap(), 0);
            drop(reopened);
            assert!(path.exists(), "opened store must not delete its file");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn open_rejects_wrong_size() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-size.bin");
        std::fs::write(&path, [0u8; 10]).unwrap();
        assert!(TileStore::open(&path, 3).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn opened_store_is_writable() {
        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writable.bin");
        TileStore::new(2, &StorageBackend::Memory)
            .unwrap()
            .persist(&path)
            .unwrap();
        let mut s = TileStore::open(&path, 2).unwrap();
        s.write_row(0, &[9, 9]).unwrap();
        drop(s);
        let again = TileStore::open(&path, 2).unwrap();
        assert_eq!(again.read_row(0).unwrap(), vec![9, 9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_row_width() {
        let mut s = TileStore::new(3, &StorageBackend::Memory).unwrap();
        s.write_row(0, &[1, 2]).unwrap();
    }

    #[test]
    fn concurrent_stores_use_distinct_files() {
        let dir = tmp_dir();
        let a = TileStore::new(2, &StorageBackend::Disk(dir.clone())).unwrap();
        let b = TileStore::new(2, &StorageBackend::Disk(dir)).unwrap();
        drop(a);
        // b still works after a's file is gone.
        assert_eq!(b.get(1, 1).unwrap(), 0);
    }
}
