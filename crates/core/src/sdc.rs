//! Semantic (ABFT) silent-corruption guards for the tropical semiring.
//!
//! The tile store's checksum registry (see `tile_store`) catches
//! corruption of *at-rest* host data: a bit that flips between a write
//! and the next read no longer matches its recorded FNV hash. What the
//! registry cannot see is corruption that happens *in flight* — a flip
//! inside a device buffer between upload and download produces a wrong
//! result panel that the store then dutifully checksums as legitimate.
//!
//! This module closes that gap with algorithm-based fault tolerance:
//! invariants of the min-plus semiring that every correct relaxation
//! round must preserve, evaluated at the barriers the drivers already
//! synchronize on.
//!
//! * **Monotone non-increase.** Floyd-Warshall (and any relaxation
//!   sweep) only ever *lowers* distances, so the per-row tropical sum
//!   `Σ_j min(d[i][j], INF)` must not increase between consecutive
//!   barriers. A flip that raises any entry — the common case for a
//!   high-bit flip on a small distance — raises its row sum.
//! * **Sampled triangle inequalities.** After pivot round `kb` of
//!   blocked FW, `d[i][j] ≤ d[i][k] + d[k][j]` holds for every `k` in a
//!   *completed* pivot block (`k < (kb+1)·block`) and all `i, j`. For
//!   Johnson batches and boundary flushes, completed rows are final
//!   metric-closure rows, so the inequality holds for `i, k` drawn from
//!   the completed set and every `j`. The guard draws a seeded,
//!   deterministic sample of `(i, k)` pairs per barrier and checks the
//!   full `j` sweep for each; tiny stores are checked exhaustively.
//!
//! All arithmetic saturates at [`INF`] in `u64`, so the checks are
//! exact at the unreachable boundary — no overflow, no false positives
//! on clean runs (a property the conformance corpus pins).
//!
//! **Determinism.** Guard reads go through
//! `TileStore::guard_read_row`, which bypasses fault plans, crash
//! points, supervision ticks, and telemetry counters. Enabling the
//! guard never perturbs injected-fault ordinals or the simulated
//! clock; a clean run computes bit-identical distances with the guard
//! on or off.

use crate::error::ApspError;
use crate::options::SdcGuardMode;
use crate::supervisor::splitmix64;
use crate::tile_store::{TileStore, SDC_PANEL_ROWS};
use apsp_graph::{Dist, INF};

/// Triangle-inequality `(i, k)` pairs sampled per barrier. Stores with
/// no more candidate pairs than this are swept exhaustively.
const DEFAULT_TRIANGLE_SAMPLES: usize = 16;

/// Sampling seed shared by every driver's guard, so clean reruns probe
/// the same triangles and stay byte-identical.
pub(crate) const SDC_SAMPLE_SEED: u64 = 0xABF7_0D15_EA5E_5EED;

/// Clamp an entry to the unreachable ceiling before arithmetic.
fn sat(d: Dist) -> u64 {
    (d as u64).min(INF as u64)
}

/// Saturating min-plus composition: `d_ik ⊕ d_kj` in `u64`, capped at
/// [`INF`] so two near-INF legs cannot wrap or exceed the ceiling.
fn compose(d_ik: Dist, d_kj: Dist) -> u64 {
    (sat(d_ik) + sat(d_kj)).min(INF as u64)
}

/// Barrier-evaluated invariant guard. One lives in each supervised
/// driver loop; the driver calls [`SdcGuard::check_round`] (FW) or
/// [`SdcGuard::check_completed_rows`] (Johnson, boundary) right after
/// each barrier it already synchronizes on.
#[derive(Debug)]
pub struct SdcGuard {
    mode: SdcGuardMode,
    seed: u64,
    samples: usize,
    /// Per-row tropical sums at the previous barrier; empty until the
    /// first semantic check seeds it.
    row_sums: Vec<u64>,
}

impl SdcGuard {
    /// A guard at `mode`, with `seed` driving the deterministic
    /// triangle sampling.
    pub fn new(mode: SdcGuardMode, seed: u64) -> SdcGuard {
        SdcGuard {
            mode,
            seed,
            samples: DEFAULT_TRIANGLE_SAMPLES,
            row_sums: Vec::new(),
        }
    }

    /// The guard's mode.
    pub fn mode(&self) -> SdcGuardMode {
        self.mode
    }

    /// Override the per-barrier triangle sample budget (tests).
    #[cfg(test)]
    pub(crate) fn with_samples(mut self, samples: usize) -> SdcGuard {
        self.samples = samples;
        self
    }

    /// Drop the monotone baseline. Recovery *raises* store entries by
    /// design (a reset panel returns to adjacency distances), so the
    /// driver must call this after any recovery rung before resuming —
    /// otherwise the first post-recovery barrier would indict the
    /// recovery itself.
    pub fn reset_baseline(&mut self) {
        self.row_sums.clear();
    }

    /// Full barrier check for round-structured drivers (blocked FW):
    /// checksum re-verification, then — in [`SdcGuardMode::Full`] — the
    /// monotone row-sum check and triangle samples with `k` drawn from
    /// the completed pivot rows `0..k_limit`.
    pub fn check_round(
        &mut self,
        store: &TileStore,
        round: usize,
        k_limit: usize,
    ) -> Result<(), ApspError> {
        if !self.mode.is_on() {
            return Ok(());
        }
        store.verify_checksums()?;
        if !self.mode.semantic() {
            return Ok(());
        }
        self.check_monotone_sums(store, round)?;
        let n = store.n();
        self.check_triangles(
            store,
            round,
            &(0..n).collect::<Vec<_>>(),
            &Vec::from_iter(0..k_limit.min(n)),
        )
    }

    /// Barrier check for drivers that finalize whole rows (Johnson
    /// batches, boundary flushes): checksum re-verification, then — in
    /// [`SdcGuardMode::Full`] — triangle samples with both `i` and `k`
    /// drawn from `completed` (rows whose metric closure is final).
    /// Completed rows are written once, so no monotone baseline
    /// applies.
    pub fn check_completed_rows(
        &mut self,
        store: &TileStore,
        round: usize,
        completed: &[usize],
    ) -> Result<(), ApspError> {
        if !self.mode.is_on() {
            return Ok(());
        }
        store.verify_checksums()?;
        if !self.mode.semantic() {
            return Ok(());
        }
        self.check_triangles(store, round, completed, completed)
    }

    /// Per-row tropical sums must not increase between barriers. The
    /// violated row localizes the damage to its panel. The same sweep
    /// enforces the value-range invariant: no clean computation ever
    /// stores a distance above [`INF`], so an out-of-range entry is
    /// corruption even when `sat` would clamp it out of the sums (a
    /// bit flip in the high bits of an INF entry leaves the clamped
    /// sum unchanged).
    fn check_monotone_sums(&mut self, store: &TileStore, round: usize) -> Result<(), ApspError> {
        let n = store.n();
        let mut sums = Vec::with_capacity(n);
        for i in 0..n {
            let row = store.guard_read_row(i)?;
            // Diagonal invariant: `d[i][i]` is exactly 0 from
            // initialization onward (no negative cycles), and it is the
            // one entry a round-0 corruption can *raise* without tripping
            // the sum check — the surrounding relaxations lower the rest
            // of the row, masking the raise. Device-side damage can span
            // rows, so the violation reports unlocalized.
            if row[i] != 0 {
                return Err(ApspError::SilentCorruption {
                    panel: usize::MAX,
                    round,
                    detail: format!(
                        "diagonal entry d[{i}][{i}] = {} must be 0; the computation was \
                         corrupted upstream of the store",
                        row[i]
                    ),
                });
            }
            if let Some((j, &d)) = row.iter().enumerate().find(|&(_, &d)| d > INF) {
                return Err(ApspError::SilentCorruption {
                    panel: i / SDC_PANEL_ROWS,
                    round,
                    detail: format!(
                        "d[{i}][{j}] = {d} exceeds the unreachable ceiling {INF}; no clean \
                         computation stores a distance above it"
                    ),
                });
            }
            sums.push(row.iter().map(|&d| sat(d)).sum::<u64>());
        }
        if self.row_sums.len() == n {
            for (i, (&new, &old)) in sums.iter().zip(&self.row_sums).enumerate() {
                if new > old {
                    return Err(ApspError::SilentCorruption {
                        panel: i / SDC_PANEL_ROWS,
                        round,
                        detail: format!(
                            "row {i} tropical sum increased across a relaxation round \
                             ({old} -> {new}); distances are monotone non-increasing"
                        ),
                    });
                }
            }
        }
        self.row_sums = sums;
        Ok(())
    }

    /// Check `d[i][j] ≤ d[i][k] ⊕ d[k][j]` for a seeded sample of
    /// `(i, k)` pairs (exhaustive when the candidate space is small),
    /// sweeping every `j`. A violation cannot attribute the damage to
    /// one row, so it reports unlocalized (`panel == usize::MAX`).
    fn check_triangles(
        &self,
        store: &TileStore,
        round: usize,
        is: &[usize],
        ks: &[usize],
    ) -> Result<(), ApspError> {
        if is.is_empty() || ks.is_empty() {
            return Ok(());
        }
        let pairs = is.len().saturating_mul(ks.len());
        let mut state = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let check_pair = |i: usize, k: usize| -> Result<(), ApspError> {
            let row_i = store.guard_read_row(i)?;
            let row_k = store.guard_read_row(k)?;
            // Sampled diagonal invariant (see `check_monotone_sums`).
            for (r, row) in [(i, &row_i), (k, &row_k)] {
                if row[r] != 0 {
                    return Err(ApspError::SilentCorruption {
                        panel: usize::MAX,
                        round,
                        detail: format!(
                            "diagonal entry d[{r}][{r}] = {} must be 0; the computation \
                             was corrupted upstream of the store",
                            row[r]
                        ),
                    });
                }
            }
            let d_ik = row_i[k];
            for (j, (&d_ij, &d_kj)) in row_i.iter().zip(&row_k).enumerate() {
                // Range invariant on the sampled rows: entries above the
                // unreachable ceiling are corruption `sat` would hide.
                for (r, d) in [(i, d_ij), (k, d_kj)] {
                    if d > INF {
                        return Err(ApspError::SilentCorruption {
                            panel: r / SDC_PANEL_ROWS,
                            round,
                            detail: format!(
                                "d[{r}][{j}] = {d} exceeds the unreachable ceiling {INF}; \
                                 no clean computation stores a distance above it"
                            ),
                        });
                    }
                }
                if sat(d_ij) > compose(d_ik, d_kj) {
                    return Err(ApspError::SilentCorruption {
                        panel: usize::MAX,
                        round,
                        detail: format!(
                            "triangle inequality violated: d[{i}][{j}] = {d_ij} exceeds \
                             d[{i}][{k}] + d[{k}][{j}] = {} + {}",
                            row_i[k], d_kj
                        ),
                    });
                }
            }
            Ok(())
        };
        if pairs <= self.samples {
            for &i in is {
                for &k in ks {
                    check_pair(i, k)?;
                }
            }
        } else {
            for _ in 0..self.samples {
                let i = is[(splitmix64(&mut state) % is.len() as u64) as usize];
                let k = ks[(splitmix64(&mut state) % ks.len() as u64) as usize];
                check_pair(i, k)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ApspErrorKind;
    use crate::tile_store::StorageBackend;

    /// A 4-vertex metric closure (a path 0-1-2-3 with unit weights).
    fn closed_store() -> TileStore {
        let n = 4;
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        for i in 0..n {
            let row: Vec<Dist> = (0..n)
                .map(|j| (i as i64 - j as i64).unsigned_abs() as Dist)
                .collect();
            store.write_row(i, &row).unwrap();
        }
        store
    }

    #[test]
    fn off_mode_checks_nothing() {
        let store = closed_store();
        let mut guard = SdcGuard::new(SdcGuardMode::Off, 1);
        assert!(!guard.mode().is_on());
        guard.check_round(&store, 0, 4).unwrap();
        guard.check_completed_rows(&store, 0, &[0, 1]).unwrap();
    }

    #[test]
    fn clean_rounds_pass_all_levels_on_both_backends() {
        for backend in [
            StorageBackend::Memory,
            StorageBackend::Disk(std::env::temp_dir().join("apsp-sdc-guard-clean")),
        ] {
            let n = 4;
            let mut store = TileStore::new(n, &backend).unwrap();
            store.set_sdc_guard(SdcGuardMode::Full).unwrap();
            for i in 0..n {
                let row: Vec<Dist> = (0..n)
                    .map(|j| (i as i64 - j as i64).unsigned_abs() as Dist)
                    .collect();
                store.write_row(i, &row).unwrap();
            }
            let mut guard = SdcGuard::new(SdcGuardMode::Full, 7);
            for round in 0..3 {
                guard.check_round(&store, round, n).unwrap();
                guard
                    .check_completed_rows(&store, round, &(0..n).collect::<Vec<_>>())
                    .unwrap();
            }
        }
    }

    #[test]
    fn increased_row_sum_is_caught_and_localized() {
        let mut store = closed_store();
        let mut guard = SdcGuard::new(SdcGuardMode::Full, 7);
        guard.check_round(&store, 0, 0).unwrap(); // seeds the baseline
                                                  // A "device-computed" update that *raises* d[2][3]: the store
                                                  // checksums it as a legitimate write, only ABFT can object.
        store.write_row(2, &[2, 1, 0, 9]).unwrap();
        let err = guard.check_round(&store, 1, 0).unwrap_err();
        match err {
            ApspError::SilentCorruption { panel, round, .. } => {
                assert_eq!(panel, 2 / SDC_PANEL_ROWS);
                assert_eq!(round, 1);
            }
            other => panic!("expected SilentCorruption, got {other:?}"),
        }
        // Checksum-only mode cannot see semantic damage.
        let mut weak = SdcGuard::new(SdcGuardMode::Checksum, 7);
        weak.check_round(&store, 1, 0).unwrap();
    }

    #[test]
    fn triangle_violation_is_caught_unlocalized() {
        let mut store = closed_store();
        // d[0][3] should be ≤ d[0][1] + d[1][3] = 1 + 2; corrupt it up.
        store.write_row(0, &[0, 1, 2, 40]).unwrap();
        // Fresh guard: no baseline, so only the triangle sweep can fire.
        let mut guard = SdcGuard::new(SdcGuardMode::Full, 7);
        let err = guard.check_round(&store, 5, 4).unwrap_err();
        match err {
            ApspError::SilentCorruption { panel, round, .. } => {
                assert_eq!(panel, usize::MAX);
                assert_eq!(round, 5);
            }
            other => panic!("expected SilentCorruption, got {other:?}"),
        }
        assert_eq!(
            guard.check_round(&store, 5, 4).unwrap_err().kind(),
            ApspErrorKind::SilentCorruption
        );
    }

    #[test]
    fn triangle_check_respects_the_completed_pivot_limit() {
        let mut store = closed_store();
        // The same corruption as above, but only pivot rows 0..1 are
        // complete — and k = 0 alone cannot witness d[0][3]'s damage
        // within an exhaustive sweep of the permitted pairs... except
        // through d[0][3] ≤ d[0][0] + d[0][3]. Corrupt row 3 instead so
        // every admissible composition stays consistent.
        store.write_row(3, &[40, 2, 1, 0]).unwrap();
        let mut guard = SdcGuard::new(SdcGuardMode::Full, 7);
        // k_limit = 1: d[3][0] ≤ d[3][0] + d[0][0] holds, damage unseen.
        guard.check_round(&store, 0, 1).unwrap();
        guard.reset_baseline();
        // Once pivot row 1 completes, d[3][0] ≤ d[3][1] + d[1][0] = 3
        // is admissible and the corruption surfaces.
        let err = guard.check_round(&store, 1, 2).unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::SilentCorruption);
    }

    #[test]
    fn saturated_entries_never_false_positive() {
        let n = 3;
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        // A disconnected pair: INF legs must compose without overflow
        // and INF entries must pass `INF ≤ INF ⊕ anything`.
        store.write_row(0, &[0, INF, INF]).unwrap();
        store.write_row(1, &[INF, 0, 1]).unwrap();
        store.write_row(2, &[INF, 1, 0]).unwrap();
        let mut guard = SdcGuard::new(SdcGuardMode::Full, 3);
        for round in 0..2 {
            guard.check_round(&store, round, n).unwrap();
        }
    }

    #[test]
    fn reset_baseline_absorbs_recovery_writes() {
        let mut store = closed_store();
        let mut guard = SdcGuard::new(SdcGuardMode::Full, 7);
        guard.check_round(&store, 0, 0).unwrap();
        // Recovery resets a panel to adjacency distances — entries rise.
        store.write_row(1, &[INF, 0, 1, INF]).unwrap();
        assert!(guard.check_round(&store, 1, 0).is_err());
        guard.reset_baseline();
        guard.check_round(&store, 1, 0).unwrap();
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let n = 16;
        let mut store = TileStore::new(n, &StorageBackend::Memory).unwrap();
        for i in 0..n {
            let row: Vec<Dist> = (0..n)
                .map(|j| (i as i64 - j as i64).unsigned_abs() as Dist)
                .collect();
            store.write_row(i, &row).unwrap();
        }
        // 16 × 16 pairs > 4 samples: the sampled path runs; same seed
        // and round must touch the same pairs (checked indirectly: both
        // passes succeed and a corrupted pass fails identically twice).
        let mut row0: Vec<Dist> = (0..n).map(|j| j as Dist).collect();
        row0[15] = 4000;
        store.write_row(0, &row0).unwrap();
        let a = SdcGuard::new(SdcGuardMode::Full, 11)
            .with_samples(4)
            .check_triangles(
                &store,
                2,
                &(0..n).collect::<Vec<_>>(),
                &(0..n).collect::<Vec<_>>(),
            )
            .map_err(|e| e.to_string());
        let b = SdcGuard::new(SdcGuardMode::Full, 11)
            .with_samples(4)
            .check_triangles(
                &store,
                2,
                &(0..n).collect::<Vec<_>>(),
                &(0..n).collect::<Vec<_>>(),
            )
            .map_err(|e| e.to_string());
        assert_eq!(a, b);
    }
}
