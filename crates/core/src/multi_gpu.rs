//! Multi-device boundary algorithm — the distributed heritage of
//! Algorithm 3, rebuilt as a sharded executor.
//!
//! Djidjev et al. designed the boundary algorithm for multi-node
//! clusters; the paper specializes it to one GPU. This module scales it
//! back out across a fleet of (simulated) devices, which may mix
//! profiles (a V100 next to a K80):
//!
//! 1. **dist₂** — components are placed per-device by the selector's
//!    fleet scheduler ([`crate::selector::placement`]): LPT greedy over
//!    the `sz³` cost model, normalized by each profile's throughput;
//!    each device runs blocked FW on its own diagonal blocks.
//! 2. **dist₃** — the boundary graph is assembled on the host, solved on
//!    the *fastest* device in the fleet, and broadcast to the others.
//! 3. **dist₄** — row-panels are *re-planned* at the phase boundary with
//!    each device's realized elapsed time as its initial load — the
//!    deterministic form of tile-panel work stealing. Panels whose dist₂
//!    owner fell behind migrate to devices that finished early
//!    ([`MultiGpuStats::stolen_panels`] counts them).
//!
//! Every device has an independent timeline; phases are barrier-
//! synchronized, so the reported time is `Σ_phases max_devices(phase)` —
//! the makespan a lock-step multi-GPU driver loop would see. Supervision
//! (deadline / stall / cancel) is checked at every phase barrier and at
//! every panel-flush barrier; telemetry records one span per device per
//! phase, tagged with the device index. The panel math itself is
//! device-independent, so the output is bit-identical to the
//! single-device [`crate::ooc_boundary::ooc_boundary`] run for any fleet
//! shape.

use crate::checkpoint::{Checkpoint, Progress};
use crate::error::ApspError;
use crate::ooc_boundary::{
    default_num_components, working_set_fits_bytes, BOUNDARY_KERNEL_EFFICIENCY_DIVISOR,
};
use crate::options::BoundaryOptions;
use crate::selector::placement::FleetPlan;
use crate::supervisor::{RetryState, RetryStep, Supervisor};
use crate::tile_store::TileStore;
use apsp_gpu_sim::{DeviceProfile, GpuDevice, Pinning};
use apsp_graph::{CsrGraph, Dist, VertexId, INF};
use apsp_kernels::fw_block::fw_device_exec;
use apsp_kernels::minplus::minplus_product_exec;
use apsp_kernels::DeviceMatrix;
use apsp_partition::{kway_partition, PartitionConfig, PartitionLayout};

/// Statistics from a multi-device boundary run.
#[derive(Debug, Clone)]
pub struct MultiGpuStats {
    /// Devices in the fleet.
    pub num_devices: usize,
    /// Components (`k`).
    pub num_components: usize,
    /// Total boundary nodes (`NB`).
    pub total_boundary: usize,
    /// Barrier-synchronized makespan, seconds.
    pub sim_seconds: f64,
    /// Per-phase makespans `(dist₂, dist₃+broadcast, dist₄)`.
    pub phase_seconds: [f64; 3],
    /// Component → device assignment of the dist₂ phase (the cost-model
    /// placement).
    pub placement: Vec<usize>,
    /// dist₄ panels that ran on a different device than their dist₂
    /// owner — the work-stealing migrations.
    pub stolen_panels: u32,
    /// Restarts forced by mid-run device allocation failures.
    pub retries: u32,
    /// Checkpoint commits performed (0 without checkpointing).
    pub checkpoint_commits: u32,
    /// Silent corruptions repaired by recomputing every panel.
    pub sdc_round_recoveries: u32,
}

/// Run the boundary algorithm across a fleet of simulated devices.
///
/// Returns [`ApspError::InvalidInput`] for an empty fleet or a store
/// whose dimension does not match the graph, and
/// [`ApspError::DeviceTooSmall`] when no feasible partition fits the
/// smallest device — never panics on bad input.
pub fn ooc_boundary_multi(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
) -> Result<MultiGpuStats, ApspError> {
    multi_driver(devs, g, store, opts, None, None, &Supervisor::unarmed())
}

/// [`ooc_boundary_multi`] under a [`Supervisor`]: the deadline, progress
/// watchdog, and cancellation token are checked at every phase barrier
/// and panel-flush barrier, and retries follow the supervisor's policy.
pub fn ooc_boundary_multi_supervised(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    sup: &Supervisor,
) -> Result<MultiGpuStats, ApspError> {
    multi_driver(devs, g, store, opts, None, None, sup)
}

/// [`ooc_boundary_multi`] with crash-safe durability. The manifest shape
/// is shared with the single-device boundary driver, so a run killed on
/// one fleet resumes on another (or on a single device) bit-exactly:
/// the committed cursor counts flushed components in partition order,
/// which is device-count-independent.
pub fn ooc_boundary_multi_checkpointed(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    ckpt: &Checkpoint,
) -> Result<MultiGpuStats, ApspError> {
    ooc_boundary_multi_checkpointed_supervised(devs, g, store, opts, ckpt, &Supervisor::unarmed())
}

/// [`ooc_boundary_multi_checkpointed`] under a [`Supervisor`]. A run
/// interrupted by a deadline, stall, or cancellation leaves its last
/// committed panel flush in `ckpt`, so a later call resumes instead of
/// starting over.
pub fn ooc_boundary_multi_checkpointed_supervised(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    ckpt: &Checkpoint,
    sup: &Supervisor,
) -> Result<MultiGpuStats, ApspError> {
    let resume = match ckpt.load()? {
        Some(m) => {
            let Progress::Boundary {
                components,
                partition_seed,
                next_component,
            } = m.progress
            else {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint in {} belongs to the `{}` algorithm, not the boundary \
                     algorithm — delete it to start over",
                    ckpt.dir().display(),
                    m.progress.algorithm_tag()
                )));
            };
            if partition_seed != opts.partition_seed {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint committed panels under partition seed {partition_seed}, but \
                     seed {} is configured — the committed rows would describe the wrong \
                     vertex sets; resume with the same seed, or delete the checkpoint",
                    opts.partition_seed
                )));
            }
            ckpt.restore_into(&m, store)?;
            Some((components, next_component))
        }
        None => None,
    };
    let stats = multi_driver(devs, g, store, opts, resume, Some(ckpt), sup)?;
    ckpt.clear()?;
    Ok(stats)
}

/// Parse a fleet spec like `"v100,k80"` into device profiles — the
/// format `apsp-run --fleet` and the conformance matrix share. Tokens
/// are case-insensitive profile names; whitespace around commas is
/// ignored.
pub fn parse_fleet(spec: &str) -> Result<Vec<DeviceProfile>, String> {
    let mut fleet = Vec::new();
    for tok in spec.split(',') {
        let tok = tok.trim();
        match tok.to_ascii_lowercase().as_str() {
            "v100" => fleet.push(DeviceProfile::v100()),
            "k80" => fleet.push(DeviceProfile::k80()),
            "" => return Err("empty device name in fleet spec (expected e.g. `v100,k80`)".into()),
            other => {
                return Err(format!(
                    "unknown device profile `{other}` in fleet spec (expected v100 or k80)"
                ))
            }
        }
    }
    if fleet.is_empty() {
        return Err("fleet spec names no devices".into());
    }
    Ok(fleet)
}

/// The retry-then-halve driver shared by every entry point, mirroring
/// the single-device `boundary_driver` contract.
fn multi_driver(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    mut resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    sup: &Supervisor,
) -> Result<MultiGpuStats, ApspError> {
    if devs.is_empty() {
        return Err(ApspError::InvalidInput(
            "multi-device run needs at least one device, but the fleet is empty".into(),
        ));
    }
    let n = g.num_vertices();
    if store.n() != n {
        return Err(ApspError::InvalidInput(format!(
            "tile store holds a {0}×{0} matrix but the graph has {n} vertices",
            store.n()
        )));
    }
    if n == 0 {
        return Ok(MultiGpuStats {
            num_devices: devs.len(),
            num_components: 0,
            total_boundary: 0,
            sim_seconds: 0.0,
            phase_seconds: [0.0; 3],
            placement: Vec::new(),
            stolen_panels: 0,
            retries: 0,
            checkpoint_commits: 0,
            sdc_round_recoveries: 0,
        });
    }
    let mut opts_eff = *opts;
    let mut commits = 0u32;
    let mut retry = RetryState::new(sup.retry_policy(), "multi-device boundary");
    if opts.sdc_guard.is_on() && store.sdc_guard() != opts.sdc_guard {
        store.set_sdc_guard(opts.sdc_guard)?;
    }
    let mut round_budget = sup.retry_policy().sdc_round_retries;
    let mut round_recoveries = 0u32;
    loop {
        let result = multi_inner(devs, g, store, &opts_eff, resume, ckpt, &mut commits, sup);
        // Restore every device's efficiency context on every exit path.
        for dev in devs.iter_mut() {
            dev.set_kernel_efficiency_divisor(1.0);
        }
        match result {
            Ok(mut stats) => {
                stats.retries = retry.retries();
                stats.checkpoint_commits = commits;
                stats.sdc_round_recoveries = round_recoveries;
                return Ok(stats);
            }
            Err(ApspError::SilentCorruption {
                panel,
                round,
                detail,
            }) => {
                let tel = sup.telemetry().clone();
                tel.count_sdc(1, 0, 0);
                // Like the single-device driver: the boundary algorithm
                // never reads the store, so recomputing every panel from
                // the graph is the one (exact) recovery rung.
                if round_budget > 0 {
                    round_budget -= 1;
                    round_recoveries += 1;
                    store.sdc_rebaseline(0..n)?;
                    resume = None;
                    tel.count_sdc(0, 0, 1);
                    continue;
                }
                return Err(ApspError::SilentCorruption {
                    panel,
                    round,
                    detail,
                });
            }
            Err(e) => {
                let (step, oom) = retry.next_step(e, sup)?;
                resume = None;
                if step == RetryStep::Shrink {
                    let cur = opts_eff
                        .num_components
                        .unwrap_or_else(|| default_num_components(n))
                        .clamp(1, n.max(1));
                    if cur <= 1 {
                        return Err(ApspError::DeviceTooSmall {
                            algorithm: "multi-device boundary",
                            detail: format!(
                                "allocation kept failing even at a single component: {oom}"
                            ),
                        });
                    }
                    opts_eff.num_components = Some(cur / 2);
                }
            }
        }
    }
}

/// Whether the resident working set fits *every* device in the fleet —
/// each device holds the full boundary matrix during dist₄, so the
/// smallest device bounds feasibility.
fn fits_fleet(devs: &[GpuDevice], layout: &PartitionLayout) -> bool {
    let nb_max = (0..layout.num_components())
        .map(|i| layout.boundary_count(i))
        .max()
        .unwrap_or(0);
    devs.iter().all(|d| {
        working_set_fits_bytes(
            d.free_memory(),
            layout.total_boundary(),
            layout.max_component_size(),
            nb_max,
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn multi_inner(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
    resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    commits: &mut u32,
    sup: &Supervisor,
) -> Result<MultiGpuStats, ApspError> {
    let n = g.num_vertices();
    let num_devs = devs.len();
    let tel = sup.telemetry().clone();

    // ---- Step 1: partition (host CPU), resume-aware, shrink-to-fit.
    let pcfg = PartitionConfig {
        seed: opts.partition_seed,
        ..Default::default()
    };
    let mut start_component = 0usize;
    let mut resumed_layout = None;
    if let Some((rk, next)) = resume {
        let candidate = PartitionLayout::new(g, &kway_partition(g, rk.clamp(1, n), &pcfg));
        if candidate.num_components() == rk && fits_fleet(devs, &candidate) {
            start_component = next.min(rk);
            resumed_layout = Some(candidate);
        }
    }
    let layout = match resumed_layout {
        Some(l) => l,
        None => {
            // At least one component per device when the graph allows it;
            // shrink k until the working set fits the smallest device.
            let requested_k = opts
                .num_components
                .unwrap_or_else(|| default_num_components(n))
                .clamp(1, n)
                .max(num_devs.min(n));
            let mut k = requested_k;
            loop {
                let layout = PartitionLayout::new(g, &kway_partition(g, k, &pcfg));
                if fits_fleet(devs, &layout) || k <= 2 {
                    break layout;
                }
                k = (k / 2).max(2);
            }
        }
    };
    let pg = layout.permute_graph(g);
    let k = layout.num_components();
    let nb_total = layout.total_boundary();
    if !fits_fleet(devs, &layout) {
        let smallest = devs.iter().map(|d| d.free_memory()).min().unwrap_or(0);
        return Err(ApspError::DeviceTooSmall {
            algorithm: "multi-device boundary",
            detail: format!(
                "no feasible partition: the minimum working set (boundary graph of \
                 {nb_total} nodes plus one block's panels) exceeds the smallest \
                 device's free memory ({smallest} bytes) even at k = {k}"
            ),
        });
    }

    // ---- Fleet plan: cost-model placement, not round-robin.
    let profiles: Vec<DeviceProfile> = devs.iter().map(|d| d.profile().clone()).collect();
    let profile_refs: Vec<&DeviceProfile> = profiles.iter().collect();
    let plan = FleetPlan::new(&layout, &profile_refs);

    for dev in devs.iter_mut() {
        dev.set_kernel_efficiency_divisor(BOUNDARY_KERNEL_EFFICIENCY_DIVISOR);
    }
    let mut phase_start: Vec<f64> = devs.iter().map(|d| d.elapsed().seconds()).collect();
    let mut phase_seconds = [0.0f64; 3];

    // ---- Phase 1: dist₂, components placed by the cost model.
    let mut spans: Vec<_> = devs.iter().map(|d| tel.phase_start(d)).collect();
    let mut dist2: Vec<Vec<Dist>> = Vec::with_capacity(k);
    for i in 0..k {
        let dev = &mut devs[plan.dist2_owner[i]];
        let range = layout.component_range(i);
        let sz = range.len();
        let mut block = adjacency_block(&pg, range);
        if sz > 0 {
            let s = dev.default_stream();
            let mut tile = DeviceMatrix::alloc_inf(dev, sz, sz)?;
            tile.upload_rows(dev, s, 0, &block, Pinning::Pinned);
            fw_device_exec(dev, s, &mut tile, opts.exec);
            tile.download_rows(dev, s, 0..sz, &mut block, Pinning::Pinned);
        }
        dist2.push(block);
    }
    for (d, (dev, span)) in devs.iter().zip(spans.drain(..)).enumerate() {
        tel.phase_end_on_device(dev, span, "multi.dist2", d);
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[0]);
    sup.check_barrier(max_elapsed(devs), "multi-device dist2 phase barrier")?;

    // ---- Phase 2: boundary graph solved on the fastest device,
    // broadcast to the rest.
    let mut spans: Vec<_> = devs.iter().map(|d| tel.phase_start(d)).collect();
    let bofs: Vec<usize> = {
        let mut v = vec![0usize];
        for i in 0..k {
            v.push(v[i] + layout.boundary_count(i));
        }
        v
    };
    let mut bound_host = vec![INF; nb_total * nb_total];
    for d in 0..nb_total {
        bound_host[d * nb_total + d] = 0;
    }
    for i in 0..k {
        let nb = layout.boundary_count(i);
        let sz = layout.component_size(i);
        for a in 0..nb {
            for b in 0..nb {
                let d = dist2[i][a * sz + b];
                let cell = &mut bound_host[(bofs[i] + a) * nb_total + (bofs[i] + b)];
                if d < *cell {
                    *cell = d;
                }
            }
        }
    }
    let comp_of = component_index(&layout);
    for v in 0..n as VertexId {
        let ci = comp_of[v as usize];
        let local_v = v as usize - layout.component_range(ci).start;
        if local_v >= layout.boundary_count(ci) {
            continue;
        }
        for (u, wgt) in pg.edges_from(v) {
            let cj = comp_of[u as usize];
            if ci == cj {
                continue;
            }
            let local_u = u as usize - layout.component_range(cj).start;
            let cell = &mut bound_host[(bofs[ci] + local_v) * nb_total + (bofs[cj] + local_u)];
            if wgt < *cell {
                *cell = wgt;
            }
        }
    }
    if nb_total > 0 {
        // Solve on the fastest profile: every other device waits on this
        // serial phase, so it belongs on the strongest device.
        let solver = plan.dist3_solver;
        {
            let dev = &mut devs[solver];
            let s = dev.default_stream();
            let mut bound = DeviceMatrix::alloc_inf(dev, nb_total, nb_total)?;
            bound.upload_rows(dev, s, 0, &bound_host, Pinning::Pinned);
            fw_device_exec(dev, s, &mut bound, opts.exec);
            bound.download_rows(dev, s, 0..nb_total, &mut bound_host, Pinning::Pinned);
        }
        // Broadcast: every other device pays one H2D of the full matrix.
        // The replica's lifetime is phase 3; dropping it here releases
        // simulated memory while the host copy carries the data — the
        // transfer charge is what matters.
        for (d, dev) in devs.iter_mut().enumerate() {
            if d == solver {
                continue;
            }
            let s = dev.default_stream();
            let copy = upload(dev, nb_total, nb_total, &bound_host, s)?;
            drop(copy);
        }
    }
    for (d, (dev, span)) in devs.iter().zip(spans.drain(..)).enumerate() {
        tel.phase_end_on_device(dev, span, "multi.dist3", d);
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[1]);
    sup.check_barrier(max_elapsed(devs), "multi-device dist3 phase barrier")?;

    // ---- Phase 3: dist₄ row-panels, work-stealing re-plan, streamed to
    // the host in partition order (so checkpoint cursors stay contiguous
    // and the store write order matches the single-device run).
    let elapsed: Vec<f64> = devs.iter().map(|d| d.elapsed().seconds()).collect();
    let dist4_owner = plan.dist4_owners(&profile_refs, &elapsed);
    let stolen_panels = dist4_owner
        .iter()
        .zip(plan.dist2_owner.iter())
        .filter(|(a, b)| a != b)
        .count() as u32;
    let mut spans: Vec<_> = devs.iter().map(|d| tel.phase_start(d)).collect();
    let mut scatter_row = vec![0 as Dist; n];
    for i in start_component..k {
        store.set_sdc_round(i);
        let owner = dist4_owner[i];
        let dev = &mut devs[owner];
        let s = dev.default_stream();
        let irange = layout.component_range(i);
        let sz_i = irange.len();
        let nb_i = layout.boundary_count(i);
        let c2b_host = extract_cols(&dist2[i], sz_i, 0..nb_i);
        let c2b = upload(dev, sz_i, nb_i, &c2b_host, s)?;
        let mut panel = vec![INF; sz_i * n];
        for j in 0..k {
            let jrange = layout.component_range(j);
            let (sz_j, nb_j) = (jrange.len(), layout.boundary_count(j));
            let bound_ij = extract_block(
                &bound_host,
                nb_total,
                bofs[i]..bofs[i] + nb_i,
                bofs[j]..bofs[j] + nb_j,
            );
            let bound_ij = upload(dev, nb_i, nb_j, &bound_ij, s)?;
            let b2c = upload(dev, nb_j, sz_j, &dist2[j][..nb_j * sz_j], s)?;
            let mut tmp1 = DeviceMatrix::alloc_inf(dev, sz_i, nb_j)?;
            minplus_product_exec(dev, s, &mut tmp1, &c2b, &bound_ij, opts.exec);
            let mut block = DeviceMatrix::alloc_inf(dev, sz_i, sz_j)?;
            minplus_product_exec(dev, s, &mut block, &tmp1, &b2c, opts.exec);
            for r in 0..sz_i {
                for c in 0..sz_j {
                    let mut v = block.get(r, c);
                    if i == j {
                        v = v.min(dist2[i][r * sz_j + c]);
                    }
                    panel[r * n + jrange.start + c] = v;
                }
            }
        }
        // One pinned D2H per panel (panel == flush on the multi path;
        // the parallelism win comes from sharding, not staging).
        let mut staging = DeviceMatrix::alloc_inf(dev, sz_i, n)?;
        staging.as_mut_slice().copy_from_slice(&panel);
        let mut host_panel = vec![0 as Dist; sz_i * n];
        staging.download_rows(dev, s, 0..sz_i, &mut host_panel, Pinning::Pinned);
        for (r, new_row) in irange.enumerate() {
            let old_row = layout.old_of(new_row as VertexId) as usize;
            for new_col in 0..n {
                scatter_row[layout.old_of(new_col as VertexId) as usize] =
                    host_panel[r * n + new_col];
            }
            store.write_row(old_row, &scatter_row)?;
        }
        // Flushed panel = unit of progress: supervision check, then the
        // checkpoint cursor advances (never past the final flush —
        // completion clears the checkpoint instead).
        sup.check_barrier(
            max_elapsed(devs),
            &format!("multi-device component {i} flush barrier"),
        )?;
        if let Some(ck) = ckpt {
            if i + 1 < k {
                ck.commit(
                    store,
                    &Progress::Boundary {
                        components: k,
                        partition_seed: opts.partition_seed,
                        next_component: i + 1,
                    },
                )?;
                *commits += 1;
            }
        }
    }
    for (d, (dev, span)) in devs.iter().zip(spans.drain(..)).enumerate() {
        tel.phase_end_on_device(dev, span, "multi.dist4", d);
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[2]);

    Ok(MultiGpuStats {
        num_devices: num_devs,
        num_components: k,
        total_boundary: nb_total,
        sim_seconds: phase_seconds.iter().sum(),
        phase_seconds,
        placement: plan.dist2_owner,
        stolen_panels,
        retries: 0,
        checkpoint_commits: 0,
        sdc_round_recoveries: 0,
    })
}

/// Barrier: record each device's phase duration, advance `phase_start`,
/// and accumulate the slowest device into `out`.
fn barrier(devs: &mut [GpuDevice], phase_start: &mut [f64], out: &mut f64) {
    let mut slowest = 0.0f64;
    for (dev, start) in devs.iter_mut().zip(phase_start.iter_mut()) {
        let now = dev.synchronize().seconds();
        slowest = slowest.max(now - *start);
        *start = now;
    }
    *out += slowest;
}

/// The fleet's makespan clock: the furthest-ahead device timeline.
fn max_elapsed(devs: &[GpuDevice]) -> f64 {
    devs.iter()
        .map(|d| d.elapsed().seconds())
        .fold(0.0, f64::max)
}

fn component_index(layout: &PartitionLayout) -> Vec<usize> {
    let mut comp = vec![0usize; layout.num_vertices()];
    for i in 0..layout.num_components() {
        for v in layout.component_range(i) {
            comp[v] = i;
        }
    }
    comp
}

fn adjacency_block(pg: &CsrGraph, range: std::ops::Range<usize>) -> Vec<Dist> {
    let sz = range.len();
    let mut block = vec![INF; sz * sz];
    for r in 0..sz {
        block[r * sz + r] = 0;
    }
    for (r, v) in range.clone().enumerate() {
        for (u, wgt) in pg.edges_from(v as VertexId) {
            let u = u as usize;
            if range.contains(&u) && u != v {
                let cell = &mut block[r * sz + (u - range.start)];
                if wgt < *cell {
                    *cell = wgt;
                }
            }
        }
    }
    block
}

fn extract_cols(block: &[Dist], side: usize, cols: std::ops::Range<usize>) -> Vec<Dist> {
    let mut out = Vec::with_capacity(side * cols.len());
    for r in 0..side {
        out.extend_from_slice(&block[r * side + cols.start..r * side + cols.end]);
    }
    out
}

fn extract_block(
    m: &[Dist],
    stride: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Vec<Dist> {
    let mut out = Vec::with_capacity(rows.len() * cols.len());
    for r in rows {
        out.extend_from_slice(&m[r * stride + cols.start..r * stride + cols.end]);
    }
    out
}

fn upload(
    dev: &mut GpuDevice,
    rows: usize,
    cols: usize,
    host: &[Dist],
    stream: apsp_gpu_sim::StreamId,
) -> Result<DeviceMatrix, ApspError> {
    let mut m = DeviceMatrix::alloc_inf(dev, rows, cols)?;
    if !host.is_empty() {
        m.upload_rows(dev, stream, 0, host, Pinning::Pinned);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::supervisor::{CancelToken, SupervisionOptions};
    use crate::tile_store::StorageBackend;
    use apsp_cpu::{bgl_plus_apsp, ExecBackend};
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};

    fn devices(count: usize) -> Vec<GpuDevice> {
        (0..count)
            .map(|_| GpuDevice::new(DeviceProfile::v100()))
            .collect()
    }

    fn run(g: &CsrGraph, count: usize) -> (apsp_cpu::DistMatrix, MultiGpuStats) {
        let mut devs = devices(count);
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let stats =
            ooc_boundary_multi(&mut devs, g, &mut store, &BoundaryOptions::default()).unwrap();
        (store.to_dist_matrix().unwrap(), stats)
    }

    #[test]
    fn any_device_count_matches_reference() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 3);
        let reference = bgl_plus_apsp(&g);
        for count in [1, 2, 3, 4] {
            let (result, stats) = run(&g, count);
            assert_eq!(result, reference, "{count} devices");
            assert_eq!(stats.num_devices, count);
            assert_eq!(stats.placement.len(), stats.num_components);
        }
    }

    #[test]
    fn more_devices_reduce_simulated_time() {
        let g = grid_2d(22, 22, GridOptions::default(), WeightRange::default(), 7);
        let (_, one) = run(&g, 1);
        let (_, four) = run(&g, 4);
        assert!(
            four.sim_seconds < one.sim_seconds,
            "4 devices {} vs 1 device {}",
            four.sim_seconds,
            one.sim_seconds
        );
        // dist₂ and dist₄ parallelize; the dist₃ phase (single device +
        // broadcast) does not shrink.
        assert!(four.phase_seconds[0] < one.phase_seconds[0]);
        assert!(four.phase_seconds[2] < one.phase_seconds[2]);
    }

    #[test]
    fn scaling_is_sublinear_amdahl() {
        // The replicated dist₃ phase bounds the speedup (Amdahl); with 8
        // devices the win over 4 must be smaller than 4 over 1.
        let g = grid_2d(20, 20, GridOptions::default(), WeightRange::default(), 9);
        let (_, s1) = run(&g, 1);
        let (_, s4) = run(&g, 4);
        let (_, s8) = run(&g, 8);
        let gain_4 = s1.sim_seconds / s4.sim_seconds;
        let gain_8 = s4.sim_seconds / s8.sim_seconds;
        assert!(gain_4 > gain_8, "{gain_4} vs {gain_8}");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let mut devs = devices(2);
        let mut store = TileStore::new(0, &StorageBackend::Memory).unwrap();
        let stats =
            ooc_boundary_multi(&mut devs, &g, &mut store, &BoundaryOptions::default()).unwrap();
        assert_eq!(stats.sim_seconds, 0.0);
    }

    #[test]
    fn bad_input_returns_typed_errors_not_panics() {
        let g = grid_2d(6, 6, GridOptions::default(), WeightRange::default(), 1);
        // Empty fleet.
        let mut store = TileStore::new(36, &StorageBackend::Memory).unwrap();
        let err =
            ooc_boundary_multi(&mut [], &g, &mut store, &BoundaryOptions::default()).unwrap_err();
        assert_eq!(err.kind(), crate::error::ApspErrorKind::InvalidInput);
        assert!(err.to_string().contains("empty"));
        // Dimension mismatch.
        let mut devs = devices(2);
        let mut wrong = TileStore::new(35, &StorageBackend::Memory).unwrap();
        let err =
            ooc_boundary_multi(&mut devs, &g, &mut wrong, &BoundaryOptions::default()).unwrap_err();
        assert_eq!(err.kind(), crate::error::ApspErrorKind::InvalidInput);
        assert!(err.to_string().contains("36"));
        // Infeasible partition: a fleet whose smallest device cannot hold
        // even the minimum working set.
        let mut tiny = vec![
            GpuDevice::new(DeviceProfile::v100()),
            GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1_000)),
        ];
        let err =
            ooc_boundary_multi(&mut tiny, &g, &mut store, &BoundaryOptions::default()).unwrap_err();
        assert_eq!(err.kind(), crate::error::ApspErrorKind::DeviceTooSmall);
        assert!(err.to_string().contains("partition"));
    }

    #[test]
    fn all_exec_backends_agree_bitwise() {
        // The PR-9 regression: the multi path must route through the
        // `_exec` kernels, so every backend computes identical bits.
        let g = grid_2d(11, 9, GridOptions::default(), WeightRange::default(), 13);
        let reference = bgl_plus_apsp(&g);
        for exec in [
            ExecBackend::Scalar,
            ExecBackend::Parallel { threads: Some(2) },
            ExecBackend::Simd { threads: Some(2) },
        ] {
            let mut devs = devices(3);
            let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
            let opts = BoundaryOptions {
                exec,
                ..Default::default()
            };
            ooc_boundary_multi(&mut devs, &g, &mut store, &opts).unwrap();
            assert_eq!(
                store.to_dist_matrix().unwrap(),
                reference,
                "backend {exec:?} diverged"
            );
        }
    }

    #[test]
    fn heterogeneous_fleet_matches_reference_and_loads_the_fast_device() {
        let g = grid_2d(14, 14, GridOptions::default(), WeightRange::default(), 21);
        let reference = bgl_plus_apsp(&g);
        let mut devs = vec![
            GpuDevice::new(DeviceProfile::v100()),
            GpuDevice::new(DeviceProfile::k80()),
        ];
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(8),
            ..Default::default()
        };
        let stats = ooc_boundary_multi(&mut devs, &g, &mut store, &opts).unwrap();
        assert_eq!(store.to_dist_matrix().unwrap(), reference);
        // Cost-model placement, not round-robin: the 4×-faster V100 must
        // own more components than the K80.
        let v100_share = stats.placement.iter().filter(|&&d| d == 0).count();
        let k80_share = stats.placement.len() - v100_share;
        assert!(
            v100_share > k80_share,
            "placement {:?} ignores the throughput gap",
            stats.placement
        );
    }

    #[test]
    fn supervised_cancellation_is_typed() {
        let g = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 3);
        let mut devs = devices(2);
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let opts = SupervisionOptions {
            cancel: Some(CancelToken::cancel_after_checks(2)),
            ..Default::default()
        };
        let sup = Supervisor::new(&opts, 0.0);
        let err = ooc_boundary_multi_supervised(
            &mut devs,
            &g,
            &mut store,
            &BoundaryOptions::default(),
            &sup,
        )
        .unwrap_err();
        assert_eq!(err.kind(), crate::error::ApspErrorKind::Cancelled);
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically_after_cancel() {
        let g = grid_2d(13, 13, GridOptions::default(), WeightRange::default(), 17);
        let reference = bgl_plus_apsp(&g);
        let dir = std::env::temp_dir().join(format!(
            "apsp-multi-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(6),
            ..Default::default()
        };
        // First attempt is cancelled mid-run, after some flush barriers.
        let mut devs = devices(2);
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let sup_opts = SupervisionOptions {
            cancel: Some(CancelToken::cancel_after_checks(5)),
            ..Default::default()
        };
        let sup = Supervisor::new(&sup_opts, 0.0);
        let err = ooc_boundary_multi_checkpointed_supervised(
            &mut devs, &g, &mut store, &opts, &ckpt, &sup,
        )
        .unwrap_err();
        assert_eq!(err.kind(), crate::error::ApspErrorKind::Cancelled);
        // Resume on a *different* fleet shape: the cursor is
        // device-count-independent.
        let mut devs = devices(4);
        let mut store2 = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let manifest = ckpt.load().unwrap().expect("a commit must have landed");
        ckpt.restore_into(&manifest, &mut store2).unwrap();
        drop(manifest);
        let stats =
            ooc_boundary_multi_checkpointed(&mut devs, &g, &mut store2, &opts, &ckpt).unwrap();
        assert_eq!(store2.to_dist_matrix().unwrap(), reference);
        assert!(stats.num_components >= 1);
        // Completion cleared the checkpoint.
        assert!(ckpt.load().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_specs_parse_or_reject() {
        let fleet = parse_fleet("v100, K80 ,v100").unwrap();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0], DeviceProfile::v100());
        assert_eq!(fleet[1], DeviceProfile::k80());
        assert!(parse_fleet("").is_err());
        assert!(parse_fleet("v100,,k80").is_err());
        assert!(parse_fleet("a100").is_err());
    }

    #[test]
    fn work_stealing_counts_migrated_panels() {
        // A heterogeneous fleet guarantees dist₂ finish-time skew, so the
        // dist₄ re-plan has something to rebalance; the count is just
        // recorded — zero is legal on perfectly balanced fleets.
        let g = grid_2d(16, 16, GridOptions::default(), WeightRange::default(), 29);
        let mut devs = vec![
            GpuDevice::new(DeviceProfile::v100()),
            GpuDevice::new(DeviceProfile::k80()),
        ];
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let opts = BoundaryOptions {
            num_components: Some(7),
            ..Default::default()
        };
        let stats = ooc_boundary_multi(&mut devs, &g, &mut store, &opts).unwrap();
        assert!(stats.stolen_panels as usize <= stats.num_components);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }
}
