//! Multi-device boundary algorithm — the distributed heritage of
//! Algorithm 3, revived.
//!
//! Djidjev et al. designed the boundary algorithm for multi-node
//! clusters; the paper specializes it to one GPU. This module scales it
//! back out across several (simulated) devices:
//!
//! 1. components are assigned round-robin; each device runs dist₂ on its
//!    own diagonal blocks,
//! 2. the boundary graph is assembled on the host, solved (dist₃) on
//!    device 0, and broadcast to the others,
//! 3. each device computes and streams the dist₄ row-panels of its own
//!    components.
//!
//! Every device has an independent timeline; phases are barrier-
//! synchronized, so the reported time is `Σ_phases max_devices(phase)` —
//! the makespan a lock-step multi-GPU driver loop would see.

use crate::error::ApspError;
use crate::ooc_boundary::default_num_components;
use crate::options::BoundaryOptions;
use crate::tile_store::TileStore;
use apsp_gpu_sim::{GpuDevice, Pinning};
use apsp_graph::{CsrGraph, Dist, VertexId, INF};
use apsp_kernels::fw_block::fw_device;
use apsp_kernels::minplus::minplus_product;
use apsp_kernels::DeviceMatrix;
use apsp_partition::{kway_partition, PartitionConfig, PartitionLayout};

/// Statistics from a multi-device boundary run.
#[derive(Debug, Clone)]
pub struct MultiGpuStats {
    /// Devices used.
    pub num_devices: usize,
    /// Components (`k`).
    pub num_components: usize,
    /// Total boundary nodes (`NB`).
    pub total_boundary: usize,
    /// Barrier-synchronized makespan, seconds.
    pub sim_seconds: f64,
    /// Per-phase makespans `(dist₂, dist₃+broadcast, dist₄)`.
    pub phase_seconds: [f64; 3],
}

/// Run the boundary algorithm across `devs` (≥ 1) simulated devices.
pub fn ooc_boundary_multi(
    devs: &mut [GpuDevice],
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &BoundaryOptions,
) -> Result<MultiGpuStats, ApspError> {
    assert!(!devs.is_empty(), "need at least one device");
    let n = g.num_vertices();
    assert_eq!(store.n(), n);
    if n == 0 {
        return Ok(MultiGpuStats {
            num_devices: devs.len(),
            num_components: 0,
            total_boundary: 0,
            sim_seconds: 0.0,
            phase_seconds: [0.0; 3],
        });
    }
    let k = opts
        .num_components
        .unwrap_or_else(|| default_num_components(n))
        .clamp(1, n)
        .max(devs.len());
    let pcfg = PartitionConfig {
        seed: opts.partition_seed,
        ..Default::default()
    };
    let layout = PartitionLayout::new(g, &kway_partition(g, k, &pcfg));
    let k = layout.num_components();
    let pg = layout.permute_graph(g);
    let nb_total = layout.total_boundary();
    let num_devs = devs.len();
    let owner = move |comp: usize| comp % num_devs;

    let mut phase_start: Vec<f64> = devs.iter().map(|d| d.elapsed().seconds()).collect();
    let mut phase_seconds = [0.0f64; 3];

    // ---- Phase 1: dist₂, components round-robin across devices.
    let mut dist2: Vec<Vec<Dist>> = Vec::with_capacity(k);
    for i in 0..k {
        let dev = &mut devs[owner(i)];
        let range = layout.component_range(i);
        let sz = range.len();
        let mut block = adjacency_block(&pg, range);
        if sz > 0 {
            let s = dev.default_stream();
            let mut tile = DeviceMatrix::alloc_inf(dev, sz, sz)?;
            tile.upload_rows(dev, s, 0, &block, Pinning::Pinned);
            fw_device(dev, s, &mut tile);
            tile.download_rows(dev, s, 0..sz, &mut block, Pinning::Pinned);
        }
        dist2.push(block);
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[0]);

    // ---- Phase 2: boundary graph on device 0, broadcast to the rest.
    let bofs: Vec<usize> = {
        let mut v = vec![0usize];
        for i in 0..k {
            v.push(v[i] + layout.boundary_count(i));
        }
        v
    };
    let mut bound_host = vec![INF; nb_total * nb_total];
    for d in 0..nb_total {
        bound_host[d * nb_total + d] = 0;
    }
    for i in 0..k {
        let nb = layout.boundary_count(i);
        let sz = layout.component_size(i);
        for a in 0..nb {
            for b in 0..nb {
                let d = dist2[i][a * sz + b];
                let cell = &mut bound_host[(bofs[i] + a) * nb_total + (bofs[i] + b)];
                if d < *cell {
                    *cell = d;
                }
            }
        }
    }
    let comp_of = component_index(&layout);
    for v in 0..n as VertexId {
        let ci = comp_of[v as usize];
        let local_v = v as usize - layout.component_range(ci).start;
        if local_v >= layout.boundary_count(ci) {
            continue;
        }
        for (u, wgt) in pg.edges_from(v) {
            let cj = comp_of[u as usize];
            if ci == cj {
                continue;
            }
            let local_u = u as usize - layout.component_range(cj).start;
            let cell = &mut bound_host[(bofs[ci] + local_v) * nb_total + (bofs[cj] + local_u)];
            if wgt < *cell {
                *cell = wgt;
            }
        }
    }
    if nb_total > 0 {
        // Solve on device 0.
        {
            let dev0 = &mut devs[0];
            let s = dev0.default_stream();
            let mut bound0 = DeviceMatrix::alloc_inf(dev0, nb_total, nb_total)?;
            bound0.upload_rows(dev0, s, 0, &bound_host, Pinning::Pinned);
            fw_device(dev0, s, &mut bound0);
            bound0.download_rows(dev0, s, 0..nb_total, &mut bound_host, Pinning::Pinned);
        }
        // Broadcast: every other device pays one H2D of the full matrix.
        for dev in devs.iter_mut().skip(1) {
            let s = dev.default_stream();
            let mut copy = DeviceMatrix::alloc_inf(dev, nb_total, nb_total)?;
            copy.upload_rows(dev, s, 0, &bound_host, Pinning::Pinned);
            // The replica's lifetime is phase 3; dropping here releases
            // simulated memory, while the host copy (bound_host) carries
            // the data — the charge is what matters.
            drop(copy);
        }
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[1]);

    // ---- Phase 3: dist₄ row-panels, owner-computes, streamed to host.
    let mut scatter_row = vec![0 as Dist; n];
    for i in 0..k {
        let dev = &mut devs[owner(i)];
        let s = dev.default_stream();
        let irange = layout.component_range(i);
        let sz_i = irange.len();
        let nb_i = layout.boundary_count(i);
        let c2b_host = extract_cols(&dist2[i], sz_i, 0..nb_i);
        let c2b = upload(dev, sz_i, nb_i, &c2b_host)?;
        let mut panel = vec![INF; sz_i * n];
        for j in 0..k {
            let jrange = layout.component_range(j);
            let (sz_j, nb_j) = (jrange.len(), layout.boundary_count(j));
            let bound_ij = extract_block(
                &bound_host,
                nb_total,
                bofs[i]..bofs[i] + nb_i,
                bofs[j]..bofs[j] + nb_j,
            );
            let bound_ij = upload(dev, nb_i, nb_j, &bound_ij)?;
            let b2c = upload(dev, nb_j, sz_j, &dist2[j][..nb_j * sz_j])?;
            let mut tmp1 = DeviceMatrix::alloc_inf(dev, sz_i, nb_j)?;
            minplus_product(dev, s, &mut tmp1, &c2b, &bound_ij);
            let mut block = DeviceMatrix::alloc_inf(dev, sz_i, sz_j)?;
            minplus_product(dev, s, &mut block, &tmp1, &b2c);
            for r in 0..sz_i {
                for c in 0..sz_j {
                    let mut v = block.get(r, c);
                    if i == j {
                        v = v.min(dist2[i][r * sz_j + c]);
                    }
                    panel[r * n + jrange.start + c] = v;
                }
            }
        }
        // One pinned D2H per panel (simplified batching: panel == flush).
        let mut staging = DeviceMatrix::alloc_inf(dev, sz_i, n)?;
        staging.as_mut_slice().copy_from_slice(&panel);
        let mut host_panel = vec![0 as Dist; sz_i * n];
        staging.download_rows(dev, s, 0..sz_i, &mut host_panel, Pinning::Pinned);
        for (r, new_row) in irange.enumerate() {
            let old_row = layout.old_of(new_row as VertexId) as usize;
            for new_col in 0..n {
                scatter_row[layout.old_of(new_col as VertexId) as usize] =
                    host_panel[r * n + new_col];
            }
            store.write_row(old_row, &scatter_row)?;
        }
    }
    barrier(devs, &mut phase_start, &mut phase_seconds[2]);

    Ok(MultiGpuStats {
        num_devices: devs.len(),
        num_components: k,
        total_boundary: nb_total,
        sim_seconds: phase_seconds.iter().sum(),
        phase_seconds,
    })
}

/// Barrier: record each device's phase duration, advance `phase_start`,
/// and accumulate the slowest device into `out`.
fn barrier(devs: &mut [GpuDevice], phase_start: &mut [f64], out: &mut f64) {
    let mut slowest = 0.0f64;
    for (dev, start) in devs.iter_mut().zip(phase_start.iter_mut()) {
        let now = dev.synchronize().seconds();
        slowest = slowest.max(now - *start);
        *start = now;
    }
    *out += slowest;
}

fn component_index(layout: &PartitionLayout) -> Vec<usize> {
    let mut comp = vec![0usize; layout.num_vertices()];
    for i in 0..layout.num_components() {
        for v in layout.component_range(i) {
            comp[v] = i;
        }
    }
    comp
}

fn adjacency_block(pg: &CsrGraph, range: std::ops::Range<usize>) -> Vec<Dist> {
    let sz = range.len();
    let mut block = vec![INF; sz * sz];
    for r in 0..sz {
        block[r * sz + r] = 0;
    }
    for (r, v) in range.clone().enumerate() {
        for (u, wgt) in pg.edges_from(v as VertexId) {
            let u = u as usize;
            if range.contains(&u) && u != v {
                let cell = &mut block[r * sz + (u - range.start)];
                if wgt < *cell {
                    *cell = wgt;
                }
            }
        }
    }
    block
}

fn extract_cols(block: &[Dist], side: usize, cols: std::ops::Range<usize>) -> Vec<Dist> {
    let mut out = Vec::with_capacity(side * cols.len());
    for r in 0..side {
        out.extend_from_slice(&block[r * side + cols.start..r * side + cols.end]);
    }
    out
}

fn extract_block(
    m: &[Dist],
    stride: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> Vec<Dist> {
    let mut out = Vec::with_capacity(rows.len() * cols.len());
    for r in rows {
        out.extend_from_slice(&m[r * stride + cols.start..r * stride + cols.end]);
    }
    out
}

fn upload(
    dev: &mut GpuDevice,
    rows: usize,
    cols: usize,
    host: &[Dist],
) -> Result<DeviceMatrix, ApspError> {
    let s = dev.default_stream();
    let mut m = DeviceMatrix::alloc_inf(dev, rows, cols)?;
    if !host.is_empty() {
        m.upload_rows(dev, s, 0, host, Pinning::Pinned);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_store::StorageBackend;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};

    fn devices(count: usize) -> Vec<GpuDevice> {
        (0..count)
            .map(|_| GpuDevice::new(DeviceProfile::v100()))
            .collect()
    }

    fn run(g: &CsrGraph, count: usize) -> (apsp_cpu::DistMatrix, MultiGpuStats) {
        let mut devs = devices(count);
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let stats =
            ooc_boundary_multi(&mut devs, g, &mut store, &BoundaryOptions::default()).unwrap();
        (store.to_dist_matrix().unwrap(), stats)
    }

    #[test]
    fn any_device_count_matches_reference() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 3);
        let reference = bgl_plus_apsp(&g);
        for count in [1, 2, 3, 4] {
            let (result, stats) = run(&g, count);
            assert_eq!(result, reference, "{count} devices");
            assert_eq!(stats.num_devices, count);
        }
    }

    #[test]
    fn more_devices_reduce_simulated_time() {
        let g = grid_2d(22, 22, GridOptions::default(), WeightRange::default(), 7);
        let (_, one) = run(&g, 1);
        let (_, four) = run(&g, 4);
        assert!(
            four.sim_seconds < one.sim_seconds,
            "4 devices {} vs 1 device {}",
            four.sim_seconds,
            one.sim_seconds
        );
        // dist₂ and dist₄ parallelize; the dist₃ phase (single device +
        // broadcast) does not shrink.
        assert!(four.phase_seconds[0] < one.phase_seconds[0]);
        assert!(four.phase_seconds[2] < one.phase_seconds[2]);
    }

    #[test]
    fn scaling_is_sublinear_amdahl() {
        // The replicated dist₃ phase bounds the speedup (Amdahl); with 8
        // devices the win over 4 must be smaller than 4 over 1.
        let g = grid_2d(20, 20, GridOptions::default(), WeightRange::default(), 9);
        let (_, s1) = run(&g, 1);
        let (_, s4) = run(&g, 4);
        let (_, s8) = run(&g, 8);
        let gain_4 = s1.sim_seconds / s4.sim_seconds;
        let gain_8 = s4.sim_seconds / s8.sim_seconds;
        assert!(gain_4 > gain_8, "{gain_4} vs {gain_8}");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let mut devs = devices(2);
        let mut store = TileStore::new(0, &StorageBackend::Memory).unwrap();
        let stats =
            ooc_boundary_multi(&mut devs, &g, &mut store, &BoundaryOptions::default()).unwrap();
        assert_eq!(stats.sim_seconds, 0.0);
    }
}
