//! Shortest-*path* reconstruction (not just distances).
//!
//! The paper's system reports distances only; real APSP consumers (route
//! planning, betweenness, network diagnostics) usually need the paths.
//! Storing a full n×n predecessor matrix doubles the (already dominant)
//! output, so this module takes the practical route: per-source
//! shortest-path *trees* on demand via the same Near-Far kernel the
//! Johnson implementation runs, plus reconstruction helpers.

use apsp_graph::{CsrGraph, Dist, VertexId, INF};
use apsp_kernels::nearfar::near_far_sssp_with_parents;

/// A shortest-path tree rooted at one source.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The root.
    pub source: VertexId,
    /// Distance to every vertex ([`INF`] when unreachable).
    pub dist: Vec<Dist>,
    /// Predecessor of every vertex on a shortest path from the root
    /// (`VertexId::MAX` for the root and for unreachable vertices).
    pub parents: Vec<VertexId>,
}

impl ShortestPathTree {
    /// Compute the tree with the suite's Near-Far kernel.
    pub fn compute(g: &CsrGraph, source: VertexId) -> Self {
        let delta = apsp_kernels::nearfar::default_delta(g);
        let (dist, parents, _) = near_far_sssp_with_parents(g, source, delta, usize::MAX);
        ShortestPathTree {
            source,
            dist,
            parents,
        }
    }

    /// Distance to `target`.
    pub fn distance(&self, target: VertexId) -> Dist {
        self.dist[target as usize]
    }

    /// The vertices of a shortest path `source → target`, inclusive, or
    /// `None` when unreachable.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        if self.dist[target as usize] >= INF {
            return None;
        }
        let mut path = vec![target];
        let mut v = target;
        while v != self.source {
            v = self.parents[v as usize];
            debug_assert!(v != VertexId::MAX, "reachable vertex with broken chain");
            path.push(v);
        }
        path.reverse();
        Some(path)
    }

    /// Verify the tree against the graph: every parent edge exists, is
    /// tight (`dist[v] = dist[parent] + w`), and the root has distance 0.
    /// Returns the first violating vertex.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), VertexId> {
        if self.dist[self.source as usize] != 0 {
            return Err(self.source);
        }
        for v in 0..g.num_vertices() as VertexId {
            if v == self.source || self.dist[v as usize] >= INF {
                continue;
            }
            let p = self.parents[v as usize];
            if p == VertexId::MAX {
                return Err(v);
            }
            match g.edge_weight(p, v) {
                Some(w) if self.dist[p as usize].saturating_add(w) == self.dist[v as usize] => {}
                _ => return Err(v),
            }
        }
        Ok(())
    }
}

/// One shortest path `source → target`, or `None` when unreachable —
/// convenience over [`ShortestPathTree::compute`] for one-off queries.
pub fn shortest_path(g: &CsrGraph, source: VertexId, target: VertexId) -> Option<Vec<VertexId>> {
    ShortestPathTree::compute(g, source).path_to(target)
}

/// Reconstruct `source → target` from a full n×n predecessor matrix
/// produced by [`crate::ooc_johnson::ooc_johnson_with_parents`]. Reads
/// O(path length) individual cells from the (possibly disk-backed) store.
pub fn path_from_parent_store(
    parents: &crate::tile_store::TileStore,
    source: VertexId,
    target: VertexId,
) -> std::io::Result<Option<Vec<VertexId>>> {
    if source == target {
        return Ok(Some(vec![source]));
    }
    let n = parents.n();
    let mut path = vec![target];
    let mut v = target;
    let mut steps = 0usize;
    loop {
        let p = parents.get(source as usize, v as usize)?;
        if p == VertexId::MAX {
            return Ok(None); // unreachable
        }
        path.push(p);
        v = p;
        if v == source {
            path.reverse();
            return Ok(Some(path));
        }
        steps += 1;
        if steps > n {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "parent chain does not terminate — corrupt predecessor matrix",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::dijkstra_sssp;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};
    use apsp_graph::GraphBuilder;

    #[test]
    fn path_distances_match_dijkstra() {
        let g = gnp(150, 0.04, WeightRange::new(1, 20), 3);
        let tree = ShortestPathTree::compute(&g, 7);
        assert_eq!(tree.dist, dijkstra_sssp(&g, 7));
        tree.validate(&g).unwrap();
    }

    #[test]
    fn reconstructed_path_weights_sum_to_distance() {
        let g = grid_2d(8, 8, GridOptions::default(), WeightRange::new(1, 9), 5);
        let tree = ShortestPathTree::compute(&g, 0);
        for target in [63u32, 7, 56, 35] {
            let path = tree.path_to(target).expect("grid is connected");
            assert_eq!(path.first(), Some(&0));
            assert_eq!(path.last(), Some(&target));
            let mut total = 0;
            for pair in path.windows(2) {
                total += g.edge_weight(pair[0], pair[1]).expect("path edge");
            }
            assert_eq!(total, tree.distance(target));
        }
    }

    #[test]
    fn unreachable_targets_yield_none() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let tree = ShortestPathTree::compute(&g, 0);
        assert!(tree.path_to(3).is_none());
        assert_eq!(tree.path_to(1), Some(vec![0, 1]));
        assert_eq!(shortest_path(&g, 0, 1), Some(vec![0, 1]));
        assert_eq!(shortest_path(&g, 1, 0), None);
    }

    #[test]
    fn source_path_is_trivial() {
        let g = gnp(20, 0.2, WeightRange::default(), 9);
        let tree = ShortestPathTree::compute(&g, 4);
        assert_eq!(tree.path_to(4), Some(vec![4]));
        assert_eq!(tree.distance(4), 0);
    }

    #[test]
    fn validate_catches_corruption() {
        let g = gnp(30, 0.2, WeightRange::default(), 11);
        let mut tree = ShortestPathTree::compute(&g, 0);
        tree.validate(&g).unwrap();
        // Corrupt one reachable vertex's parent.
        let victim = (1..30).find(|&v| tree.dist[v] < INF).unwrap();
        tree.parents[victim] = victim as u32; // self-parent is never tight
        assert!(tree.validate(&g).is_err());
    }
}
