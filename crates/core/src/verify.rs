//! Result verification: independent spot-checking of a computed APSP
//! matrix against per-source Dijkstra.
//!
//! Full verification of an n×n result is itself an APSP computation, so
//! the practical tool is sampling: re-derive `sample` random rows with
//! the CPU reference and compare exactly. Used by `apsp-run --verify`
//! and the integration tests.

use crate::tile_store::TileStore;
use apsp_cpu::dijkstra_sssp;
use apsp_graph::{CsrGraph, VertexId};

/// Outcome of a sampled verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// Every sampled row matched exactly.
    Verified {
        /// Rows checked.
        rows_checked: usize,
    },
    /// A mismatch, with the first offending cell.
    Mismatch {
        /// Source row.
        row: usize,
        /// Column.
        col: usize,
        /// Value in the store.
        got: u32,
        /// Value Dijkstra derives.
        expected: u32,
    },
}

impl Verification {
    /// Whether verification passed.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verification::Verified { .. })
    }
}

/// Compare `sample` deterministic pseudo-random rows of `store` against
/// Dijkstra on `g`. `seed` fixes the row choice.
pub fn verify_rows(
    g: &CsrGraph,
    store: &TileStore,
    sample: usize,
    seed: u64,
) -> std::io::Result<Verification> {
    let n = g.num_vertices();
    assert_eq!(store.n(), n, "store dimension mismatch");
    if n == 0 {
        return Ok(Verification::Verified { rows_checked: 0 });
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };
    // `sample >= n` means exhaustive: check every row exactly once.
    let rows: Vec<usize> = if sample >= n {
        (0..n).collect()
    } else {
        (0..sample).map(|_| next()).collect()
    };
    let mut checked = std::collections::BTreeSet::new();
    for row in rows {
        if !checked.insert(row) {
            continue;
        }
        let got = store.read_row(row)?;
        let expected = dijkstra_sssp(g, row as VertexId);
        if let Some(col) = (0..n).find(|&j| got[j] != expected[j]) {
            return Ok(Verification::Mismatch {
                row,
                col,
                got: got[col],
                expected: expected[col],
            });
        }
    }
    Ok(Verification::Verified {
        rows_checked: checked.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Algorithm, ApspOptions};
    use crate::{apsp, StorageBackend};
    use apsp_gpu_sim::{DeviceProfile, GpuDevice};
    use apsp_graph::generators::{gnp, WeightRange};

    #[test]
    fn verifies_a_correct_result() {
        let g = gnp(100, 0.05, WeightRange::default(), 3);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let opts = ApspOptions {
            algorithm: Some(Algorithm::Johnson),
            storage: StorageBackend::Memory,
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let v = verify_rows(&g, &result.store, 10, 42).unwrap();
        assert!(v.is_verified(), "{v:?}");
        match v {
            Verification::Verified { rows_checked } => assert!(rows_checked >= 5),
            _ => unreachable!(),
        }
    }

    #[test]
    fn catches_a_corrupted_cell() {
        let g = gnp(60, 0.08, WeightRange::default(), 7);
        let mut store = TileStore::new(60, &StorageBackend::Memory).unwrap();
        crate::ooc_fw::init_store_from_graph(&g, &mut store).unwrap();
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        crate::ooc_fw::ooc_floyd_warshall(&mut dev, &mut store, &Default::default()).unwrap();
        // Corrupt one cell on a row the sampler will visit (sample = n
        // covers all rows).
        let mut row = store.read_row(30).unwrap();
        row[12] = row[12].wrapping_add(1);
        store.write_row(30, &row).unwrap();
        let v = verify_rows(&g, &store, 60, 1).unwrap();
        match v {
            Verification::Mismatch { row, .. } => assert_eq!(row, 30),
            other => panic!("corruption not caught: {other:?}"),
        }
    }

    #[test]
    fn empty_graph_is_vacuously_verified() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let store = TileStore::new(0, &StorageBackend::Memory).unwrap();
        assert!(verify_rows(&g, &store, 5, 9).unwrap().is_verified());
    }
}
